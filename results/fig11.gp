# fig11 — Buffer occupancy level of epidemic-based protocols (trace file)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig11.png'
set title "Buffer occupancy level of epidemic-based protocols (trace file)"
set xlabel "Load"
set ylabel "Average buffer occupancy level"
set key below
set grid
plot \
  'fig11.csv' using 1:2:3 with yerrorlines title "P-Q epidemic", \
  'fig11.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL", \
  'fig11.csv' using 1:6:7 with yerrorlines title "Epidemic with Immunity", \
  'fig11.csv' using 1:8:9 with yerrorlines title "Epidemic with EC"
