# fig08 — Delay comparison of epidemic-based protocols (RWP)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig08.png'
set title "Delay comparison of epidemic-based protocols (RWP)"
set xlabel "Load"
set ylabel "Average delay (s)"
set key below
set grid
plot \
  'fig08.csv' using 1:2:3 with yerrorlines title "P-Q epidemic", \
  'fig08.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL", \
  'fig08.csv' using 1:6:7 with yerrorlines title "Epidemic with Immunity", \
  'fig08.csv' using 1:8:9 with yerrorlines title "Epidemic with EC"
