# fig17 — Buffer occupancy level of modified and un-modified protocols (RWP)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig17.png'
set title "Buffer occupancy level of modified and un-modified protocols (RWP)"
set xlabel "Load"
set ylabel "Average buffer occupancy level"
set key below
set grid
plot \
  'fig17.csv' using 1:2:3 with yerrorlines title "Dynamic TTL (interval 2000)", \
  'fig17.csv' using 1:4:5 with yerrorlines title "Dynamic TTL (interval 400)", \
  'fig17.csv' using 1:6:7 with yerrorlines title "TTL=300 (interval 2000)", \
  'fig17.csv' using 1:8:9 with yerrorlines title "TTL=300 (interval 400)", \
  'fig17.csv' using 1:10:11 with yerrorlines title "Epidemic with EC", \
  'fig17.csv' using 1:12:13 with yerrorlines title "Epidemic with EC+TTL", \
  'fig17.csv' using 1:14:15 with yerrorlines title "Epidemic with Immunity", \
  'fig17.csv' using 1:16:17 with yerrorlines title "Epidemic with Cumulative Immunity"
