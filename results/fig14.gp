# fig14 — Delivery ratio of epidemic with TTL=300 under two interval times
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig14.png'
set title "Delivery ratio of epidemic with TTL=300 under two interval times"
set xlabel "Load"
set ylabel "Average delivery ratio"
set key below
set grid
plot \
  'fig14.csv' using 1:2:3 with yerrorlines title "Interval time = 400", \
  'fig14.csv' using 1:4:5 with yerrorlines title "Interval time = 2000"
