# fig09 — Average bundle duplication rate of epidemic-based protocols (trace file)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig09.png'
set title "Average bundle duplication rate of epidemic-based protocols (trace file)"
set xlabel "Load"
set ylabel "Average bundle duplication rate"
set key below
set grid
plot \
  'fig09.csv' using 1:2:3 with yerrorlines title "P-Q epidemic", \
  'fig09.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL", \
  'fig09.csv' using 1:6:7 with yerrorlines title "Epidemic with Immunity", \
  'fig09.csv' using 1:8:9 with yerrorlines title "Epidemic with EC"
