# fig10 — Average bundle duplication rate of epidemic-based protocols (RWP)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig10.png'
set title "Average bundle duplication rate of epidemic-based protocols (RWP)"
set xlabel "Load"
set ylabel "Average bundle duplication rate"
set key below
set grid
plot \
  'fig10.csv' using 1:2:3 with yerrorlines title "P-Q epidemic", \
  'fig10.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL", \
  'fig10.csv' using 1:6:7 with yerrorlines title "Epidemic with Immunity", \
  'fig10.csv' using 1:8:9 with yerrorlines title "Epidemic with EC"
