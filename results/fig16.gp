# fig16 — Delivery ratio of modified and un-modified protocols (trace file)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig16.png'
set title "Delivery ratio of modified and un-modified protocols (trace file)"
set xlabel "Load"
set ylabel "Average delivery ratio"
set key below
set grid
plot \
  'fig16.csv' using 1:2:3 with yerrorlines title "Epidemic with dynamic TTL", \
  'fig16.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL=300", \
  'fig16.csv' using 1:6:7 with yerrorlines title "Epidemic with EC", \
  'fig16.csv' using 1:8:9 with yerrorlines title "Epidemic with EC+TTL", \
  'fig16.csv' using 1:10:11 with yerrorlines title "Epidemic with Immunity", \
  'fig16.csv' using 1:12:13 with yerrorlines title "Epidemic with Cumulative Immunity"
