# fig07 — Delay comparison of epidemic-based protocols (trace file)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig07.png'
set title "Delay comparison of epidemic-based protocols (trace file)"
set xlabel "Load"
set ylabel "Average delay (s)"
set key below
set grid
plot \
  'fig07.csv' using 1:2:3 with yerrorlines title "P-Q epidemic", \
  'fig07.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL", \
  'fig07.csv' using 1:6:7 with yerrorlines title "Epidemic with EC"
