# fig12 — Average buffer occupancy level of epidemic-based protocols (RWP)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig12.png'
set title "Average buffer occupancy level of epidemic-based protocols (RWP)"
set xlabel "Load"
set ylabel "Average buffer occupancy level"
set key below
set grid
plot \
  'fig12.csv' using 1:2:3 with yerrorlines title "P-Q epidemic", \
  'fig12.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL", \
  'fig12.csv' using 1:6:7 with yerrorlines title "Epidemic with Immunity", \
  'fig12.csv' using 1:8:9 with yerrorlines title "Epidemic with EC"
