# fig13 — Delivery ratio comparison of epidemic with TTL and EC (trace file)
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig13.png'
set title "Delivery ratio comparison of epidemic with TTL and EC (trace file)"
set xlabel "Load"
set ylabel "Average delivery ratio"
set key below
set grid
plot \
  'fig13.csv' using 1:2:3 with yerrorlines title "Epidemic with EC", \
  'fig13.csv' using 1:4:5 with yerrorlines title "Epidemic with TTL"
