//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements exactly the API surface the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter_map`, range and tuple strategies, `Just`, `any::<T>()`,
//! `prop::collection::{vec, btree_map, btree_set}`, `prop::option::of`,
//! `prop_oneof!`, a printable-garbage strategy for `&str` patterns, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: values
//! are sampled uniformly (no size-biased growth) and failures are not
//! shrunk — the failing case's seed is derived from the test name, so
//! every run replays the same deterministic case sequence and a failure
//! reproduces exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG + case-count plumbing used by `proptest!`.

    /// SplitMix64 generator; seeded from the test name so each test has
    /// a stable, independent stream.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name (FNV-1a), so case sequences are stable
        /// across runs and independent across tests.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift bound; bias is negligible for test sampling.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases each `proptest!` test runs; override with
    /// `PROPTEST_CASES`.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24)
    }
}

use test_runner::TestRng;

/// A generator of test values. Object-safe: combinators require
/// `Self: Sized`, so `Box<dyn Strategy<Value = V>>` works (needed by
/// `prop_oneof!`).
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Transform-and-filter: resample until `f` returns `Some`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            base: self,
            reason,
            f,
        }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// `.prop_filter_map` adapter: rejection-samples the base strategy.
pub struct FilterMap<S, F> {
    base: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.base.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 candidates: {}", self.reason);
    }
}

/// Constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// String pattern strategy. Real proptest compiles the regex; the shim
/// only honours the one shape the tests use — printable garbage like
/// `"\\PC{0,400}"` — by emitting 0..=400 non-control characters drawn
/// from a parser-hostile pool (digits, spaces, separators, letters).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const POOL: &[char] = &[
            '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', ' ', ' ', '\t', '.', '-', '+', '%',
            '#', 'a', 'z', 'e', 'x', 'λ', '→', '~', '/', ':', ',', '_', '"',
        ];
        let len = rng.below(401) as usize;
        (0..len)
            .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Sample one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod strategy {
    //! Combinator support types referenced by the macros.

    use super::{Strategy, TestRng};

    /// Uniform choice between boxed alternative strategies
    /// (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from the macro's boxed arms; at least one required.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Coerce one `prop_oneof!` arm to the common boxed type (lets the
    /// compiler unify each arm's `Value`).
    pub fn union_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod collection {
    //! `prop::collection::*` — sized container strategies.

    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// `Vec` of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` built from up to `len` generated pairs (duplicate keys
    /// collapse, as with real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, len }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// `BTreeSet` built from up to `len` generated elements.
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, len }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `prop::option::*` — optional-value strategies.

    use super::{Strategy, TestRng};

    /// `Option<T>`: `None` one time in four, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prop {
    //! The `prop::` path exposed by the real crate's prelude.
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the tests reference.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, Strategy,
    };
}

/// Uniform choice among heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

/// Property assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Equality property assertion; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!(
                "prop_assert_eq failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            );
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`test_runner::cases`] sampled cases with a
/// name-seeded deterministic RNG.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prop_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _prop_case in 0..$crate::test_runner::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&i));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combinators");
        let strat = prop::collection::vec(
            (0u32..10, 0u32..10)
                .prop_filter_map("distinct", |(a, b)| (a != b).then_some(a + b))
                .prop_map(|s| s as u64),
            1..5,
        );
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![Just(1u32), 10u32..20, (0u32..4).prop_map(|x| x + 100)];
        let mut seen = [false; 3];
        for _ in 0..300 {
            match strat.generate(&mut rng) {
                1 => seen[0] = true,
                10..=19 => seen[1] = true,
                100..=103 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn name_seeding_is_deterministic() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        /// The macro itself expands and runs.
        #[test]
        fn macro_smoke(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
        }
    }
}
