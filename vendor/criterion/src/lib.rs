//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements exactly the API surface the `dtn-bench`
//! targets use: `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group` / `BenchmarkGroup::bench_function` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Timing is a plain wall-clock mean over `sample_size`
//! iterations (after one warm-up), printed as `ns/iter` — enough to
//! track relative hot-path cost; the serious throughput harness lives
//! in `dtn-bench`'s `bench_sweep` binary.

use std::time::Instant;

/// Shim benchmark driver. Holds the configured sample size and prints
/// one line per benchmark.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_ns: 0,
            iters: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns.checked_div(b.iters).unwrap_or(0);
        println!("bench: {id:<48} {per_iter:>12} ns/iter ({} iters)", b.iters);
        self
    }

    /// Start a named group; the shim just prefixes benchmark ids.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    samples: usize,
    elapsed_ns: u128,
    iters: u128,
}

impl Bencher {
    /// Time `f` over the configured number of samples (plus one untimed
    /// warm-up call).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += self.samples as u128;
    }
}

/// Grouped benchmarks: ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// `criterion_group!` — both the struct-like (`name = …; config = …;
/// targets = …`) and positional forms expand to a function running every
/// target against one configured `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// `criterion_main!` — a `main` that runs each group function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` for drop-in compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        // One warm-up + three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_prefix_and_finish() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
