//! Quickstart: run one epidemic protocol over one mobility model and read
//! the four metrics the study is built on.
//!
//! ```text
//! cargo run --release -p dtn-experiments --example quickstart
//! ```

use dtn_epidemic::{protocols, simulate, SimConfig, Workload};
use dtn_mobility::{HaggleParams, NodeId};
use dtn_sim::SimRng;

fn main() {
    // 1. A contact trace. This is the synthetic stand-in for the
    //    Cambridge Haggle iMote dataset: 12 devices, five days,
    //    heavy-tailed inter-contact gaps. (To replay a real export, see
    //    the `trace_replay` example.)
    let trace = HaggleParams::default().generate(&mut SimRng::new(42));
    println!(
        "trace: {} nodes, {} contacts over {} (mean contact {}, mean gap {})",
        trace.node_count(),
        trace.len(),
        trace.horizon(),
        trace.mean_contact_duration(),
        trace.mean_intercontact_gap(),
    );

    // 2. The paper's workload: one source sends k bundles to one
    //    destination, all created at t = 0.
    let workload = Workload::single_flow(NodeId(0), NodeId(7), 20, trace.node_count());

    // 3. Pick a protocol. The eight protocols of the study are presets;
    //    `SimConfig::paper_defaults` pins the paper's buffer capacity (10
    //    bundles) and per-bundle transmission time (100 s).
    for protocol in [
        protocols::pure_epidemic(),
        protocols::ttl_epidemic_default(),
        protocols::dynamic_ttl_epidemic(),
        protocols::cumulative_immunity_epidemic(),
    ] {
        let config = SimConfig::paper_defaults(protocol);
        let m = simulate(&trace, &workload, &config, SimRng::new(7));
        println!(
            "{:<36} delivery {:>5.1}%  delay {:>9}  buffer {:>5.1}%  duplication {:>5.1}%  tx {:>5}",
            config.protocol.name,
            100.0 * m.delivery_ratio,
            m.delay_secs()
                .map(|d| format!("{d:.0} s"))
                .unwrap_or_else(|| "failed".into()),
            100.0 * m.avg_buffer_occupancy,
            100.0 * m.avg_duplication_rate,
            m.bundle_transmissions,
        );
    }
}
