//! Replay a contact-trace file through every protocol of the study.
//!
//! Point it at any file in the documented interchange format (a CRAWDAD
//! Haggle export maps onto it line-for-line — see
//! `dtn_mobility::trace_io`); with no argument it writes and replays a
//! bundled sample so the example is self-contained.
//!
//! ```text
//! cargo run --release -p dtn-experiments --example trace_replay [-- /path/to/file.trace]
//! ```

use dtn_epidemic::{protocols, simulate, SimConfig, Workload};
use dtn_mobility::{read_trace_file, write_trace, HaggleParams};
use dtn_sim::{SimRng, Welford};
use std::path::PathBuf;

fn main() {
    let path: PathBuf = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            // Self-contained mode: synthesize a five-day trace and write
            // it where the user can inspect the format.
            let sample = std::env::temp_dir().join("dtn_sample.trace");
            let trace = HaggleParams::default().generate(&mut SimRng::new(2012));
            let mut file = std::fs::File::create(&sample).expect("create sample trace");
            write_trace(&trace, &mut file).expect("write sample trace");
            println!("no trace given; wrote a sample to {}\n", sample.display());
            sample
        }
    };

    let trace = match read_trace_file(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_replay: cannot load {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    println!(
        "loaded {}: {} nodes, {} contacts, horizon {}",
        path.display(),
        trace.node_count(),
        trace.len(),
        trace.horizon()
    );

    // The paper's workload at a middling load, averaged over random
    // source/destination pairs.
    let load = 25;
    let replications = 10u64;
    println!(
        "\nreplaying load {load} with {replications} random src/dst pairs:\n\
         {:<36} {:>9} {:>10} {:>9} {:>9}",
        "protocol", "delivery", "delay", "buffer", "dup"
    );
    for protocol in protocols::all_protocols() {
        let mut delivery = Welford::new();
        let mut delay = Welford::new();
        let mut buffer = Welford::new();
        let mut dup = Welford::new();
        let root = SimRng::new(99);
        for rep in 0..replications {
            let mut wl_rng = root.derive(rep * 2 + 1);
            let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
            let config = SimConfig::paper_defaults(protocol.clone());
            let m = simulate(&trace, &workload, &config, root.derive(rep * 2));
            delivery.push(m.delivery_ratio);
            if let Some(d) = m.delay_secs() {
                delay.push(d);
            }
            buffer.push(m.avg_buffer_occupancy);
            dup.push(m.avg_duplication_rate);
        }
        println!(
            "{:<36} {:>8.1}% {:>10} {:>8.1}% {:>8.1}%",
            protocol.name,
            100.0 * delivery.mean(),
            if delay.count() > 0 {
                format!("{:.0} s", delay.mean())
            } else {
                "all failed".into()
            },
            100.0 * buffer.mean(),
            100.0 * dup.mean(),
        );
    }
}
