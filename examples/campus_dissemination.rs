//! Campus-wide dissemination: the paper's Fig. 1 scenario.
//!
//! Students carry short-range devices around a university campus (here:
//! the subscriber-point RWP model — lecture halls, cafés, library desks
//! as rendezvous points) and one node publishes content for *everyone*:
//! the one-to-all advertisement/event dissemination use case the paper's
//! introduction motivates (wireless ad-hoc podcasting, MobEyes).
//!
//! The question this example answers: which epidemic variant disseminates
//! a 5-bundle feed to all 11 peers with the least buffer and signaling
//! cost?
//!
//! ```text
//! cargo run --release -p dtn-experiments --example campus_dissemination
//! ```

use dtn_epidemic::{protocols, simulate, SimConfig, Workload};
use dtn_mobility::{NodeId, SubscriberParams};
use dtn_sim::{SimRng, Welford};

fn main() {
    let params = SubscriberParams::default();
    println!(
        "campus: {} students, {} rendezvous points in {:.0} m × {:.0} m, horizon {}",
        params.nodes, params.points, params.area_side_m, params.area_side_m, params.horizon
    );

    // The publisher is node 0; every other node is a subscriber.
    let publisher = NodeId(0);
    let feed_size = 5;
    let replications = 8;

    println!(
        "\n{:<36} {:>9} {:>10} {:>9} {:>10}",
        "protocol", "coverage", "buffer", "overhead", "tx/bundle"
    );
    for protocol in protocols::all_protocols() {
        let mut coverage = Welford::new();
        let mut buffer = Welford::new();
        let mut overhead = Welford::new();
        let mut tx = Welford::new();
        for rep in 0..replications {
            let trace = params.generate(&mut SimRng::new(1000 + rep));
            let workload = Workload::one_to_all(publisher, feed_size, trace.node_count());
            let config = SimConfig::paper_defaults(protocol.clone());
            let m = simulate(&trace, &workload, &config, SimRng::new(rep));
            coverage.push(m.delivery_ratio);
            buffer.push(m.avg_buffer_occupancy);
            overhead.push(m.ack_records_sent as f64);
            tx.push(m.bundle_transmissions as f64 / m.total_bundles as f64);
        }
        println!(
            "{:<36} {:>8.1}% {:>9.1}% {:>9.0} {:>10.1}",
            protocol.name,
            100.0 * coverage.mean(),
            100.0 * buffer.mean(),
            overhead.mean(),
            tx.mean(),
        );
    }
    println!(
        "\ncoverage = delivered (bundle, subscriber) pairs / all pairs; \
         overhead = immunity records transmitted; tx/bundle = payload transmissions per bundle."
    );
}
