//! ZebraNet-style wildlife tracking: extremely sparse DTN.
//!
//! The paper opens with ZebraNet: collared zebras collect movement data
//! that must reach researchers. Contacts between animals are far rarer
//! and more irregular than between students on a campus, which is exactly
//! the regime where TTL choices decide whether any data survives long
//! enough to be delivered.
//!
//! This example builds a very sparse Haggle-like trace (20 collars, gaps
//! of hours to days), has one zebra's collar (node 3) stream 15 readings
//! to the base station (node 0), and compares the fixed-TTL strategy
//! against the paper's dynamic-TTL enhancement, sweeping the fixed TTL to
//! show there is no good constant — the motivating observation of
//! Section III.
//!
//! ```text
//! cargo run --release -p dtn-experiments --example zebranet_tracking
//! ```

use dtn_epidemic::{protocols, simulate, SimConfig, Workload};
use dtn_mobility::{HaggleParams, NodeId};
use dtn_sim::{SimDuration, SimRng, SimTime, Welford};

fn main() {
    // Two weeks of very sparse contacts between 20 collars.
    let savanna = HaggleParams {
        nodes: 20,
        horizon: SimTime::from_secs(14 * 86_400),
        gap_min_s: 3_600.0,        // at least an hour apart
        gap_max_s: 4.0 * 86_400.0, // up to four days
        gap_alpha: 0.5,
        dur_min_s: 120.0,
        dur_max_s: 1_200.0,
        dur_alpha: 1.2,
        sociability: (0.3, 3.0), // herds: some pairs graze together
    };

    let base_station = NodeId(0);
    let collar = NodeId(3);
    let readings = 15;
    let replications = 10;

    let evaluate = |name: String, protocol: dtn_epidemic::ProtocolConfig| {
        let mut delivery = Welford::new();
        let mut delay = Welford::new();
        let mut failures = 0u32;
        for rep in 0..replications {
            let trace = savanna.generate(&mut SimRng::new(500 + rep));
            let workload =
                Workload::single_flow(collar, base_station, readings, trace.node_count());
            let config = SimConfig::paper_defaults(protocol.clone());
            let m = simulate(&trace, &workload, &config, SimRng::new(rep));
            delivery.push(m.delivery_ratio);
            match m.delay_secs() {
                Some(d) => delay.push(d / 3_600.0),
                None => failures += 1,
            }
        }
        println!(
            "{:<28} delivery {:>5.1}%   complete runs {:>2}/{replications}   delay {:>7}",
            name,
            100.0 * delivery.mean(),
            replications - failures as u64,
            if delay.count() > 0 {
                format!("{:.1} h", delay.mean())
            } else {
                "-".into()
            },
        );
    };

    println!("fixed TTLs (no constant fits gaps of hours to days):");
    for ttl_hours in [1u64, 6, 24, 96] {
        evaluate(
            format!("  TTL = {ttl_hours} h"),
            protocols::ttl_epidemic(SimDuration::from_secs(ttl_hours * 3_600)),
        );
    }
    println!("\nthe paper's adaptive policy:");
    evaluate(
        "  dynamic TTL (2× interval)".into(),
        protocols::dynamic_ttl_epidemic(),
    );
    println!("\nreference (infinite lifetimes):");
    evaluate("  pure epidemic".into(), protocols::pure_epidemic());
}
