//! `dtnsim` — run one (protocol, mobility, load) experiment from the
//! command line, locally or against a `dtnsimd` daemon.
//!
//! ```text
//! dtnsim [OPTIONS]
//!
//!   --protocol NAME    pure | pq[=P,Q] | ttl[=SECS] | dynttl[=MULT] |
//!                      ec | ecttl | immunity | cumulative |
//!                      bloom[=FP] | bloomimm[=FP]           (default: pure)
//!   --list-protocols   print the canonical protocol spec table and exit
//!   --mobility NAME    trace | rwp | geom-rwp | interval=SECS | FILE.trace
//!                      (default: trace)
//!   --load K           bundles per flow                     (default: 25)
//!   --reps N           replications                         (default: 10)
//!   --seed S           root seed                            (default: 1)
//!   --buffer B         relay-buffer capacity                (default: 10)
//!   --tx-time SECS     per-bundle transmission time
//!                      (default: the scenario's regime)
//!   --stats            also report the contact trace's statistical summary
//!   --trace PATH       capture the typed event stream as JSONL (manifest
//!                      line first, then one JSON object per event)
//!   --series PATH      write sampled occupancy/duplication/delivery
//!                      curves as CSV
//!   --canonical        print the report with volatile fields (wall-clock,
//!                      cache counters, RSS) masked — byte-comparable
//!                      across machines and across local/daemon runs
//!   -v, --verbose      extra stderr diagnostics
//!   -q, --quiet        errors only on stderr
//!
//! daemon client mode:
//!   --connect HOST:PORT
//!                      submit the run (or --robustness sweep) to a
//!                      dtnsimd daemon as content-addressed point jobs and
//!                      reassemble the same report locally; repeated
//!                      submissions are served from the daemon's result
//!                      cache bit-identically. The client self-heals:
//!                      severed connections reconnect with jittered
//!                      backoff, missing points are idempotently
//!                      resubmitted, and already-collected points are
//!                      never re-fetched (partial-sweep resume)
//!   --connect http://HOST:PORT
//!                      same submission through a daemon's HTTP/JSON
//!                      gateway (`--gateway-port`): POST the sweep spec,
//!                      stream per-point results over chunked
//!                      transfer-encoding, and print the gateway-assembled
//!                      report verbatim (byte-identical to the wire-client
//!                      and local reports under --canonical). Robustness
//!                      sweeps only; stats/shutdown stay wire-only
//!   --max-retries N    cap queue-full submit retries per point
//!                      (default 32; 0 = unbounded)
//!   --retry-deadline SECS
//!                      total wall-clock budget for backpressure retries
//!                      and reconnect healing (default: none)
//!   --daemon-stats     print the daemon's operational stats as a stable,
//!                      documented JSON document and exit (requires
//!                      --connect; see `render_daemon_stats` for the
//!                      shape). With --canonical, load-dependent values
//!                      (queue depth, running count, uptime, utilization,
//!                      latency snapshots) are masked to fixed values so
//!                      two equally-loaded daemons compare byte-identical
//!   --daemon-shutdown  ask the daemon to drain, persist its cache, and
//!                      exit (requires --connect)
//!
//! supervision and auditing:
//!   --audit            attach the runtime invariant auditor to every
//!                      replication; violations land in the report's
//!                      "violations" array (normally empty)
//!   --retries N        retry a panicking replication up to N times on a
//!                      fresh salted RNG stream before recording it as a
//!                      failure (default: 0)
//!   --point-timeout S  hard per-replication deadline in seconds; a
//!                      replication still running at the deadline is
//!                      abandoned and reported as timed out instead of
//!                      hanging the run
//!   --slow-point-secs S
//!                      log a stderr line when one point's simulation
//!                      phase exceeds S wall seconds (robustness mode;
//!                      observational only, never changes results)
//!
//! fault injection (all deterministic under --seed):
//!   --loss P           i.i.d. per-transmission loss probability
//!   --burst G,B,GB,BG  Gilbert–Elliott bursty loss: good/bad-state loss
//!                      probabilities and the two transition probabilities
//!   --truncate P       probability a contact session is cut short
//!   --ack-loss P       probability one immunity-table transfer is lost
//!   --churn UP,DOWN[,crash|duty]
//!                      mean up/down dwell times in seconds; `crash`
//!                      (default) wipes volatile state on restart, `duty`
//!                      preserves it
//!
//! robustness preset:
//!   --robustness       sweep all protocols over the churn x loss grid
//!                      (uses --load/--reps/--seed; ignores the single-run
//!                      fault flags above)
//!   --checkpoint PATH  append each finished grid point to a resumable
//!                      JSONL checkpoint (local mode only)
//!   --resume           reload a compatible checkpoint and simulate only
//!                      the missing points (local mode only)
//! ```
//!
//! stdout carries exactly one machine-readable JSON report (the unified
//! `SweepReport` schema); all human-facing progress goes to stderr.
//!
//! Example:
//!
//! ```text
//! dtnsim --protocol ttl=300 --mobility interval=2000 --load 40 \
//!        --trace run.jsonl --series run.csv > report.json
//! dtnsim --connect 127.0.0.1:7700 --robustness --load 25 > report.json
//! ```

use dtn_epidemic::{
    protocols, simulate, simulate_probed, AuditMode, AuditProbe, ChurnMode, ChurnPlan, FanoutProbe,
    FaultPlan, GilbertElliott, JsonlProbe, ProtocolConfig, SimConfig, TimeSeriesProbe, Workload,
};
use dtn_experiments::jobs::PointJob;
use dtn_experiments::runner::aggregate_point;
use dtn_experiments::{
    assemble_grid_report, grid_point_jobs, record_supervised_point, run_robustness,
    FederationStats, Mobility, PointOutcome, Reporter, RunManifest, ShardStat, SweepConfig,
    SweepReport, TraceCache, Verbosity,
};
use dtn_mobility::{read_trace_file, ContactTrace, TraceSummary};
use dtn_service::httpd::{self, ConnectTarget};
use dtn_service::{Client, ResilientClient, RetryPolicy};
use dtn_sim::{par_map_supervised, Histogram, JobOutcome, SimDuration, SimRng, Threads, Watchdog};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Where contacts come from: a built-in scenario or a trace file.
enum Source {
    Builtin(Mobility),
    File(std::path::PathBuf, ContactTrace),
}

impl Source {
    /// Build the trace for one replication, deduplicated through `cache`
    /// for the built-in scenarios (a file trace is already in memory).
    fn build(&self, seed: u64, replication: u64, cache: &TraceCache) -> Arc<ContactTrace> {
        match self {
            Source::Builtin(m) => m.build_cached(seed, replication, cache),
            Source::File(_, trace) => Arc::new(trace.clone()),
        }
    }

    fn default_tx_time(&self) -> u64 {
        match self {
            Source::Builtin(m) => m.tx_time_secs(),
            Source::File(..) => 100,
        }
    }

    fn label(&self) -> String {
        match self {
            Source::Builtin(m) => m.label(),
            Source::File(path, _) => path.display().to_string(),
        }
    }
}

fn parse_mobility(spec: &str) -> Result<Source, String> {
    match Mobility::parse(spec) {
        Ok(m) => Ok(Source::Builtin(m)),
        Err(parse_err) => {
            let path = std::path::PathBuf::from(spec);
            if path.exists() {
                let trace = read_trace_file(&path).map_err(|e| format!("loading {spec}: {e}"))?;
                Ok(Source::File(path, trace))
            } else {
                Err(format!("{parse_err}, or a trace file path"))
            }
        }
    }
}

struct Args {
    protocol: ProtocolConfig,
    /// The raw `--protocol` spec — the job identity sent to a daemon.
    protocol_spec: String,
    source: Source,
    load: u32,
    reps: usize,
    seed: u64,
    buffer: usize,
    tx_time: Option<u64>,
    stats: bool,
    trace_out: Option<std::path::PathBuf>,
    series_out: Option<std::path::PathBuf>,
    verbosity: Verbosity,
    loss: f64,
    faults: FaultPlan,
    robustness: bool,
    checkpoint: Option<std::path::PathBuf>,
    resume: bool,
    audit: bool,
    retries: u32,
    point_timeout: Option<u64>,
    connect: Option<String>,
    canonical: bool,
    daemon_stats: bool,
    daemon_shutdown: bool,
    slow_point_secs: Option<f64>,
    max_retries: Option<u32>,
    retry_deadline_secs: Option<f64>,
}

/// Parse `--burst G,B,GB,BG` into a Gilbert–Elliott channel.
fn parse_burst(spec: &str) -> Result<GilbertElliott, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    let [g, b, gb, bg] = parts.as_slice() else {
        return Err(format!("--burst wants GOOD,BAD,GB,BG — got {spec:?}"));
    };
    let p = |s: &str| {
        s.parse::<f64>()
            .map_err(|e| format!("bad probability {s:?}: {e}"))
    };
    Ok(GilbertElliott {
        loss_good: p(g)?,
        loss_bad: p(b)?,
        p_good_to_bad: p(gb)?,
        p_bad_to_good: p(bg)?,
    })
}

/// Parse `--churn UP,DOWN[,crash|duty]` into a churn plan.
fn parse_churn(spec: &str) -> Result<ChurnPlan, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    let (up, down, mode) = match parts.as_slice() {
        [up, down] => (*up, *down, ChurnMode::Crash),
        [up, down, "crash"] => (*up, *down, ChurnMode::Crash),
        [up, down, "duty"] => (*up, *down, ChurnMode::DutyCycle),
        _ => return Err(format!("--churn wants UP,DOWN[,crash|duty] — got {spec:?}")),
    };
    let secs = |s: &str| {
        s.parse::<f64>()
            .map_err(|e| format!("bad dwell time {s:?}: {e}"))
    };
    Ok(ChurnPlan {
        mean_up_secs: secs(up)?,
        mean_down_secs: secs(down)?,
        mode,
    })
}

fn list_protocols() -> ! {
    // The canonical table: spec strings feed straight back into
    // `--protocol` and are the identities the daemon caches on.
    println!("spec         protocol");
    for (spec, proto) in protocols::ALL_SPECS.iter().zip(protocols::spec_protocols()) {
        println!("{spec:<12} {}", proto.name);
    }
    std::process::exit(0);
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        protocol: protocols::pure_epidemic(),
        protocol_spec: "pure".to_string(),
        source: Source::Builtin(Mobility::Trace),
        load: 25,
        reps: 10,
        seed: 1,
        buffer: 10,
        tx_time: None,
        stats: false,
        trace_out: None,
        series_out: None,
        verbosity: Verbosity::Normal,
        loss: 0.0,
        faults: FaultPlan::default(),
        robustness: false,
        checkpoint: None,
        resume: false,
        audit: false,
        retries: 0,
        point_timeout: None,
        connect: None,
        canonical: false,
        daemon_stats: false,
        daemon_shutdown: false,
        slow_point_secs: None,
        max_retries: Some(32),
        retry_deadline_secs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--protocol" => {
                args.protocol_spec = value("--protocol")?;
                args.protocol = protocols::from_spec(&args.protocol_spec)?;
            }
            "--list-protocols" => list_protocols(),
            "--mobility" => args.source = parse_mobility(&value("--mobility")?)?,
            "--load" => {
                args.load = value("--load")?
                    .parse()
                    .map_err(|e| format!("bad load: {e}"))?
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad reps: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--buffer" => {
                args.buffer = value("--buffer")?
                    .parse()
                    .map_err(|e| format!("bad buffer: {e}"))?
            }
            "--tx-time" => {
                args.tx_time = Some(
                    value("--tx-time")?
                        .parse()
                        .map_err(|e| format!("bad tx-time: {e}"))?,
                )
            }
            "--stats" => args.stats = true,
            "--trace" => args.trace_out = Some(value("--trace")?.into()),
            "--series" => args.series_out = Some(value("--series")?.into()),
            "--loss" => {
                args.loss = value("--loss")?
                    .parse()
                    .map_err(|e| format!("bad loss: {e}"))?
            }
            "--truncate" => {
                args.faults.truncation_prob = value("--truncate")?
                    .parse()
                    .map_err(|e| format!("bad truncate: {e}"))?
            }
            "--ack-loss" => {
                args.faults.ack_loss_prob = value("--ack-loss")?
                    .parse()
                    .map_err(|e| format!("bad ack-loss: {e}"))?
            }
            "--burst" => args.faults.burst = Some(parse_burst(&value("--burst")?)?),
            "--churn" => args.faults.churn = Some(parse_churn(&value("--churn")?)?),
            "--robustness" => args.robustness = true,
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?.into()),
            "--resume" => args.resume = true,
            "--audit" => args.audit = true,
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("bad retries: {e}"))?
            }
            "--point-timeout" => {
                args.point_timeout = Some(
                    value("--point-timeout")?
                        .parse()
                        .map_err(|e| format!("bad point-timeout: {e}"))?,
                )
            }
            "--connect" => args.connect = Some(value("--connect")?),
            "--max-retries" => {
                let n: u32 = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("bad max-retries: {e}"))?;
                args.max_retries = (n > 0).then_some(n);
            }
            "--retry-deadline" => {
                let secs: f64 = value("--retry-deadline")?
                    .parse()
                    .map_err(|e| format!("bad retry-deadline: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--retry-deadline must be a positive number".into());
                }
                args.retry_deadline_secs = Some(secs);
            }
            "--slow-point-secs" => {
                let secs: f64 = value("--slow-point-secs")?
                    .parse()
                    .map_err(|e| format!("bad slow-point-secs: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--slow-point-secs must be a positive number".into());
                }
                args.slow_point_secs = Some(secs);
            }
            "--canonical" => args.canonical = true,
            "--daemon-stats" => args.daemon_stats = true,
            "--daemon-shutdown" => args.daemon_shutdown = true,
            "-v" | "--verbose" => args.verbosity = Verbosity::Verbose,
            "-q" | "--quiet" => args.verbosity = Verbosity::Quiet,
            "--help" | "-h" => {
                println!(
                    "usage: dtnsim [--protocol NAME] [--list-protocols] [--mobility NAME] \
                     [--load K] [--reps N] [--seed S] [--buffer B] [--tx-time SECS] [--stats] \
                     [--trace PATH] [--series PATH] [--canonical] [--audit] [--retries N] \
                     [--point-timeout SECS] [--slow-point-secs SECS] \
                     [--loss P] [--burst G,B,GB,BG] \
                     [--truncate P] [--ack-loss P] [--churn UP,DOWN[,crash|duty]] \
                     [--robustness [--checkpoint PATH] [--resume]] \
                     [--connect HOST:PORT|http://HOST:PORT [--max-retries N] \
                     [--retry-deadline SECS] [--daemon-stats | --daemon-shutdown]] [-v | -q]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.load == 0 || args.reps == 0 || args.buffer == 0 {
        return Err("load, reps and buffer must be positive".into());
    }
    dtn_epidemic::validate_probability("transfer_loss_prob", args.loss)?;
    args.faults.validate()?;
    if args.resume && args.checkpoint.is_none() {
        return Err("--resume requires --checkpoint PATH".into());
    }
    if args.point_timeout == Some(0) {
        return Err("--point-timeout must be at least 1 second".into());
    }
    if (args.daemon_stats || args.daemon_shutdown) && args.connect.is_none() {
        return Err("--daemon-stats/--daemon-shutdown require --connect HOST:PORT".into());
    }
    if args.connect.is_some() {
        if args.stats || args.trace_out.is_some() || args.series_out.is_some() {
            return Err(
                "--stats/--trace/--series capture in-process state and are local-only; \
                 drop them or drop --connect"
                    .into(),
            );
        }
        if args.checkpoint.is_some() || args.resume {
            return Err("--checkpoint/--resume are local-only (the daemon's result \
                 cache already makes re-runs incremental)"
                .into());
        }
    }
    Ok(args)
}

fn print_report(report: &SweepReport, canonical: bool) {
    if canonical {
        print!("{}", report.to_canonical_json());
    } else {
        print!("{}", report.to_json());
    }
}

/// Re-render a daemon `stats` reply as the stable, documented
/// `--daemon-stats` document: one JSON object, one key per line, in the
/// fixed order below regardless of daemon version. Numbers are copied
/// verbatim from the reply (u64 counters survive losslessly); keys a
/// (newer or older) daemon does not send render as `0` / `null` rather
/// than failing, so the shape itself never varies.
///
/// ```text
/// {
///   "type": "daemon_stats",       constant
///   "engine": "...",              daemon's engine version string
///   "workers": N,                 worker-pool size (configuration)
///   "queue_capacity": N,          bounded-queue size (configuration)
///   "queue_depth": N,             jobs queued right now        [volatile]
///   "running": N,                 jobs running right now       [volatile]
///   "submitted": N,               admitted jobs, lifetime
///   "completed": N,               finished jobs, lifetime
///   "failed": N,                  failed jobs (errors + panics)
///   "failed_errors": N,           ... of which job-level errors
///   "failed_panics": N,           ... of which worker-caught panics
///   "cancelled": N,               jobs cancelled while queued
///   "rejected": N,                rejected submits (all reasons)
///   "rejected_queue_full": N,     ... of which queue-full sheds
///   "rejected_shutdown": N,       ... of which during drain
///   "replication_panics": N,      panicking replications inside jobs
///   "replication_timeouts": N,    timed-out replications inside jobs
///   "bad_frames": N,              frames rejected by length/CRC checks
///   "shed_queue_deadline": N,     jobs shed past the queue-wait deadline
///   "journal_salvaged": N,        journal records recovered at startup
///   "journal_discarded": N,       journal records lost to damage
///   "stale_tmp_removed": N,       orphaned .tmp files cleaned at startup
///   "journal_flushes": N,         journal flushes so far        [volatile]
///   "cache_hits": N,              result-cache hits, lifetime
///   "cache_misses": N,            result-cache misses, lifetime
///   "cache_entries": N,           result-cache size now
///   "cache_expired": N,           janitor TTL expiries         [volatile]
///   "cache_evictions": N,         janitor LRU evictions        [volatile]
///   "cache_bytes": N,             resident result bytes now    [volatile]
///   "uptime_secs": F,                                          [volatile]
///   "worker_busy_secs": F,                                     [volatile]
///   "worker_utilization": F,      busy / (uptime x workers)    [volatile]
///   "latency": {...} | null       per-phase histogram snapshots [volatile]
/// }
/// ```
///
/// With `canonical`, the `[volatile]` fields are masked (numbers to `0`,
/// `latency` to `null`) so two daemons that served the same jobs print
/// byte-identical documents — the form the service tests compare.
fn render_daemon_stats(raw: &str, canonical: bool) -> Result<String, String> {
    use dtn_service::json::Value;
    let v = Value::parse(raw).map_err(|e| format!("unparseable stats reply: {e}"))?;
    if v.get("type").and_then(Value::as_str) != Some("stats") {
        return Err(format!("unexpected stats reply: {raw}"));
    }
    let num = |key: &str| match v.get(key) {
        Some(Value::Num(n)) => n.clone(),
        _ => "0".to_string(),
    };
    let volatile_num = |key: &str| {
        if canonical {
            "0".to_string()
        } else {
            num(key)
        }
    };
    // Snapshot sub-objects re-render in fixed key order too (the daemon
    // sends them ordered, but the parser's maps do not preserve it).
    let snapshot = |snap: Option<&Value>| -> String {
        let Some(snap) = snap else {
            return "null".to_string();
        };
        let field = |key: &str| match snap.get(key) {
            Some(Value::Num(n)) => n.clone(),
            _ => "0".to_string(),
        };
        format!(
            "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            field("count"),
            field("sum"),
            field("mean"),
            field("p50"),
            field("p90"),
            field("p99"),
        )
    };
    let latency = match v.get("latency") {
        Some(lat) if !canonical => {
            let phases = [
                "frame_decode",
                "request",
                "queue_wait",
                "cache_probe",
                "sim",
                "serialize",
                "write",
            ];
            let body: Vec<String> = phases
                .iter()
                .map(|p| format!("    \"{p}\": {}", snapshot(lat.get(p))))
                .collect();
            format!("{{\n{}\n  }}", body.join(",\n"))
        }
        _ => "null".to_string(),
    };
    let engine = v.get("engine").and_then(Value::as_str).unwrap_or("unknown");
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"type\": \"daemon_stats\",\n  \"engine\": \"{}\",",
        dtn_service::json::escape(engine)
    );
    for key in ["workers", "queue_capacity"] {
        let _ = writeln!(out, "  \"{key}\": {},", num(key));
    }
    for key in ["queue_depth", "running"] {
        let _ = writeln!(out, "  \"{key}\": {},", volatile_num(key));
    }
    for key in [
        "submitted",
        "completed",
        "failed",
        "failed_errors",
        "failed_panics",
        "cancelled",
        "rejected",
        "rejected_queue_full",
        "rejected_shutdown",
        "replication_panics",
        "replication_timeouts",
        "bad_frames",
        "shed_queue_deadline",
        "journal_salvaged",
        "journal_discarded",
        "stale_tmp_removed",
    ] {
        let _ = writeln!(out, "  \"{key}\": {},", num(key));
    }
    // Flush count is timing-dependent (the time-based window fires on
    // its own clock), so it masks with the volatile group.
    let _ = writeln!(
        out,
        "  \"journal_flushes\": {},",
        volatile_num("journal_flushes")
    );
    for key in ["cache_hits", "cache_misses", "cache_entries"] {
        let _ = writeln!(out, "  \"{key}\": {},", num(key));
    }
    // Janitor activity rides the cron clock, not the served work, so
    // the eviction counters and resident-byte gauge mask as volatile.
    for key in ["cache_expired", "cache_evictions", "cache_bytes"] {
        let _ = writeln!(out, "  \"{key}\": {},", volatile_num(key));
    }
    for key in ["uptime_secs", "worker_busy_secs", "worker_utilization"] {
        let _ = writeln!(out, "  \"{key}\": {},", volatile_num(key));
    }
    let _ = writeln!(out, "  \"latency\": {latency}");
    out.push_str("}\n");
    Ok(out)
}

/// Re-render a `dtnfedd` coordinator `stats` reply (detected by its
/// `role:"coordinator"` member) as a stable document, mirroring
/// [`render_daemon_stats`]: fixed key order, volatile fields masked
/// under `canonical` so two coordinators that served the same sweep
/// print byte-identical documents.
fn render_coordinator_stats(raw: &str, canonical: bool) -> Result<String, String> {
    use dtn_service::json::Value;
    let v = Value::parse(raw).map_err(|e| format!("unparseable stats reply: {e}"))?;
    let num = |key: &str| match v.get(key) {
        Some(Value::Num(n)) => n.clone(),
        _ => "0".to_string(),
    };
    let volatile_num = |key: &str| {
        if canonical {
            "0".to_string()
        } else {
            num(key)
        }
    };
    let engine = v.get("engine").and_then(Value::as_str).unwrap_or("unknown");
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"type\": \"coordinator_stats\",\n  \"engine\": \"{}\",",
        dtn_service::json::escape(engine)
    );
    for key in ["workers", "routable_workers"] {
        let _ = writeln!(out, "  \"{key}\": {},", num(key));
    }
    let _ = writeln!(
        out,
        "  \"degraded\": {},",
        v.get("degraded").and_then(Value::as_bool).unwrap_or(false)
    );
    for key in [
        "submitted",
        "completed",
        "failovers",
        "hedges",
        "redispatches",
        "rejected_no_workers",
        "rejected_unreachable",
    ] {
        let _ = writeln!(out, "  \"{key}\": {},", num(key));
    }
    // Probe counts, the hedge deadline, in-flight jobs, uptime, and the
    // relay cache (refetch traffic and janitor sweeps both ride wall
    // clocks) all track wall time, not served work: they mask with the
    // volatile group.
    for key in [
        "inflight",
        "probes_ok",
        "probes_failed",
        "relay_hits",
        "relay_misses",
        "relay_entries",
        "cache_expired",
        "cache_evictions",
        "cache_bytes",
        "hedge_deadline_ms",
        "uptime_secs",
    ] {
        let _ = writeln!(out, "  \"{key}\": {},", volatile_num(key));
    }
    out.push_str("  \"shards\": [");
    let shards = v.get("shards").and_then(Value::as_array);
    for (i, shard) in shards.into_iter().flatten().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let addr = shard.get("addr").and_then(Value::as_str).unwrap_or("?");
        let state = shard.get("state").and_then(Value::as_str).unwrap_or("?");
        let completed = match shard.get("completed") {
            Some(Value::Num(n)) => n.clone(),
            _ => "0".to_string(),
        };
        let _ = write!(
            out,
            "\n    {{\"addr\": \"{}\", \"state\": \"{}\", \"completed\": {}}}",
            dtn_service::json::escape(addr),
            dtn_service::json::escape(state),
            completed,
        );
    }
    out.push_str(if shards.is_some_and(|s| !s.is_empty()) {
        "\n  ]\n"
    } else {
        "]\n"
    });
    out.push_str("}\n");
    Ok(out)
}

/// The `--robustness` mode: sweep all protocols over the fault grid.
fn run_robustness_mode(args: &Args, log: &Reporter) -> ExitCode {
    let Source::Builtin(mobility) = args.source else {
        log.error(
            "dtnsim: --robustness needs a built-in mobility (trace, rwp, geom-rwp, interval=SECS)",
        );
        return ExitCode::FAILURE;
    };
    let cfg = robustness_config(args);
    match run_robustness(mobility, &cfg, args.checkpoint.as_deref(), args.resume, log) {
        Ok(report) => {
            print_report(&report, args.canonical);
            ExitCode::SUCCESS
        }
        Err(e) => {
            log.error(format!("dtnsim: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn robustness_config(args: &Args) -> SweepConfig {
    SweepConfig {
        loads: vec![args.load],
        replications: args.reps,
        base_seed: args.seed,
        buffer_capacity: args.buffer,
        tx_time_secs: args.tx_time,
        retries: args.retries,
        point_timeout_secs: args.point_timeout,
        audit: args.audit,
        slow_point_secs: args.slow_point_secs,
        ..SweepConfig::default()
    }
}

fn connect(addr: &str, log: &Reporter) -> Result<Client, ExitCode> {
    Client::connect(addr).map_err(|e| {
        log.error(format!("dtnsim: cannot connect to daemon at {addr}: {e}"));
        ExitCode::FAILURE
    })
}

/// The healing policy for sweep submission: bounded backpressure retry,
/// seeded from `--seed` so the whole retry/reconnect schedule is
/// reproducible.
fn retry_policy(args: &Args) -> RetryPolicy {
    RetryPolicy {
        max_retries: args.max_retries,
        deadline: args
            .retry_deadline_secs
            .map(std::time::Duration::from_secs_f64),
        seed: args.seed,
        ..RetryPolicy::default()
    }
}

/// Submit jobs in order, then collect results in the same order, through
/// the self-healing client: the daemon parallelizes across its workers;
/// submission is cheap (admit or cache-hit, never simulate); severed
/// connections reconnect and resume with only the missing points.
fn submit_and_collect(
    client: &mut ResilientClient,
    jobs: &[PointJob],
    log: &Reporter,
) -> Result<(Vec<Option<PointOutcome>>, usize), String> {
    // `collect_available` is `collect_fragments` against a plain
    // daemon; against a degraded coordinator it records per-point
    // `unreachable` answers as `None` (partial-sweep mode) instead of
    // failing the run.
    let pairs = client.collect_available(jobs).map_err(|e| e.to_string())?;
    let cached = pairs
        .iter()
        .filter(|p| matches!(p, Some((_, true))))
        .count();
    log.info(format!(
        "daemon cache: {cached}/{} points served from cache",
        jobs.len()
    ));
    let heal = client.heal_stats();
    if heal.reconnects > 0 {
        log.info(format!(
            "healed through faults: {} reconnects, {} resubmits, {} refetches",
            heal.reconnects, heal.resubmits, heal.refetches
        ));
    }
    let outcomes = pairs
        .iter()
        .map(|pair| {
            pair.as_ref()
                .map(|(fragment, _)| PointOutcome::from_wire_json(fragment))
                .transpose()
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok((outcomes, cached))
}

/// If `addr` is a `dtnfedd` coordinator, fetch its stats and turn them
/// into the report's federation attribution; a plain daemon (no
/// `role:"coordinator"` in its stats) yields `None`. Best-effort — a
/// completed sweep never fails over its attribution fetch.
fn federation_stats(client: &mut ResilientClient, missing_points: u64) -> Option<FederationStats> {
    use dtn_service::json::Value;
    let raw = client.stats_raw().ok()?;
    let v = Value::parse(&raw).ok()?;
    if v.get("role").and_then(Value::as_str) != Some("coordinator") {
        return None;
    }
    let num = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    let shards = v
        .get("shards")
        .and_then(Value::as_array)
        .map(|entries| {
            entries
                .iter()
                .map(|s| ShardStat {
                    addr: s
                        .get("addr")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    state: s
                        .get("state")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    completed: s.get("completed").and_then(Value::as_u64).unwrap_or(0),
                })
                .collect()
        })
        .unwrap_or_default();
    Some(FederationStats {
        workers: num("workers"),
        routable_workers: num("routable_workers"),
        degraded: v.get("degraded").and_then(Value::as_bool).unwrap_or(false),
        failovers: num("failovers"),
        hedges: num("hedges"),
        redispatches: num("redispatches"),
        missing_points,
        shards,
    })
}

/// Client mode for the robustness grid: same jobs, same order, same
/// report assembly — only the execution happens daemon-side.
fn run_robustness_client(args: &Args, addr: &str, log: &Reporter) -> ExitCode {
    let Source::Builtin(mobility) = args.source else {
        log.error("dtnsim: --robustness needs a built-in mobility");
        return ExitCode::FAILURE;
    };
    let cfg = robustness_config(args);
    let points = match grid_point_jobs(mobility, &cfg) {
        Ok(points) => points,
        Err(e) => {
            log.error(format!("dtnsim: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let mut client = ResilientClient::new(addr, retry_policy(args));
    let started = Instant::now();
    let jobs: Vec<PointJob> = points.iter().map(|gp| gp.job.clone()).collect();
    let (outcomes, _) = match submit_and_collect(&mut client, &jobs, log) {
        Ok(r) => r,
        Err(e) => {
            log.error(format!("dtnsim: {e}"));
            return ExitCode::FAILURE;
        }
    };
    // Partial-sweep mode: a degraded coordinator reported some points
    // unreachable. Assemble the report from what drained, name what is
    // missing, and exit non-zero — the report is honest, not complete.
    let missing: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.is_none().then_some(i))
        .collect();
    for &i in &missing {
        let job = &jobs[i];
        log.error(format!(
            "dtnsim: point missing (unreachable shard): {} @ {} load {}",
            job.protocol,
            job.mobility.label(),
            job.load
        ));
    }
    let (kept_points, kept_outcomes): (Vec<_>, Vec<_>) = points
        .iter()
        .cloned()
        .zip(outcomes)
        .filter_map(|(p, o)| o.map(|o| (p, o)))
        .unzip();
    let mut report = assemble_grid_report(
        mobility,
        &cfg,
        &kept_points,
        &kept_outcomes,
        started.elapsed().as_secs_f64(),
    );
    report.federation = federation_stats(&mut client, missing.len() as u64);
    print_report(&report, args.canonical);
    if missing.is_empty() {
        ExitCode::SUCCESS
    } else {
        log.error(format!(
            "dtnsim: partial sweep: {}/{} points missing",
            missing.len(),
            jobs.len()
        ));
        ExitCode::from(3)
    }
}

/// Client mode for `--connect http://host:port`: the same robustness
/// sweep, submitted through a daemon's HTTP/JSON gateway. The gateway
/// runs the wire client on our behalf, streams each point's result back
/// over chunked transfer-encoding as it lands, and finishes with the
/// assembled report, which prints verbatim — a canonical gateway run is
/// byte-identical to canonical wire-client and local runs.
fn run_gateway_client(args: &Args, gateway: &str, log: &Reporter) -> ExitCode {
    use dtn_service::json::Value;
    use std::io::{BufRead as _, Read as _, Write as _};
    let Source::Builtin(mobility) = args.source else {
        log.error("dtnsim: --robustness needs a built-in mobility");
        return ExitCode::FAILURE;
    };
    // The POST body mirrors `robustness_config` field for field, so the
    // gateway derives the identical job grid (and therefore the same
    // content-addressed sweep id a repeated submission collapses onto).
    let mut spec = format!(
        "{{\"mobility\":\"{}\",\"load\":{},\"reps\":{},\"seed\":{},\"buffer\":{},\"retries\":{}",
        mobility.spec(),
        args.load,
        args.reps,
        args.seed,
        args.buffer,
        args.retries
    );
    if let Some(tx) = args.tx_time {
        let _ = write!(spec, ",\"tx_time\":{tx}");
    }
    if let Some(t) = args.point_timeout {
        let _ = write!(spec, ",\"point_timeout\":{t}");
    }
    if args.audit {
        spec.push_str(",\"audit\":true");
    }
    spec.push('}');
    let response = match httpd::http_request(
        gateway,
        "POST",
        "/v1/sweeps",
        Some(("application/json", spec.as_bytes())),
    ) {
        Ok(r) => r,
        Err(e) => {
            log.error(format!(
                "dtnsim: cannot reach gateway at http://{gateway}: {e}"
            ));
            return ExitCode::FAILURE;
        }
    };
    let body = String::from_utf8_lossy(&response.body).into_owned();
    let doc = Value::parse(body.trim()).ok();
    let member = |key: &str| {
        doc.as_ref()
            .and_then(|d| d.get(key).and_then(Value::as_str).map(str::to_string))
    };
    match response.status {
        200 | 202 => {}
        429 => {
            let after = response.header("retry-after").unwrap_or("?").to_string();
            log.error(format!(
                "dtnsim: gateway backpressure ({}); retry after {after}s",
                member("reason").unwrap_or_else(|| "queue full".into())
            ));
            return ExitCode::FAILURE;
        }
        503 => {
            log.error(format!(
                "dtnsim: federation degraded below quorum: {}",
                member("detail").unwrap_or_default()
            ));
            return ExitCode::FAILURE;
        }
        status => {
            log.error(format!(
                "dtnsim: gateway refused the sweep ({status}): {}",
                body.trim()
            ));
            return ExitCode::FAILURE;
        }
    }
    let Some(id) = member("id") else {
        log.error(format!(
            "dtnsim: gateway reply has no sweep id: {}",
            body.trim()
        ));
        return ExitCode::FAILURE;
    };
    log.info(format!("gateway accepted sweep {id}"));
    let path = format!(
        "/v1/sweeps/{id}/stream{}",
        if args.canonical { "?canonical=1" } else { "" }
    );
    let stream = match httpd::http_open(gateway, "GET", &path, None) {
        Ok((200, _, reader)) => reader,
        Ok((status, _, _)) => {
            log.error(format!("dtnsim: gateway stream refused ({status})"));
            return ExitCode::FAILURE;
        }
        Err(e) => {
            log.error(format!("dtnsim: gateway stream failed: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let mut lines = std::io::BufReader::new(stream);
    let mut line = String::new();
    let mut done = 0u64;
    let mut cached = 0u64;
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) => {
                log.error("dtnsim: gateway stream ended without a report");
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
            Err(e) => {
                log.error(format!("dtnsim: gateway stream died: {e}"));
                return ExitCode::FAILURE;
            }
        }
        let Ok(event) = Value::parse(line.trim()) else {
            log.error(format!("dtnsim: unparseable stream line: {}", line.trim()));
            return ExitCode::FAILURE;
        };
        match event.get("type").and_then(Value::as_str) {
            Some("point") => {
                done += 1;
                if event.get("cached").and_then(Value::as_bool) == Some(true) {
                    cached += 1;
                }
            }
            Some("report") => {
                let missing = event.get("missing").and_then(Value::as_u64).unwrap_or(0);
                let bytes = event.get("bytes").and_then(Value::as_u64).unwrap_or(0) as usize;
                log.info(format!(
                    "gateway cache: {cached}/{done} points served from cache"
                ));
                // The header names the exact byte count; everything
                // after it is the report, forwarded verbatim.
                let mut report = vec![0u8; bytes];
                if let Err(e) = lines.read_exact(&mut report) {
                    log.error(format!("dtnsim: torn report stream: {e}"));
                    return ExitCode::FAILURE;
                }
                let stdout = std::io::stdout();
                let mut out = stdout.lock();
                if out.write_all(&report).and_then(|()| out.flush()).is_err() {
                    return ExitCode::FAILURE;
                }
                return if missing == 0 {
                    ExitCode::SUCCESS
                } else {
                    log.error(format!("dtnsim: partial sweep: {missing} points missing"));
                    ExitCode::from(3)
                };
            }
            Some("error") => {
                let status = event
                    .get("status")
                    .and_then(Value::as_str)
                    .unwrap_or("failed");
                let detail = event.get("error").and_then(Value::as_str).unwrap_or("");
                log.error(format!("dtnsim: gateway sweep {status}: {detail}"));
                return ExitCode::FAILURE;
            }
            // Forward compatibility: skip event types this client does
            // not know.
            _ => {}
        }
    }
}

/// Client mode for a single (protocol, mobility, load) run.
fn run_single_client(args: &Args, addr: &str, log: &Reporter) -> ExitCode {
    let Source::Builtin(mobility) = args.source else {
        log.error(
            "dtnsim: --connect needs a built-in mobility (trace, rwp, geom-rwp, interval=SECS); \
             the daemon cannot see local trace files",
        );
        return ExitCode::FAILURE;
    };
    // Single-run convention: the trace seed and RNG root are both
    // `--seed`, exactly as the local path below sets them.
    let job = PointJob {
        protocol: args.protocol_spec.clone(),
        mobility,
        load: args.load,
        replications: args.reps,
        root_seed: args.seed,
        trace_seed: args.seed,
        buffer_capacity: args.buffer,
        tx_time_secs: args.tx_time.unwrap_or_else(|| mobility.tx_time_secs()),
        transfer_loss: args.loss,
        faults: args.faults.clone(),
        retries: args.retries,
        point_timeout_secs: args.point_timeout,
        audit: args.audit,
    };
    let mut client = ResilientClient::new(addr, retry_policy(args));
    let started = Instant::now();
    let (outcomes, _) = match submit_and_collect(&mut client, std::slice::from_ref(&job), log) {
        Ok(r) => r,
        Err(e) => {
            log.error(format!("dtnsim: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let Some(outcome) = &outcomes[0] else {
        log.error("dtnsim: the point is unreachable (degraded federation, quorum lost)");
        return ExitCode::from(3);
    };
    let wall = started.elapsed().as_secs_f64();

    let label = mobility.label();
    let mut report = SweepReport::new(format!(
        "dtnsim: {} @ {} load {} x {} replications",
        args.protocol.name, label, args.load, args.reps
    ));
    record_supervised_point(
        &mut report,
        args.protocol.name,
        &label,
        args.load,
        &outcome.outcomes,
        &outcome.attempts,
    );
    for v in &outcome.violations {
        report.record_violation(v.clone());
    }
    report.record_sweep(format!("{} @ {}", args.protocol.name, label), wall);
    report.record_cache((0, 0));
    report.finish(wall);
    report.federation = federation_stats(&mut client, 0);
    print_report(&report, args.canonical);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dtnsim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let log = Reporter::new(args.verbosity);

    if let Some(raw_addr) = &args.connect {
        // `http://host:port` selects the gateway client; bare
        // `host:port` the wire client; anything else is a typed error.
        let wire = match httpd::parse_connect_target(raw_addr) {
            Ok(ConnectTarget::Wire(addr)) => addr,
            Ok(ConnectTarget::Http(gateway)) => {
                if args.daemon_stats || args.daemon_shutdown {
                    log.error(
                        "dtnsim: --daemon-stats/--daemon-shutdown speak the wire protocol; \
                         connect to the daemon's host:port, not the gateway URL",
                    );
                    return ExitCode::FAILURE;
                }
                if !args.robustness {
                    log.error(
                        "dtnsim: the gateway serves --robustness sweeps; for a single run \
                         connect to the daemon's host:port",
                    );
                    return ExitCode::FAILURE;
                }
                return run_gateway_client(&args, &gateway, &log);
            }
            Err(e) => {
                log.error(format!("dtnsim: {e}"));
                return ExitCode::FAILURE;
            }
        };
        let addr = wire.as_str();
        if args.daemon_stats {
            let mut client = match connect(addr, &log) {
                Ok(c) => c,
                Err(code) => return code,
            };
            let rendered = client.stats_raw().and_then(|raw| {
                use dtn_service::json::Value;
                let coordinator = Value::parse(&raw)
                    .ok()
                    .is_some_and(|v| v.get("role").and_then(Value::as_str) == Some("coordinator"));
                if coordinator {
                    render_coordinator_stats(&raw, args.canonical)
                } else {
                    render_daemon_stats(&raw, args.canonical)
                }
            });
            return match rendered {
                Ok(stats) => {
                    print!("{stats}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    log.error(format!("dtnsim: {e}"));
                    ExitCode::FAILURE
                }
            };
        }
        if args.daemon_shutdown {
            let mut client = match connect(addr, &log) {
                Ok(c) => c,
                Err(code) => return code,
            };
            return match client.shutdown() {
                Ok(draining) => {
                    log.info(format!(
                        "daemon is shutting down, draining {draining} admitted job(s)"
                    ));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    log.error(format!("dtnsim: {e}"));
                    ExitCode::FAILURE
                }
            };
        }
        return if args.robustness {
            run_robustness_client(&args, addr, &log)
        } else {
            run_single_client(&args, addr, &log)
        };
    }

    if args.robustness {
        return run_robustness_mode(&args, &log);
    }

    let source = Arc::new(args.source);
    let tx_time = args.tx_time.unwrap_or_else(|| source.default_tx_time());
    let config = Arc::new(SimConfig {
        protocol: args.protocol.clone(),
        buffer_capacity: args.buffer,
        tx_time: SimDuration::from_secs(tx_time),
        ack_slot_cost: 0.1,
        transfer_loss_prob: args.loss,
        bundle_bytes: 10_000_000,
        ack_record_bytes: 16,
        faults: args.faults.clone(),
    });

    log.info(format!(
        "protocol {:?} | mobility {} | load {} | buffer {} | tx {} s | {} replications",
        args.protocol.name,
        source.label(),
        args.load,
        args.buffer,
        tx_time,
        args.reps
    ));

    let cache = Arc::new(TraceCache::new());
    if args.stats {
        let trace = source.build(args.seed, 0, &cache);
        log.info(format!(
            "\ncontact-trace summary:\n{}",
            TraceSummary::of(&trace).to_text()
        ));
    }

    let probed = args.trace_out.is_some() || args.series_out.is_some();
    // Warm the trace cache up front so the report's phase breakdown can
    // separate mobility preparation from the protocol loop (file traces
    // are already in memory, so their trace phase is just the load time
    // already spent).
    let trace_started = Instant::now();
    if matches!(*source, Source::Builtin(_)) {
        for rep in 0..args.reps {
            let _ = source.build(args.seed, rep as u64, &cache);
        }
    }
    let trace_secs = trace_started.elapsed().as_secs_f64();
    let started = Instant::now();
    let root = SimRng::new(args.seed);
    let watchdog = Watchdog {
        retries: args.retries,
        timeout: args.point_timeout.map(std::time::Duration::from_secs),
        soft_timeout: args
            .point_timeout
            .map(|s| std::time::Duration::from_secs(s) / 2),
    };
    let job_source = Arc::clone(&source);
    let job_config = Arc::clone(&config);
    let job_cache = Arc::clone(&cache);
    let (seed, load, audit) = (args.seed, args.load, args.audit);
    // Each replication returns (metrics, jsonl events, series probe,
    // audit violations); the probes are monomorphized in, so the
    // un-probed, un-audited path stays the plain `simulate` the benches
    // measure. Attempt 0 uses the canonical RNG derivation so a run that
    // needs no retries is bit-identical to an unsupervised one; retries
    // salt the stream (replaying a panicking seed would panic again).
    type RepResult = (
        dtn_epidemic::RunMetrics,
        String,
        Option<TimeSeriesProbe>,
        Vec<String>,
    );
    let outcomes: Vec<JobOutcome<RepResult>> =
        par_map_supervised(Threads::Auto, args.reps, watchdog, move |rep, attempt| {
            let rep = rep as u64;
            let trace = job_source.build(seed, rep, &job_cache);
            let stream = if attempt == 0 {
                root.clone()
            } else {
                root.derive(0x57AC_0000 | u64::from(attempt))
            };
            let mut wl_rng = stream.derive(rep * 2 + 1);
            let sim_rng = stream.derive(rep * 2);
            let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
            if probed {
                let interval =
                    SimDuration::from_millis((trace.horizon().as_millis() / 256).max(1000));
                let pair = (
                    JsonlProbe::new(),
                    TimeSeriesProbe::for_config(trace.node_count(), &job_config, interval),
                );
                if audit {
                    let auditor = AuditProbe::new(
                        &workload,
                        &job_config,
                        trace.node_count(),
                        AuditMode::Record,
                    );
                    let mut probe = FanoutProbe::new(pair, auditor);
                    let m = simulate_probed(&trace, &workload, &job_config, sim_rng, &mut probe);
                    let (mut pair, auditor) = probe.into_parts();
                    pair.1.finish(m.end_time);
                    (
                        m,
                        pair.0.into_jsonl(),
                        Some(pair.1),
                        auditor.violation_strings(),
                    )
                } else {
                    let mut probe = pair;
                    let m = simulate_probed(&trace, &workload, &job_config, sim_rng, &mut probe);
                    probe.1.finish(m.end_time);
                    (m, probe.0.into_jsonl(), Some(probe.1), Vec::new())
                }
            } else if audit {
                let mut probe = AuditProbe::new(
                    &workload,
                    &job_config,
                    trace.node_count(),
                    AuditMode::Record,
                );
                let m = simulate_probed(&trace, &workload, &job_config, sim_rng, &mut probe);
                (m, String::new(), None, probe.violation_strings())
            } else {
                let m = simulate(&trace, &workload, &job_config, sim_rng);
                (m, String::new(), None, Vec::new())
            }
        });
    let wall = started.elapsed().as_secs_f64();
    let (mut panics, mut timed_out, mut retries_total) = (0usize, 0usize, 0u64);
    let mut results: Vec<(usize, RepResult)> = Vec::with_capacity(outcomes.len());
    for (rep, outcome) in outcomes.into_iter().enumerate() {
        retries_total += u64::from(outcome.attempts().saturating_sub(1));
        match outcome {
            JobOutcome::Ok { value, .. } => results.push((rep, value)),
            JobOutcome::Panicked { message, .. } => {
                panics += 1;
                log.error(format!("replication {rep} panicked: {message}"));
            }
            JobOutcome::TimedOut { .. } => {
                timed_out += 1;
                log.error(format!(
                    "replication {rep} exceeded --point-timeout and was abandoned"
                ));
            }
        }
    }
    let runs: Vec<dtn_epidemic::RunMetrics> = results.iter().map(|(_, (m, _, _, _))| *m).collect();

    // Event capture: manifest line, then each replication's events behind
    // a `{"rep":i}` marker. Replications land in index order, so the file
    // is byte-identical for a fixed seed regardless of the thread policy
    // (the manifest's wall-clock is the only non-deterministic line).
    if let Some(path) = &args.trace_out {
        let manifest = RunManifest {
            tool: "dtnsim".into(),
            protocol: args.protocol.name.into(),
            mobility: source.label(),
            load: args.load,
            replications: args.reps,
            seed: args.seed,
            buffer_capacity: args.buffer,
            tx_time_secs: tx_time,
            git_rev: dtn_experiments::git_rev(),
            unix_time_secs: dtn_experiments::unix_time_secs(),
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", manifest.to_jsonl());
        let mut events = 0usize;
        for (rep, (_, jsonl, _, _)) in results.iter() {
            let _ = writeln!(out, "{{\"rep\":{rep}}}");
            out.push_str(jsonl);
            events += jsonl.lines().count();
        }
        if let Err(e) = std::fs::write(path, &out) {
            log.error(format!("dtnsim: cannot write {}: {e}", path.display()));
            return ExitCode::FAILURE;
        }
        log.debug(format!(
            "wrote {} events for {} replications to {}",
            events,
            args.reps,
            path.display()
        ));
    }

    // Time-series CSV: one row per (replication, sample).
    let mut gap_hist = Histogram::new();
    let mut bundles_hist = Histogram::new();
    if let Some(path) = &args.series_out {
        let mut csv = String::from("rep,t_secs,occupancy,duplication,delivered,transmissions\n");
        for (rep, (_, _, probe, _)) in results.iter() {
            let probe = probe.as_ref().expect("series requested implies probed run");
            for s in &probe.samples {
                let _ = writeln!(
                    csv,
                    "{},{},{:.6},{:.6},{},{}",
                    rep,
                    s.t.as_secs(),
                    s.occupancy,
                    s.duplication,
                    s.delivered,
                    s.transmissions
                );
            }
        }
        if let Err(e) = std::fs::write(path, &csv) {
            log.error(format!("dtnsim: cannot write {}: {e}", path.display()));
            return ExitCode::FAILURE;
        }
        log.debug(format!("wrote series CSV to {}", path.display()));
    }
    for (_, (_, _, probe, _)) in &results {
        if let Some(p) = probe {
            gap_hist.merge(&p.contact_gap);
            bundles_hist.merge(&p.bundles_per_contact);
        }
    }

    let violations: Vec<String> = results
        .iter()
        .flat_map(|(rep, (_, _, _, v))| v.iter().map(move |v| format!("rep {rep}: {v}")))
        .collect();
    if args.audit {
        match violations.len() {
            0 => log.info("audit: clean — no invariant violations"),
            n => log.error(format!("audit: {n} invariant violation(s) detected")),
        }
    }

    let point = aggregate_point(args.load, &runs);
    log.info(format!("results over {} replications:", args.reps));
    log.info(format!(
        "  delivery ratio      {:.1} % ± {:.1}",
        100.0 * point.delivery_ratio.mean,
        100.0 * point.delivery_ratio.ci95_half_width()
    ));
    match point.delay_s.n {
        0 => log.info("  delay               no run completed within the horizon"),
        _ => log.info(format!(
            "  delay               {:.0} s over {} completed runs ({} failed)",
            point.delay_s.mean, point.delay_s.n, point.failures
        )),
    }
    log.info(format!(
        "  buffer occupancy    {:.1} %",
        100.0 * point.buffer_occupancy.mean
    ));
    log.info(format!(
        "  duplication rate    {:.1} %",
        100.0 * point.duplication_rate.mean
    ));
    log.info(format!(
        "  transmissions       {:.0}",
        point.transmissions.mean
    ));
    log.info(format!(
        "  immunity records    {:.0}",
        point.ack_records.mean
    ));
    if probed && !gap_hist.is_empty() {
        log.debug(format!(
            "  inter-contact gap   p50 {:.0} s, p90 {:.0} s over {} gaps",
            gap_hist.quantile(0.5).unwrap_or(0.0),
            gap_hist.quantile(0.9).unwrap_or(0.0),
            gap_hist.count()
        ));
    }

    // The machine-readable report is the only thing on stdout.
    let mut report = SweepReport::new(format!(
        "dtnsim: {} @ {} load {} x {} replications",
        args.protocol.name,
        source.label(),
        args.load,
        args.reps
    ));
    let assemble_started = Instant::now();
    report.record_point(args.protocol.name, &source.label(), args.load, &runs);
    if let Some(point) = report.points.last_mut() {
        point.panics = panics;
        point.timed_out = timed_out;
        point.failures += panics + timed_out;
        point.retries = retries_total;
    }
    for v in violations {
        report.record_violation(v);
    }
    report.record_sweep(format!("{} @ {}", args.protocol.name, source.label()), wall);
    report.record_cache(cache.stats());
    if !gap_hist.is_empty() {
        report.attach_histogram("inter_contact_gap_s", gap_hist);
    }
    if !bundles_hist.is_empty() {
        report.attach_histogram("bundles_per_contact", bundles_hist);
    }
    report.record_point_timing(dtn_experiments::PointTiming {
        trace_secs,
        sim_secs: wall,
        assemble_secs: assemble_started.elapsed().as_secs_f64(),
    });
    report.finish(wall);
    print_report(&report, args.canonical);
    ExitCode::SUCCESS
}
