//! `dtnfedd` — the federation coordinator.
//!
//! Fronts N `dtnsimd` worker daemons behind the same wire protocol a
//! single daemon speaks, so any client (`dtnsim --connect`, the
//! resilient client, `--daemon-stats`) targets a federation unchanged.
//! Jobs route to workers by consistent hashing over their content
//! address; dead workers are detected by a jittered heartbeat loop and
//! their work fails over to live ones; stragglers are hedged onto a
//! second shard after a p99-derived deadline. See
//! `dtn_service::coordinator` for the full design.
//!
//! ```text
//! dtnsimd --addr 127.0.0.1:0 --addr-file w1.addr &
//! dtnsimd --addr 127.0.0.1:0 --addr-file w2.addr &
//! dtnsimd --addr 127.0.0.1:0 --addr-file w3.addr &
//! dtnfedd --addr 127.0.0.1:7800 \
//!         --worker "$(cat w1.addr)" --worker "$(cat w2.addr)" --worker "$(cat w3.addr)"
//! dtnsim --connect 127.0.0.1:7800 ...   # sweeps fan out across workers
//! ```

use dtn_service::{
    Coordinator, CoordinatorConfig, Gateway, GatewayConfig, MetricsServer, ENGINE_VERSION,
};
use std::path::PathBuf;

const USAGE: &str = "\
dtnfedd - DTN federation coordinator (fronts N dtnsimd workers)

USAGE:
    dtnfedd [OPTIONS]

OPTIONS:
    --addr HOST:PORT         Bind address (default 127.0.0.1:7800; port 0 picks a free port)
    --worker HOST:PORT       A worker daemon address (repeatable); more workers
                             may join later via the wire `register` request
    --worker-file PATH       Read worker addresses from PATH, one per line
                             (blank lines and #-comments ignored)
    --heartbeat-ms N         Health probe interval, jittered to [N/2, N]
                             (default 250)
    --probe-timeout-ms N     Per-probe connect/read budget; also bounds worker
                             submits (default 2000)
    --suspect-after N        Consecutive probe failures before Suspect (default 2)
    --dead-after N           Consecutive probe failures before Dead — the edge
                             that fires failover re-dispatch (default 4)
    --hedge-min-ms N         Floor on the straggler hedge deadline (default 2000)
    --hedge-factor X         Hedge deadline = X x observed p99 point latency
                             (default 4.0)
    --quorum X               Routable fraction below which the coordinator
                             degrades to partial-sweep mode: drain what is
                             reachable, answer `unreachable` for the rest
                             (default 0.5)
    --virtual-nodes N        Ring points per shard (default 64)
    --retry-after-ms N       Backpressure hint on coordinator-side rejections
                             (default 250)
    --unreachable-grace-ms N How long a blocking result fetch rides out a total
                             outage before answering `unreachable` (default 60000)
    --seed N                 Seed for the probe-jitter RNG (default 0)
    --cache-ttl-secs SECS    Janitor: expire relayed result frames older than
                             SECS (float; default: off)
    --cache-max-bytes N      Janitor: evict least-recently-served relay frames
                             while the resident set exceeds N bytes (default: off)
    --janitor-interval-secs SECS
                             Nominal period between janitor sweeps (float,
                             early-jittered; default 5.0)
    --gateway-port N         Serve the HTTP/JSON gateway (POST /v1/sweeps,
                             chunked result streaming) on http://127.0.0.1:N
                             (0 picks a free port; omit to disable)
    --http-port N            Serve Prometheus-text telemetry on
                             http://127.0.0.1:N/metrics (0 picks a free port)
    --addr-file PATH         Write the bound address to PATH once listening
    --help                   Show this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    config: CoordinatorConfig,
    gateway_port: Option<u16>,
    http_port: Option<u16>,
    addr_file: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        config: CoordinatorConfig {
            addr: "127.0.0.1:7800".to_string(),
            ..CoordinatorConfig::default()
        },
        gateway_port: None,
        http_port: None,
        addr_file: None,
    };
    let config = &mut parsed.config;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--worker" => config.workers.push(value("--worker")),
            "--worker-file" => {
                let path = value("--worker-file");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read --worker-file {path}: {e}")));
                for line in text.lines() {
                    let line = line.trim();
                    if !line.is_empty() && !line.starts_with('#') {
                        config.workers.push(line.to_string());
                    }
                }
            }
            "--heartbeat-ms" => {
                config.heartbeat_interval_ms = value("--heartbeat-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --heartbeat-ms: {e}")))
            }
            "--probe-timeout-ms" => {
                config.probe_timeout_ms = value("--probe-timeout-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --probe-timeout-ms: {e}")))
            }
            "--suspect-after" => {
                config.suspect_after = value("--suspect-after")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --suspect-after: {e}")))
            }
            "--dead-after" => {
                config.dead_after = value("--dead-after")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --dead-after: {e}")))
            }
            "--hedge-min-ms" => {
                config.hedge_min_ms = value("--hedge-min-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --hedge-min-ms: {e}")))
            }
            "--hedge-factor" => {
                let x: f64 = value("--hedge-factor")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --hedge-factor: {e}")));
                if !x.is_finite() || x < 1.0 {
                    fail("--hedge-factor must be a finite number >= 1");
                }
                config.hedge_factor = x;
            }
            "--quorum" => {
                let x: f64 = value("--quorum")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --quorum: {e}")));
                if !x.is_finite() || !(0.0..=1.0).contains(&x) {
                    fail("--quorum must be in [0, 1]");
                }
                config.quorum = x;
            }
            "--virtual-nodes" => {
                config.virtual_nodes = value("--virtual-nodes")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --virtual-nodes: {e}")))
            }
            "--retry-after-ms" => {
                config.retry_after_ms = value("--retry-after-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --retry-after-ms: {e}")))
            }
            "--unreachable-grace-ms" => {
                config.unreachable_grace_ms = value("--unreachable-grace-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --unreachable-grace-ms: {e}")))
            }
            "--seed" => {
                config.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --seed: {e}")))
            }
            "--cache-ttl-secs" => {
                let secs: f64 = value("--cache-ttl-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --cache-ttl-secs: {e}")));
                if !secs.is_finite() || secs <= 0.0 {
                    fail("--cache-ttl-secs must be a positive number");
                }
                config.cache_ttl_secs = Some(secs);
            }
            "--cache-max-bytes" => {
                let bytes: u64 = value("--cache-max-bytes")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --cache-max-bytes: {e}")));
                if bytes == 0 {
                    fail("--cache-max-bytes must be at least 1 (omit to disable)");
                }
                config.cache_max_bytes = Some(bytes);
            }
            "--janitor-interval-secs" => {
                let secs: f64 = value("--janitor-interval-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --janitor-interval-secs: {e}")));
                if !secs.is_finite() || secs <= 0.0 {
                    fail("--janitor-interval-secs must be a positive number");
                }
                config.janitor_interval_secs = secs;
            }
            "--gateway-port" => {
                parsed.gateway_port = Some(
                    value("--gateway-port")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("bad --gateway-port: {e}"))),
                )
            }
            "--http-port" => {
                parsed.http_port = Some(
                    value("--http-port")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("bad --http-port: {e}"))),
                )
            }
            "--addr-file" => parsed.addr_file = Some(PathBuf::from(value("--addr-file"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if parsed.config.suspect_after == 0 || parsed.config.dead_after == 0 {
        fail("--suspect-after and --dead-after must be at least 1");
    }
    parsed
}

fn main() {
    let args = parse_args();
    let config = args.config;
    let coordinator = Coordinator::spawn(config.clone()).unwrap_or_else(|e| {
        eprintln!("error: failed to start coordinator on {}: {e}", config.addr);
        std::process::exit(1);
    });
    if let Some(path) = &args.addr_file {
        // tmp-rename so a watcher never reads a half-written address.
        let tmp = path.with_extension("tmp");
        let write = std::fs::write(&tmp, coordinator.local_addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("error: failed to write --addr-file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    let metrics_server = args.http_port.map(|port| {
        let server = MetricsServer::spawn(port).unwrap_or_else(|e| {
            eprintln!("error: failed to bind telemetry port {port}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "dtnfedd telemetry on http://{}/metrics",
            server.local_addr()
        );
        server
    });
    let gateway = args.gateway_port.map(|port| {
        let gateway = Gateway::spawn(GatewayConfig {
            port,
            seed: config.seed,
            ..GatewayConfig::new(&coordinator.local_addr().to_string())
        })
        .unwrap_or_else(|e| {
            eprintln!("error: failed to bind gateway port {port}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "dtnfedd gateway on http://{}/v1/sweeps",
            gateway.local_addr()
        );
        gateway
    });
    eprintln!(
        "dtnfedd listening on {} (engine {ENGINE_VERSION}, {} workers, quorum {}, hedge >= {} ms)",
        coordinator.local_addr(),
        config.workers.len(),
        config.quorum,
        config.hedge_min_ms,
    );
    let result = coordinator.join();
    if let Some(gateway) = gateway {
        gateway.shutdown();
    }
    if let Some(server) = metrics_server {
        server.shutdown();
    }
    match result {
        Ok(()) => eprintln!("dtnfedd: stopped"),
        Err(e) => {
            eprintln!("dtnfedd: stopped with error: {e}");
            std::process::exit(1);
        }
    }
}
