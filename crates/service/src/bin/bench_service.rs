//! Reproducible service-throughput harness: `cargo run --release -p
//! dtn-service --bin bench_service` stands up an in-process daemon on
//! loopback and measures the service overhead itself — not the
//! simulator, which `bench_sweep` already tracks. Writes
//! `BENCH_service.json`; re-run after protocol or daemon changes and
//! compare against the committed numbers.
//!
//! Three measurements:
//!
//! * `depth1_jobs_per_sec` — submit + blocking-collect one job at a
//!   time: per-job round-trip cost including queueing and dispatch;
//! * `depth64_jobs_per_sec` — submit 64 jobs, then collect them all:
//!   pipelined throughput with a full queue;
//! * `cache_hit_latency_us` — mean submit-to-result latency for jobs
//!   whose results are already in the content-addressed cache;
//! * `depth64_jobs_per_sec_scraped` — the depth-64 batch again while a
//!   live `/metrics` endpoint is scraped continuously, with the jobs/s
//!   delta reported as `telemetry_overhead_pct` (target ≤ 3%).

use dtn_experiments::jobs::PointJob;
use dtn_experiments::{Mobility, SweepConfig};
use dtn_service::{Client, Daemon, DaemonConfig, MetricsServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const DEPTH1_JOBS: usize = 16;
const DEPTH64_JOBS: usize = 64;
const CACHE_HIT_PROBES: usize = 200;

/// Distinct cheap jobs: same tiny scenario, varying seed, so every job
/// simulates (no accidental cache hits) but finishes in milliseconds.
fn job(seed: u64) -> PointJob {
    let cfg = SweepConfig {
        loads: vec![5],
        replications: 1,
        base_seed: seed,
        ..SweepConfig::default()
    };
    PointJob::from_sweep("pure", Mobility::Interval(2000), 5, &cfg)
}

fn collect_all(client: &mut Client, jobs: &[PointJob]) -> f64 {
    let started = Instant::now();
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| client.submit(j).expect("submit"))
        .collect();
    for t in &tickets {
        client.fetch_fragment(&t.job_id).expect("collect");
    }
    jobs.len() as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let daemon = Daemon::spawn(DaemonConfig {
        queue_capacity: DEPTH64_JOBS,
        ..DaemonConfig::default()
    })
    .expect("daemon should bind on loopback");
    let addr = daemon.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Warm-up: first job pays lazy-init costs (thread spawn, allocator).
    let _ = client.submit(&job(0x5EED_0000)).expect("warm-up submit");
    client
        .fetch_outcome(&dtn_service::job_key(&job(0x5EED_0000).to_canonical_json()))
        .expect("warm-up collect");

    // Depth 1: strict submit → wait → submit → wait.
    let depth1_started = Instant::now();
    for i in 0..DEPTH1_JOBS {
        let ticket = client.submit(&job(0x1000 + i as u64)).expect("submit");
        client.fetch_fragment(&ticket.job_id).expect("collect");
    }
    let depth1_jobs_per_sec = DEPTH1_JOBS as f64 / depth1_started.elapsed().as_secs_f64();

    // Depth 64: fill the queue, then drain it.
    let depth64_jobs: Vec<PointJob> = (0..DEPTH64_JOBS).map(|i| job(0x2000 + i as u64)).collect();
    let depth64_jobs_per_sec = collect_all(&mut client, &depth64_jobs);

    // Depth 64 under scrape pressure: the same batch shape over fresh
    // seeds, four batches back to back for a wide enough timing window,
    // first unscraped and then with a 100 Hz `GET /metrics` scraper —
    // already ~500× a realistic Prometheus interval, so the measured
    // delta is a generous upper bound on scrape-induced overhead.
    let multi_batch = |client: &mut Client, base: u64| -> f64 {
        let started = Instant::now();
        let mut done = 0usize;
        for batch in 0..4u64 {
            let jobs: Vec<PointJob> = (0..DEPTH64_JOBS)
                .map(|i| job(base + batch * 0x100 + i as u64))
                .collect();
            collect_all(client, &jobs);
            done += jobs.len();
        }
        done as f64 / started.elapsed().as_secs_f64()
    };
    let scrape_baseline_jobs_per_sec = multi_batch(&mut client, 0x3000);
    let metrics = MetricsServer::spawn(0).expect("metrics server should bind");
    let metrics_addr = metrics.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scraper_stop = Arc::clone(&stop);
    let scraper = std::thread::spawn(move || {
        let mut scrapes = 0u64;
        while !scraper_stop.load(Ordering::Relaxed) {
            if let Ok(mut s) = TcpStream::connect(metrics_addr) {
                let _ = s.write_all(b"GET /metrics HTTP/1.0\r\nHost: b\r\n\r\n");
                let mut body = String::new();
                let _ = s.read_to_string(&mut body);
                scrapes += 1;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        scrapes
    });
    let depth64_scraped_jobs_per_sec = multi_batch(&mut client, 0x4000);
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper join");
    metrics.shutdown();
    let telemetry_overhead_pct =
        100.0 * (1.0 - depth64_scraped_jobs_per_sec / scrape_baseline_jobs_per_sec).max(0.0);

    // Cache hits: resubmit one known job many times and time each full
    // submit-to-result round trip.
    let hot = job(0x1000);
    let mut total_us = 0.0;
    for _ in 0..CACHE_HIT_PROBES {
        let started = Instant::now();
        let ticket = client.submit(&hot).expect("resubmit");
        assert!(ticket.cached, "probe job must be served from cache");
        client.fetch_fragment(&ticket.job_id).expect("collect");
        total_us += started.elapsed().as_secs_f64() * 1e6;
    }
    let cache_hit_latency_us = total_us / CACHE_HIT_PROBES as f64;

    let stats = client.stats_raw().expect("stats");
    client.shutdown().expect("shutdown");
    daemon.join().expect("join");

    let json = format!(
        "{{\n  \"workload\": \"pure @ interval=2000 load 5 x 1 replication per job, loopback daemon\",\n  \
         \"depth1_jobs\": {DEPTH1_JOBS},\n  \
         \"depth1_jobs_per_sec\": {depth1_jobs_per_sec:.1},\n  \
         \"depth64_jobs\": {DEPTH64_JOBS},\n  \
         \"depth64_jobs_per_sec\": {depth64_jobs_per_sec:.1},\n  \
         \"depth64_jobs_per_sec_unscraped\": {scrape_baseline_jobs_per_sec:.1},\n  \
         \"depth64_jobs_per_sec_scraped\": {depth64_scraped_jobs_per_sec:.1},\n  \
         \"metrics_scrapes_during_batch\": {scrapes},\n  \
         \"telemetry_overhead_pct\": {telemetry_overhead_pct:.1},\n  \
         \"cache_hit_probes\": {CACHE_HIT_PROBES},\n  \
         \"cache_hit_latency_us\": {cache_hit_latency_us:.1},\n  \
         \"daemon_stats\": {stats}\n}}\n"
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    print!("{json}");
}
