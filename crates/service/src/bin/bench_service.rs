//! Reproducible service-throughput harness: `cargo run --release -p
//! dtn-service --bin bench_service` stands up an in-process daemon on
//! loopback and measures the service overhead itself — not the
//! simulator, which `bench_sweep` already tracks. Writes
//! `BENCH_service.json`; re-run after protocol or daemon changes and
//! compare against the committed numbers.
//!
//! Three measurements:
//!
//! * `depth1_jobs_per_sec` — submit + blocking-collect one job at a
//!   time: per-job round-trip cost including queueing and dispatch;
//! * `depth64_jobs_per_sec` — submit 64 jobs, then collect them all:
//!   pipelined throughput with a full queue;
//! * `cache_hit_latency_us` — mean submit-to-result latency for jobs
//!   whose results are already in the content-addressed cache;
//! * `depth64_jobs_per_sec_scraped` — the depth-64 batch again while a
//!   live `/metrics` endpoint is scraped continuously, with the jobs/s
//!   delta reported as `telemetry_overhead_pct` (target ≤ 3%).
//!
//! A gateway stanza rides in the same JSON: the daemon fronted by the
//! HTTP/JSON gateway, timing a cold 48-point robustness sweep, the
//! warm (fully cached) chunked-stream replay against the raw wire
//! path fetching the identical fragments
//! (`gateway_stream_overhead_pct`), and idempotent `POST /v1/sweeps`
//! resubmit throughput over one fresh TCP connection per request.
//!
//! A federation stanza follows (written to `BENCH_federation.json`):
//! the same batch shape pushed through a `dtnfedd` coordinator at
//! 1/2/4/8 workers (the scaling curve), then a 4-worker batch with one
//! worker killed mid-flight, timing how long the coordinator takes to
//! declare the shard dead and re-dispatch its points
//! (`time_to_failover_ms`). The recovery run prefers `kill -9` on a
//! real `dtnsimd` child (built next to this binary); when that binary
//! is missing it falls back to an abrupt in-process shutdown, which
//! exercises the identical refused-connection detection path.
//!
//! The scaling curve is compute-bound on purpose, so its ceiling is
//! `min(workers, host_cores)` — `host_cores` is included in the JSON
//! to make a flat curve on a one-core box self-explaining.

use dtn_experiments::jobs::PointJob;
use dtn_experiments::{grid_point_jobs, Mobility, SweepConfig};
use dtn_service::httpd;
use dtn_service::json::Value;
use dtn_service::{
    job_key, Client, Coordinator, CoordinatorConfig, Daemon, DaemonConfig, Gateway, GatewayConfig,
    Membership, MetricsServer, ResilientClient, RetryPolicy,
};
use dtn_sim::Threads;
use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEPTH1_JOBS: usize = 16;
const DEPTH64_JOBS: usize = 64;
const CACHE_HIT_PROBES: usize = 200;
const GATEWAY_STREAM_PROBES: usize = 20;
const GATEWAY_SUBMIT_PROBES: usize = 200;
const FED_CURVE_JOBS: usize = 64;
const FED_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Distinct cheap jobs: same tiny scenario, varying seed, so every job
/// simulates (no accidental cache hits) but finishes in milliseconds.
fn job(seed: u64) -> PointJob {
    let cfg = SweepConfig {
        loads: vec![5],
        replications: 1,
        base_seed: seed,
        ..SweepConfig::default()
    };
    PointJob::from_sweep("pure", Mobility::Interval(2000), 5, &cfg)
}

fn collect_all(client: &mut Client, jobs: &[PointJob]) -> f64 {
    let started = Instant::now();
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| client.submit(j).expect("submit"))
        .collect();
    for t in &tickets {
        client.fetch_fragment(&t.job_id).expect("collect");
    }
    jobs.len() as f64 / started.elapsed().as_secs_f64()
}

/// Federation batch jobs: heavy enough (tens of ms of simulation) that
/// worker compute, not wire hops, dominates — otherwise the scaling
/// curve would only measure the coordinator's relay overhead.
fn fed_job(seed: u64) -> PointJob {
    let cfg = SweepConfig {
        loads: vec![5],
        replications: 100,
        base_seed: seed,
        threads: Threads::Sequential,
        ..SweepConfig::default()
    };
    PointJob::from_sweep("pure", Mobility::Interval(2000), 5, &cfg)
}

fn spawn_fed_worker() -> Daemon {
    Daemon::spawn(DaemonConfig {
        workers: 1,
        job_threads: Threads::Sequential,
        queue_capacity: 2 * FED_CURVE_JOBS,
        ..DaemonConfig::default()
    })
    .expect("federation worker should bind")
}

/// Drain one `GET /v1/sweeps/{id}/stream` to its terminal report,
/// returning the point-line count and the report byte length.
fn drain_stream(gateway: &str, id: &str) -> (usize, usize) {
    let (status, _, reader) =
        httpd::http_open(gateway, "GET", &format!("/v1/sweeps/{id}/stream"), None)
            .expect("open sweep stream");
    assert_eq!(status, 200, "stream must answer 200");
    let mut lines = std::io::BufReader::new(reader);
    let mut points = 0usize;
    loop {
        let mut line = String::new();
        if lines.read_line(&mut line).expect("stream read") == 0 {
            panic!("stream ended without a terminal line");
        }
        let v = Value::parse(line.trim_end_matches('\n')).expect("stream line parses");
        match v.get("type").and_then(Value::as_str) {
            Some("point") => points += 1,
            Some("report") => {
                let bytes = v.get("bytes").and_then(Value::as_u64).unwrap_or(0) as usize;
                let mut report = vec![0u8; bytes];
                lines.read_exact(&mut report).expect("report body");
                return (points, bytes);
            }
            other => panic!("unexpected stream line type {other:?}: {line}"),
        }
    }
}

fn fed_stat(stats_raw: &str, key: &str) -> u64 {
    Value::parse(stats_raw)
        .expect("stats parse")
        .get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats reply missing {key}: {stats_raw}"))
}

fn wait_for_addr(path: &Path) -> String {
    for _ in 0..600 {
        if let Ok(text) = std::fs::read_to_string(path) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                return text;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("worker address never appeared at {}", path.display());
}

/// A federation worker for the recovery benchmark: a real `dtnsimd`
/// child when the binary is available (so the kill is a genuine
/// SIGKILL), an in-process daemon otherwise.
enum FedWorker {
    Proc(std::process::Child, String),
    Local(Option<Daemon>, String),
}

impl FedWorker {
    fn spawn_proc(bin: &Path, index: usize) -> FedWorker {
        let dir = std::env::temp_dir().join(format!("dtn_bench_fed_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk tmp dir");
        let addr_file = dir.join(format!("addr{index}"));
        let _ = std::fs::remove_file(&addr_file);
        let child = std::process::Command::new(bin)
            .args([
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--job-threads",
                "1",
            ])
            .arg("--addr-file")
            .arg(&addr_file)
            .spawn()
            .expect("spawn dtnsimd");
        let addr = wait_for_addr(&addr_file);
        FedWorker::Proc(child, addr)
    }

    fn spawn_local() -> FedWorker {
        let daemon = spawn_fed_worker();
        let addr = daemon.local_addr().to_string();
        FedWorker::Local(Some(daemon), addr)
    }

    fn addr(&self) -> String {
        match self {
            FedWorker::Proc(_, addr) | FedWorker::Local(_, addr) => addr.clone(),
        }
    }

    /// Stop abruptly: SIGKILL for a child, immediate shutdown for the
    /// in-process fallback (queued jobs are abandoned either way, and
    /// both leave a refused-connection socket behind for the prober).
    fn kill(&mut self) {
        match self {
            FedWorker::Proc(child, _) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            FedWorker::Local(daemon, _) => {
                if let Some(d) = daemon.take() {
                    d.request_shutdown();
                    let _ = d.join();
                }
            }
        }
    }
}

fn main() {
    let daemon = Daemon::spawn(DaemonConfig {
        queue_capacity: DEPTH64_JOBS,
        ..DaemonConfig::default()
    })
    .expect("daemon should bind on loopback");
    let addr = daemon.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Warm-up: first job pays lazy-init costs (thread spawn, allocator).
    let _ = client.submit(&job(0x5EED_0000)).expect("warm-up submit");
    client
        .fetch_outcome(&dtn_service::job_key(&job(0x5EED_0000).to_canonical_json()))
        .expect("warm-up collect");

    // Depth 1: strict submit → wait → submit → wait.
    let depth1_started = Instant::now();
    for i in 0..DEPTH1_JOBS {
        let ticket = client.submit(&job(0x1000 + i as u64)).expect("submit");
        client.fetch_fragment(&ticket.job_id).expect("collect");
    }
    let depth1_jobs_per_sec = DEPTH1_JOBS as f64 / depth1_started.elapsed().as_secs_f64();

    // Depth 64: fill the queue, then drain it.
    let depth64_jobs: Vec<PointJob> = (0..DEPTH64_JOBS).map(|i| job(0x2000 + i as u64)).collect();
    let depth64_jobs_per_sec = collect_all(&mut client, &depth64_jobs);

    // Depth 64 under scrape pressure: the same batch shape over fresh
    // seeds, four batches back to back for a wide enough timing window,
    // first unscraped and then with a 100 Hz `GET /metrics` scraper —
    // already ~500× a realistic Prometheus interval, so the measured
    // delta is a generous upper bound on scrape-induced overhead.
    let multi_batch = |client: &mut Client, base: u64| -> f64 {
        let started = Instant::now();
        let mut done = 0usize;
        for batch in 0..4u64 {
            let jobs: Vec<PointJob> = (0..DEPTH64_JOBS)
                .map(|i| job(base + batch * 0x100 + i as u64))
                .collect();
            collect_all(client, &jobs);
            done += jobs.len();
        }
        done as f64 / started.elapsed().as_secs_f64()
    };
    let scrape_baseline_jobs_per_sec = multi_batch(&mut client, 0x3000);
    let metrics = MetricsServer::spawn(0).expect("metrics server should bind");
    let metrics_addr = metrics.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scraper_stop = Arc::clone(&stop);
    let scraper = std::thread::spawn(move || {
        let mut scrapes = 0u64;
        while !scraper_stop.load(Ordering::Relaxed) {
            if let Ok(mut s) = TcpStream::connect(metrics_addr) {
                let _ = s.write_all(b"GET /metrics HTTP/1.0\r\nHost: b\r\n\r\n");
                let mut body = String::new();
                let _ = s.read_to_string(&mut body);
                scrapes += 1;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        scrapes
    });
    let depth64_scraped_jobs_per_sec = multi_batch(&mut client, 0x4000);
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper join");
    metrics.shutdown();
    let telemetry_overhead_pct =
        100.0 * (1.0 - depth64_scraped_jobs_per_sec / scrape_baseline_jobs_per_sec).max(0.0);

    // Cache hits: resubmit one known job many times and time each full
    // submit-to-result round trip.
    let hot = job(0x1000);
    let mut total_us = 0.0;
    for _ in 0..CACHE_HIT_PROBES {
        let started = Instant::now();
        let ticket = client.submit(&hot).expect("resubmit");
        assert!(ticket.cached, "probe job must be served from cache");
        client.fetch_fragment(&ticket.job_id).expect("collect");
        total_us += started.elapsed().as_secs_f64() * 1e6;
    }
    let cache_hit_latency_us = total_us / CACHE_HIT_PROBES as f64;

    // ------------------------------------------------------------------
    // Gateway: the same daemon fronted by the HTTP/JSON gateway. A
    // cold 48-point robustness sweep is submitted and streamed once,
    // then the warm (fully cached) replay is raced against the raw
    // wire path fetching the identical fragments — both serve from
    // the daemon's cache, so the delta is pure HTTP framing plus the
    // per-request connect cost.
    // ------------------------------------------------------------------
    let gateway = Gateway::spawn(GatewayConfig {
        seed: 41,
        ..GatewayConfig::new(&addr)
    })
    .expect("gateway should bind");
    let gw_addr = gateway.local_addr().to_string();
    let spec: &[u8] = b"{\"mobility\":\"interval=2000\",\"load\":5,\"reps\":1,\"seed\":77}";
    let submit = |expect_status: &[u16]| -> String {
        let r = httpd::http_request(
            &gw_addr,
            "POST",
            "/v1/sweeps",
            Some(("application/json", spec)),
        )
        .expect("POST /v1/sweeps");
        assert!(
            expect_status.contains(&r.status),
            "submit answered {}: {}",
            r.status,
            String::from_utf8_lossy(&r.body)
        );
        Value::parse(String::from_utf8_lossy(&r.body).trim())
            .expect("submit body parses")
            .get("id")
            .and_then(Value::as_str)
            .map(str::to_string)
            .expect("submit reply carries the sweep id")
    };

    let cold_started = Instant::now();
    let sweep_id = submit(&[202]);
    let (gw_points, gw_report_bytes) = drain_stream(&gw_addr, &sweep_id);
    let gateway_cold_sweep_secs = cold_started.elapsed().as_secs_f64();

    let mut warm_ms = 0.0;
    for _ in 0..GATEWAY_STREAM_PROBES {
        let started = Instant::now();
        let id = submit(&[200]);
        drain_stream(&gw_addr, &id);
        warm_ms += started.elapsed().as_secs_f64() * 1e3;
    }
    let gateway_warm_stream_ms = warm_ms / GATEWAY_STREAM_PROBES as f64;

    // Raw-TCP baseline: the identical grid jobs over the persistent
    // wire connection, every fragment already cached by the cold run
    // (the gateway derives the same content addresses).
    let grid_cfg = SweepConfig {
        loads: vec![5],
        replications: 1,
        base_seed: 77,
        buffer_capacity: 10,
        ..SweepConfig::default()
    };
    let grid_jobs: Vec<PointJob> = grid_point_jobs(Mobility::Interval(2000), &grid_cfg)
        .expect("robustness grid")
        .iter()
        .map(|p| p.job.clone())
        .collect();
    assert_eq!(
        grid_jobs.len(),
        gw_points,
        "gateway and local grids must agree"
    );
    let mut wire_ms = 0.0;
    for _ in 0..GATEWAY_STREAM_PROBES {
        let started = Instant::now();
        for grid_job in &grid_jobs {
            let ticket = client.submit(grid_job).expect("wire submit");
            assert!(
                ticket.cached,
                "grid job must be cached after the cold sweep"
            );
            client.fetch_fragment(&ticket.job_id).expect("wire collect");
        }
        wire_ms += started.elapsed().as_secs_f64() * 1e3;
    }
    let wire_warm_collect_ms = wire_ms / GATEWAY_STREAM_PROBES as f64;
    let gateway_stream_overhead_pct =
        100.0 * (gateway_warm_stream_ms / wire_warm_collect_ms - 1.0).max(0.0);

    // Submit throughput: idempotent resubmits of the now-done sweep,
    // one fresh TCP connection per POST — the honest gateway cost,
    // where the wire client amortises its socket across requests.
    let posts_started = Instant::now();
    for _ in 0..GATEWAY_SUBMIT_PROBES {
        submit(&[200]);
    }
    let gateway_posts_per_sec =
        GATEWAY_SUBMIT_PROBES as f64 / posts_started.elapsed().as_secs_f64();
    gateway.shutdown();

    let stats = client.stats_raw().expect("stats");
    client.shutdown().expect("shutdown");
    daemon.join().expect("join");

    let json = format!(
        "{{\n  \"workload\": \"pure @ interval=2000 load 5 x 1 replication per job, loopback daemon\",\n  \
         \"depth1_jobs\": {DEPTH1_JOBS},\n  \
         \"depth1_jobs_per_sec\": {depth1_jobs_per_sec:.1},\n  \
         \"depth64_jobs\": {DEPTH64_JOBS},\n  \
         \"depth64_jobs_per_sec\": {depth64_jobs_per_sec:.1},\n  \
         \"depth64_jobs_per_sec_unscraped\": {scrape_baseline_jobs_per_sec:.1},\n  \
         \"depth64_jobs_per_sec_scraped\": {depth64_scraped_jobs_per_sec:.1},\n  \
         \"metrics_scrapes_during_batch\": {scrapes},\n  \
         \"telemetry_overhead_pct\": {telemetry_overhead_pct:.1},\n  \
         \"cache_hit_probes\": {CACHE_HIT_PROBES},\n  \
         \"cache_hit_latency_us\": {cache_hit_latency_us:.1},\n  \
         \"gateway_sweep_points\": {gw_points},\n  \
         \"gateway_report_bytes\": {gw_report_bytes},\n  \
         \"gateway_cold_sweep_secs\": {gateway_cold_sweep_secs:.3},\n  \
         \"gateway_stream_probes\": {GATEWAY_STREAM_PROBES},\n  \
         \"gateway_warm_stream_ms\": {gateway_warm_stream_ms:.2},\n  \
         \"wire_warm_collect_ms\": {wire_warm_collect_ms:.2},\n  \
         \"gateway_stream_overhead_pct\": {gateway_stream_overhead_pct:.1},\n  \
         \"gateway_submit_posts_per_sec\": {gateway_posts_per_sec:.1},\n  \
         \"daemon_stats\": {stats}\n}}\n"
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    print!("{json}");

    // ------------------------------------------------------------------
    // Federation scaling curve: the same batch shape through a dtnfedd
    // coordinator at 1/2/4/8 workers.
    // ------------------------------------------------------------------
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for (ci, &n) in FED_WORKER_COUNTS.iter().enumerate() {
        let workers: Vec<Daemon> = (0..n).map(|_| spawn_fed_worker()).collect();
        let addrs: Vec<String> = workers.iter().map(|d| d.local_addr().to_string()).collect();
        let coordinator = Coordinator::spawn(CoordinatorConfig {
            workers: addrs,
            heartbeat_interval_ms: 100,
            seed: 23,
            ..CoordinatorConfig::default()
        })
        .expect("coordinator should bind");
        let mut fed_client = ResilientClient::new(
            &coordinator.local_addr().to_string(),
            RetryPolicy {
                seed: 29,
                ..RetryPolicy::default()
            },
        );
        let jobs: Vec<PointJob> = (0..FED_CURVE_JOBS)
            .map(|i| fed_job(0x6000 + ci as u64 * 0x100 + i as u64))
            .collect();
        let started = Instant::now();
        fed_client
            .collect_fragments(&jobs)
            .expect("federated batch");
        scaling.push((n, jobs.len() as f64 / started.elapsed().as_secs_f64()));
        coordinator.request_shutdown();
        coordinator.join().expect("coordinator join");
        for worker in workers {
            worker.request_shutdown();
            worker.join().expect("worker join");
        }
    }

    // ------------------------------------------------------------------
    // Failover recovery: 4 workers, the busiest one killed mid-batch;
    // time from the kill to the coordinator's first re-dispatch.
    // ------------------------------------------------------------------
    let dtnsimd = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("dtnsimd")))
        .filter(|p| p.exists());
    let kill_mode = if dtnsimd.is_some() {
        "sigkill"
    } else {
        "shutdown"
    };
    let mut workers: Vec<FedWorker> = (0..4)
        .map(|i| match &dtnsimd {
            Some(bin) => FedWorker::spawn_proc(bin, i),
            None => FedWorker::spawn_local(),
        })
        .collect();
    let addrs: Vec<String> = workers.iter().map(FedWorker::addr).collect();
    let coordinator = Coordinator::spawn(CoordinatorConfig {
        workers: addrs.clone(),
        heartbeat_interval_ms: 50,
        probe_timeout_ms: 500,
        suspect_after: 2,
        dead_after: 3,
        seed: 31,
        ..CoordinatorConfig::default()
    })
    .expect("coordinator should bind");
    let fed_addr = coordinator.local_addr().to_string();
    let jobs: Vec<PointJob> = (0..FED_CURVE_JOBS)
        .map(|i| fed_job(0x8000 + i as u64))
        .collect();
    // Kill the shard that owns the most points, so the failover has
    // real work to rescue (same ring the coordinator builds).
    let owners: Vec<usize> = {
        let mut m = Membership::new(CoordinatorConfig::default().virtual_nodes, 2, 3);
        for addr in &addrs {
            m.add(addr);
        }
        jobs.iter()
            .map(|j| {
                m.route(&job_key(&j.to_canonical_json()))
                    .expect("live ring")
            })
            .collect()
    };
    let kill_index = (0..4usize)
        .max_by_key(|&s| owners.iter().filter(|&&o| o == s).count())
        .expect("4 shards");
    let killed_owned = owners.iter().filter(|&&o| o == kill_index).count();

    let collector = {
        let jobs = jobs.clone();
        let fed_addr = fed_addr.clone();
        std::thread::spawn(move || {
            let mut client = ResilientClient::new(
                &fed_addr,
                RetryPolicy {
                    seed: 37,
                    ..RetryPolicy::default()
                },
            );
            let started = Instant::now();
            let pairs = client.collect_fragments(&jobs).expect("recovery batch");
            (started.elapsed().as_secs_f64(), pairs.len())
        })
    };
    let mut stats_client = Client::connect(&fed_addr).expect("stats connection");
    let wait_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let completed = fed_stat(&stats_client.stats_raw().expect("stats"), "completed");
        if completed >= 4 {
            break;
        }
        assert!(
            Instant::now() < wait_deadline,
            "no federated point completed within 60s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let kill_started = Instant::now();
    workers[kill_index].kill();
    let time_to_failover_ms = loop {
        if fed_stat(&stats_client.stats_raw().expect("stats"), "failovers") >= 1 {
            break kill_started.elapsed().as_secs_f64() * 1e3;
        }
        assert!(
            kill_started.elapsed() < Duration::from_secs(60),
            "failover never fired after the worker kill"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    let (recovery_batch_secs, collected) = collector.join().expect("collector join");
    assert_eq!(collected, FED_CURVE_JOBS, "recovery batch lost points");
    let final_stats = stats_client.stats_raw().expect("stats");
    let failovers = fed_stat(&final_stats, "failovers");
    let fed_completed = fed_stat(&final_stats, "completed");
    coordinator.request_shutdown();
    coordinator.join().expect("coordinator join");
    for worker in &mut workers {
        worker.kill();
    }

    let scaling_json: String = scaling
        .iter()
        .map(|(n, jps)| format!("{{\"workers\": {n}, \"jobs_per_sec\": {jps:.1}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    // The scaling curve is compute-bound by design, so it can only rise
    // while the host has spare cores: on an H-core machine the curve
    // saturates at ~H workers. host_cores is recorded so a flat curve
    // on a small CI box reads as a host limit, not a coordinator one.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fed_json = format!(
        "{{\n  \"workload\": \"pure @ interval=2000 load 5 x 100 replications per job, loopback federation\",\n  \
         \"curve_jobs\": {FED_CURVE_JOBS},\n  \
         \"host_cores\": {host_cores},\n  \
         \"scaling\": [{scaling_json}],\n  \
         \"recovery_workers\": 4,\n  \
         \"recovery_jobs\": {FED_CURVE_JOBS},\n  \
         \"recovery_kill_mode\": \"{kill_mode}\",\n  \
         \"killed_shard_owned_jobs\": {killed_owned},\n  \
         \"time_to_failover_ms\": {time_to_failover_ms:.1},\n  \
         \"recovery_batch_secs\": {recovery_batch_secs:.3},\n  \
         \"failovers\": {failovers},\n  \
         \"completed\": {fed_completed}\n}}\n"
    );
    std::fs::write("BENCH_federation.json", &fed_json).expect("write BENCH_federation.json");
    print!("{fed_json}");
}
