//! `faultproxy` — a deterministic fault-injection TCP proxy for the
//! `dtnsim`/`dtnsimd` wire protocol.
//!
//! Sits between a client and a daemon, forwarding frames under a
//! reproducible fault schedule (see `dtn_service::proxy` for the plan
//! grammar). Used by the chaos CI jobs to prove that a proxy-faulted
//! sweep produces a byte-identical report to a clean one.
//!
//! ```text
//! faultproxy --listen 127.0.0.1:7711 --upstream 127.0.0.1:7700 \
//!            --plan 'drop=0.05,trunc=0.02,sever=0.1,frames=2,seed=42'
//! dtnsim --connect 127.0.0.1:7711 ...   # chaos between here and the daemon
//! ```
//!
//! `--upstream-file` (a file holding `HOST:PORT`) lets the proxy follow
//! a daemon that restarts on a new port after a crash — the scenario
//! the kill-and-recover CI job drives. The file is re-read every second
//! **and** re-resolved whenever an upstream dial fails, so a restarted
//! worker is picked up by the very connection that found the old port
//! dead.

use dtn_service::{FaultProxy, ProxyPlan};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
faultproxy - deterministic fault-injection proxy for the dtnsim wire protocol

USAGE:
    faultproxy --upstream HOST:PORT [OPTIONS]
    faultproxy --upstream-file PATH [OPTIONS]

OPTIONS:
    --listen HOST:PORT    Bind address (default 127.0.0.1:0 — the chosen
                          address is printed on stderr)
    --upstream HOST:PORT  Forward connections to this daemon
    --upstream-file PATH  Read the upstream address from PATH (re-read every
                          second and on every failed upstream dial, so a
                          daemon restarted on a new port is followed live;
                          the file is what dtnsimd --addr-file writes)
    --plan SCHEDULE       Fault schedule, e.g.
                          'drop=0.05,trunc=0.02,sever=0.1,corrupt=0.01,\\
                           delay=0.2,delay_ms=5,frames=2,seed=42'
                          (default: forward everything faithfully)
    --addr-file PATH      Write the bound listen address to PATH once live
    --help                Show this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    listen: String,
    upstream: Option<String>,
    upstream_file: Option<PathBuf>,
    plan: ProxyPlan,
    addr_file: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        listen: "127.0.0.1:0".to_string(),
        upstream: None,
        upstream_file: None,
        plan: ProxyPlan::default(),
        addr_file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--listen" => parsed.listen = value("--listen"),
            "--upstream" => parsed.upstream = Some(value("--upstream")),
            "--upstream-file" => {
                parsed.upstream_file = Some(PathBuf::from(value("--upstream-file")))
            }
            "--plan" => {
                parsed.plan = ProxyPlan::parse(&value("--plan"))
                    .unwrap_or_else(|e| fail(&format!("bad --plan: {e}")))
            }
            "--addr-file" => parsed.addr_file = Some(PathBuf::from(value("--addr-file"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if parsed.upstream.is_none() && parsed.upstream_file.is_none() {
        fail("--upstream HOST:PORT or --upstream-file PATH is required");
    }
    parsed
}

fn read_upstream_file(path: &PathBuf) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

fn main() {
    let args = parse_args();
    let initial = match (&args.upstream, &args.upstream_file) {
        (Some(addr), _) => addr.clone(),
        (None, Some(path)) => {
            // The daemon may not have written its address yet; wait for it.
            let mut waited = 0u32;
            loop {
                if let Some(addr) = read_upstream_file(path) {
                    break addr;
                }
                waited += 1;
                if waited > 600 {
                    eprintln!("error: --upstream-file {} never appeared", path.display());
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        (None, None) => unreachable!("parse_args requires one"),
    };
    let proxy = FaultProxy::spawn(&args.listen, &initial, args.plan).unwrap_or_else(|e| {
        eprintln!("error: failed to bind {}: {e}", args.listen);
        std::process::exit(1);
    });
    if let Some(path) = args.upstream_file.clone() {
        // Connect-failure fallback: a dead dial re-reads the address
        // file immediately instead of waiting out the 1 s poll below.
        proxy.set_resolver(std::sync::Arc::new(move || read_upstream_file(&path)));
    }
    eprintln!(
        "faultproxy listening on {} -> {initial} (plan {:?})",
        proxy.local_addr(),
        args.plan
    );
    if let Some(path) = &args.addr_file {
        let tmp = path.with_extension("tmp");
        let write = std::fs::write(&tmp, proxy.local_addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("error: failed to write --addr-file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    // Follow the upstream file (daemon restarts land on new ports); with
    // a fixed --upstream this loop is just a park.
    let mut current = initial;
    loop {
        std::thread::sleep(Duration::from_secs(1));
        if let Some(path) = &args.upstream_file {
            if let Some(addr) = read_upstream_file(path) {
                if addr != current {
                    eprintln!("faultproxy retargeting upstream {current} -> {addr}");
                    proxy.set_upstream(&addr);
                    current = addr;
                }
            }
        }
    }
}
