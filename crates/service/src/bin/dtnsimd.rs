//! `dtnsimd` — the simulation daemon.
//!
//! Binds a TCP listener, serves the wire protocol (see
//! `dtn_service::wire`), and blocks until a client sends `shutdown`.
//! On shutdown the queue drains (every admitted job completes and is
//! collectable) and the result-cache index is persisted before exit.
//!
//! With `--http-port` a std-only HTTP sidecar serves the process
//! telemetry registry as Prometheus text on `GET /metrics`;
//! `--telemetry-jsonl` additionally appends periodic JSONL snapshots.
//!
//! ```text
//! dtnsimd --addr 127.0.0.1:7700 --workers 4 --cache results/cache.jsonl \
//!         --http-port 9100 --telemetry-jsonl telemetry.jsonl
//! dtnsim --connect 127.0.0.1:7700 ...   # submit work from any client
//! curl  http://127.0.0.1:9100/metrics   # scrape operational metrics
//! ```

use dtn_service::{
    Daemon, DaemonConfig, Gateway, GatewayConfig, MetricsServer, TelemetrySnapshotter,
    ENGINE_VERSION,
};
use dtn_sim::Threads;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
dtnsimd - DTN simulation daemon

USAGE:
    dtnsimd [OPTIONS]

OPTIONS:
    --addr HOST:PORT        Bind address (default 127.0.0.1:7700; port 0 picks a free port)
    --workers N             Worker threads for concurrent jobs (default: all cores; 0 = queue only)
    --job-threads N         Threads per job's replications (default: auto)
    --queue-capacity N      Bounded queue size; submits beyond it are rejected
                            with retry_after_ms (default 64)
    --retry-after-ms N      Backpressure hint returned on rejection (default 250)
    --cache PATH            Persist the content-addressed result cache to PATH
                            (JSONL; reloaded on startup, engine-version checked)
    --http-port N           Serve Prometheus-text telemetry on
                            http://127.0.0.1:N/metrics (0 picks a free port;
                            omit to disable the HTTP sidecar)
    --telemetry-jsonl PATH  Append one telemetry snapshot line to PATH every
                            --telemetry-interval-secs (plus one on shutdown)
    --telemetry-interval-secs N
                            Snapshot period for --telemetry-jsonl (default 5)
    --slow-job-secs SECS    Log a stderr line when one job's simulation phase
                            exceeds SECS wall seconds (float; default: off)
    --journal-flush-entries N
                            Flush the cache journal after N unflushed inserts
                            (default 8); a crash loses at most one flush window
    --journal-flush-secs SECS
                            ...or once the oldest unflushed insert is SECS old,
                            whichever comes first (float; default 1.0)
    --frame-deadline-ms N   Slowloris guard: a request frame must arrive whole
                            within N ms of its first byte (default 10000;
                            0 disables)
    --idle-timeout-secs N   Hang up connections silent for N seconds
                            (default 300; 0 disables)
    --queue-deadline-ms N   Shed jobs that waited in the queue longer than N ms
                            instead of running them late (default: off)
    --cache-ttl-secs SECS   Janitor: expire cached results older than SECS
                            (float; default: off)
    --cache-max-bytes N     Janitor: evict least-recently-used cached results
                            while the resident set exceeds N bytes (default: off)
    --janitor-interval-secs SECS
                            Nominal period between janitor sweeps (float,
                            early-jittered; default 5.0)
    --gateway-port N        Serve the HTTP/JSON gateway (POST /v1/sweeps,
                            chunked result streaming) on http://127.0.0.1:N
                            (0 picks a free port; omit to disable)
    --addr-file PATH        Write the bound address to PATH once listening
                            (lets scripts find a port-0 daemon, and a restarted
                            one after a crash)
    --help                  Show this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    config: DaemonConfig,
    gateway_port: Option<u16>,
    http_port: Option<u16>,
    telemetry_jsonl: Option<PathBuf>,
    telemetry_interval_secs: u64,
    addr_file: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        config: DaemonConfig {
            addr: "127.0.0.1:7700".to_string(),
            ..DaemonConfig::default()
        },
        gateway_port: None,
        http_port: None,
        telemetry_jsonl: None,
        telemetry_interval_secs: 5,
        addr_file: None,
    };
    let config = &mut parsed.config;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => {
                config.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --workers: {e}")))
            }
            "--job-threads" => {
                let n: usize = value("--job-threads")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --job-threads: {e}")));
                config.job_threads = match NonZeroUsize::new(n) {
                    Some(n) if n.get() == 1 => Threads::Sequential,
                    Some(n) => Threads::Fixed(n),
                    None => Threads::Auto,
                };
            }
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --queue-capacity: {e}")))
            }
            "--retry-after-ms" => {
                config.retry_after_ms = value("--retry-after-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --retry-after-ms: {e}")))
            }
            "--cache" => config.cache_path = Some(PathBuf::from(value("--cache"))),
            "--http-port" => {
                parsed.http_port = Some(
                    value("--http-port")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("bad --http-port: {e}"))),
                )
            }
            "--telemetry-jsonl" => {
                parsed.telemetry_jsonl = Some(PathBuf::from(value("--telemetry-jsonl")))
            }
            "--telemetry-interval-secs" => {
                parsed.telemetry_interval_secs = value("--telemetry-interval-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --telemetry-interval-secs: {e}")));
                if parsed.telemetry_interval_secs == 0 {
                    fail("--telemetry-interval-secs must be at least 1");
                }
            }
            "--slow-job-secs" => {
                let secs: f64 = value("--slow-job-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --slow-job-secs: {e}")));
                if !secs.is_finite() || secs <= 0.0 {
                    fail("--slow-job-secs must be a positive number");
                }
                config.slow_job_secs = Some(secs);
            }
            "--journal-flush-entries" => {
                config.journal_flush_entries = value("--journal-flush-entries")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --journal-flush-entries: {e}")));
                if config.journal_flush_entries == 0 {
                    fail("--journal-flush-entries must be at least 1");
                }
            }
            "--journal-flush-secs" => {
                let secs: f64 = value("--journal-flush-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --journal-flush-secs: {e}")));
                if !secs.is_finite() || secs <= 0.0 {
                    fail("--journal-flush-secs must be a positive number");
                }
                config.journal_flush_secs = secs;
            }
            "--frame-deadline-ms" => {
                let ms: u64 = value("--frame-deadline-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --frame-deadline-ms: {e}")));
                config.frame_deadline_ms = (ms > 0).then_some(ms);
            }
            "--idle-timeout-secs" => {
                let secs: u64 = value("--idle-timeout-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --idle-timeout-secs: {e}")));
                config.idle_timeout_secs = (secs > 0).then_some(secs);
            }
            "--queue-deadline-ms" => {
                let ms: u64 = value("--queue-deadline-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --queue-deadline-ms: {e}")));
                if ms == 0 {
                    fail("--queue-deadline-ms must be at least 1 (omit to disable)");
                }
                config.queue_deadline_ms = Some(ms);
            }
            "--cache-ttl-secs" => {
                let secs: f64 = value("--cache-ttl-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --cache-ttl-secs: {e}")));
                if !secs.is_finite() || secs <= 0.0 {
                    fail("--cache-ttl-secs must be a positive number");
                }
                config.cache_ttl_secs = Some(secs);
            }
            "--cache-max-bytes" => {
                let bytes: u64 = value("--cache-max-bytes")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --cache-max-bytes: {e}")));
                if bytes == 0 {
                    fail("--cache-max-bytes must be at least 1 (omit to disable)");
                }
                config.cache_max_bytes = Some(bytes);
            }
            "--janitor-interval-secs" => {
                let secs: f64 = value("--janitor-interval-secs")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --janitor-interval-secs: {e}")));
                if !secs.is_finite() || secs <= 0.0 {
                    fail("--janitor-interval-secs must be a positive number");
                }
                config.janitor_interval_secs = secs;
            }
            "--gateway-port" => {
                parsed.gateway_port = Some(
                    value("--gateway-port")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("bad --gateway-port: {e}"))),
                )
            }
            "--addr-file" => parsed.addr_file = Some(PathBuf::from(value("--addr-file"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if config.queue_capacity == 0 {
        fail("--queue-capacity must be at least 1");
    }
    parsed
}

fn main() {
    let args = parse_args();
    let config = args.config;
    let cache_note = config
        .cache_path
        .as_ref()
        .map_or("in-memory".to_string(), |p| p.display().to_string());
    let daemon = Daemon::spawn(config.clone()).unwrap_or_else(|e| {
        eprintln!("error: failed to start daemon on {}: {e}", config.addr);
        std::process::exit(1);
    });
    if let Some(path) = &args.addr_file {
        // tmp-rename so a watcher never reads a half-written address.
        let tmp = path.with_extension("tmp");
        let write = std::fs::write(&tmp, daemon.local_addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("error: failed to write --addr-file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    let metrics_server = args.http_port.map(|port| {
        let server = MetricsServer::spawn(port).unwrap_or_else(|e| {
            eprintln!("error: failed to bind telemetry port {port}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "dtnsimd telemetry on http://{}/metrics",
            server.local_addr()
        );
        server
    });
    let snapshotter = args.telemetry_jsonl.map(|path| {
        TelemetrySnapshotter::spawn(path, Duration::from_secs(args.telemetry_interval_secs))
    });
    let gateway = args.gateway_port.map(|port| {
        let gateway = Gateway::spawn(GatewayConfig {
            port,
            ..GatewayConfig::new(&daemon.local_addr().to_string())
        })
        .unwrap_or_else(|e| {
            eprintln!("error: failed to bind gateway port {port}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "dtnsimd gateway on http://{}/v1/sweeps",
            gateway.local_addr()
        );
        gateway
    });
    eprintln!(
        "dtnsimd listening on {} (engine {ENGINE_VERSION}, {} workers, queue {}, cache {cache_note})",
        daemon.local_addr(),
        config.workers,
        config.queue_capacity,
    );
    let result = daemon.join();
    if let Some(gateway) = gateway {
        gateway.shutdown();
    }
    if let Some(server) = metrics_server {
        server.shutdown();
    }
    if let Some(snapshotter) = snapshotter {
        snapshotter.shutdown();
    }
    match result {
        Ok(()) => eprintln!("dtnsimd: drained and stopped; cache index persisted"),
        Err(e) => {
            eprintln!("dtnsimd: stopped, but persisting the cache failed: {e}");
            std::process::exit(1);
        }
    }
}
