//! `dtnsimd` — the simulation daemon.
//!
//! Binds a TCP listener, serves the wire protocol (see
//! `dtn_service::wire`), and blocks until a client sends `shutdown`.
//! On shutdown the queue drains (every admitted job completes and is
//! collectable) and the result-cache index is persisted before exit.
//!
//! ```text
//! dtnsimd --addr 127.0.0.1:7700 --workers 4 --cache results/cache.jsonl
//! dtnsim --connect 127.0.0.1:7700 ...   # submit work from any client
//! ```

use dtn_service::{Daemon, DaemonConfig, ENGINE_VERSION};
use dtn_sim::Threads;
use std::num::NonZeroUsize;
use std::path::PathBuf;

const USAGE: &str = "\
dtnsimd - DTN simulation daemon

USAGE:
    dtnsimd [OPTIONS]

OPTIONS:
    --addr HOST:PORT        Bind address (default 127.0.0.1:7700; port 0 picks a free port)
    --workers N             Worker threads for concurrent jobs (default: all cores; 0 = queue only)
    --job-threads N         Threads per job's replications (default: auto)
    --queue-capacity N      Bounded queue size; submits beyond it are rejected
                            with retry_after_ms (default 64)
    --retry-after-ms N      Backpressure hint returned on rejection (default 250)
    --cache PATH            Persist the content-addressed result cache to PATH
                            (JSONL; reloaded on startup, engine-version checked)
    --help                  Show this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> DaemonConfig {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7700".to_string(),
        ..DaemonConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => {
                config.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --workers: {e}")))
            }
            "--job-threads" => {
                let n: usize = value("--job-threads")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --job-threads: {e}")));
                config.job_threads = match NonZeroUsize::new(n) {
                    Some(n) if n.get() == 1 => Threads::Sequential,
                    Some(n) => Threads::Fixed(n),
                    None => Threads::Auto,
                };
            }
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --queue-capacity: {e}")))
            }
            "--retry-after-ms" => {
                config.retry_after_ms = value("--retry-after-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --retry-after-ms: {e}")))
            }
            "--cache" => config.cache_path = Some(PathBuf::from(value("--cache"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if config.queue_capacity == 0 {
        fail("--queue-capacity must be at least 1");
    }
    config
}

fn main() {
    let config = parse_args();
    let cache_note = config
        .cache_path
        .as_ref()
        .map_or("in-memory".to_string(), |p| p.display().to_string());
    let daemon = Daemon::spawn(config.clone()).unwrap_or_else(|e| {
        eprintln!("error: failed to start daemon on {}: {e}", config.addr);
        std::process::exit(1);
    });
    eprintln!(
        "dtnsimd listening on {} (engine {ENGINE_VERSION}, {} workers, queue {}, cache {cache_note})",
        daemon.local_addr(),
        config.workers,
        config.queue_capacity,
    );
    match daemon.join() {
        Ok(()) => eprintln!("dtnsimd: drained and stopped; cache index persisted"),
        Err(e) => {
            eprintln!("dtnsimd: stopped, but persisting the cache failed: {e}");
            std::process::exit(1);
        }
    }
}
