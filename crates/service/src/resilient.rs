//! The self-healing client: transparent reconnect, idempotent
//! resubmission, and partial-sweep resume on top of [`crate::client`].
//!
//! The whole design leans on one property of the service: **submission
//! is idempotent**. A job's identity is its content address
//! ([`crate::job_key`]), the daemon dedups in-flight submissions against
//! that key, and the result cache replays finished fragments verbatim —
//! so resubmitting a job after a severed connection is free when the
//! daemon still has it and merely re-queues deterministic work when it
//! doesn't (e.g. after a `kill -9` that lost the in-memory queue).
//! Results are bit-identical either way, which is what lets a sweep
//! survive *any* fault schedule and still produce a byte-identical
//! report.
//!
//! [`ResilientClient::collect_fragments`] therefore tracks, per grid
//! point, whether its fragment has been fetched yet. Job tickets
//! survive reconnects — a severed connection loses no daemon state, so
//! the client keeps fetching against the ids it already holds — and
//! only an `unknown_job` answer (the daemon restarted and lost its job
//! table) invalidates the outstanding tickets and triggers
//! resubmission of **only the still-missing points**. Points already
//! collected are never re-requested, and points the restarted daemon
//! finds in its recovered journal come back instantly from cache.
//!
//! Liveness accounting matters under sustained chaos: a fault schedule
//! can sever every few frames forever, so "consecutive failures" must
//! not mean "consecutive severed connections". Every completed
//! round-trip (a submit or a fetch) counts as progress and resets the
//! outage budget; the [`ResilientClient::with_max_reconnect_attempts`]
//! cap therefore bounds consecutive **zero-round-trip** connections —
//! the signature of a daemon that is actually down — rather than
//! capping how long a noisy link may take.

use crate::client::{Client, ClientError, RetryPolicy};
use dtn_experiments::jobs::PointJob;
use dtn_sim::SimRng;
use std::time::Instant;

/// Sub-stream salt for reconnect-backoff jitter (distinct from the
/// submit-retry stream so the two schedules cannot correlate).
const RECONNECT_SALT: u64 = 0xFA01_7000_0001_0040;

/// Per-point progress callback: `(index, fragment, cached)`, invoked
/// exactly once per point as it completes.
pub type PointSink<'a> = &'a mut dyn FnMut(usize, &str, bool);

/// What the healing layer had to do to finish a sweep. All zero on a
/// fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealStats {
    /// Connections re-established after a transport failure.
    pub reconnects: u64,
    /// Jobs re-submitted on a fresh connection (idempotent: equal keys,
    /// equal results).
    pub resubmits: u64,
    /// Fragments whose fetch was retried after a severed connection.
    pub refetches: u64,
}

/// A [`Client`] wrapper that survives severed connections, daemon
/// restarts, and backpressure storms, and resumes partial sweeps.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    /// Give up after this many consecutive failed reconnect attempts
    /// (a down daemon should fail the sweep, not hang it forever).
    max_reconnect_attempts: u32,
    client: Option<Client>,
    stats: HealStats,
}

impl ResilientClient {
    /// A healing client for the daemon at `addr`. `policy` governs both
    /// submit backpressure retries and reconnect backoff; its `seed`
    /// makes every sleep in the healing schedule reproducible.
    pub fn new(addr: &str, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr: addr.to_string(),
            policy,
            max_reconnect_attempts: 60,
            client: None,
            stats: HealStats::default(),
        }
    }

    /// Override the consecutive-reconnect-failure cap (default 60).
    pub fn with_max_reconnect_attempts(mut self, attempts: u32) -> ResilientClient {
        self.max_reconnect_attempts = attempts.max(1);
        self
    }

    /// Counters describing the healing work done so far.
    pub fn heal_stats(&self) -> HealStats {
        self.stats
    }

    /// The retry policy this client heals under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Drop the current connection (the next operation reconnects).
    fn sever(&mut self) {
        self.client = None;
    }

    /// Get a live connection, dialing with jittered backoff if needed.
    /// `healing` marks reconnects after a failure (counted) as opposed
    /// to the sweep's initial dial (not a heal).
    fn ensure_connected(&mut self, rng: &mut SimRng, healing: bool) -> Result<(), ClientError> {
        if self.client.is_some() {
            return Ok(());
        }
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.max_reconnect_attempts {
            match Client::connect(&self.addr) {
                Ok(client) => {
                    self.client = Some(client);
                    if healing {
                        self.stats.reconnects += 1;
                    }
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
            std::thread::sleep(self.policy.backoff(attempt, 0, rng));
        }
        Err(ClientError::Transport(last.unwrap_or_else(|| {
            std::io::Error::other("no connect attempts made")
        })))
    }

    /// Run every job and return its `(fragment, cached)` pair, in job
    /// order, healing through any transport failure along the way. The
    /// fragments are the daemon's verbatim wire bytes — identical to a
    /// fault-free run by the idempotency argument in the module docs.
    pub fn collect_fragments(
        &mut self,
        jobs: &[PointJob],
    ) -> Result<Vec<(String, bool)>, ClientError> {
        let collected = self.collect_inner(jobs, false, None)?;
        Ok(collected
            .into_iter()
            .map(|f| f.expect("partial=false never leaves holes"))
            .collect())
    }

    /// Like [`ResilientClient::collect_fragments`], but a point whose
    /// owning shard a degraded coordinator reports
    /// [`ClientError::Unreachable`] is recorded as `None` instead of
    /// failing the sweep — the federation's "drain what's reachable,
    /// report what's missing" partial-sweep mode. Against a plain
    /// daemon (which never answers `unreachable`) this is identical to
    /// `collect_fragments`.
    pub fn collect_available(
        &mut self,
        jobs: &[PointJob],
    ) -> Result<Vec<Option<(String, bool)>>, ClientError> {
        self.collect_inner(jobs, true, None)
    }

    /// Like [`ResilientClient::collect_available`], but `on_point` fires
    /// the moment each fragment arrives — `(index, fragment, cached)` in
    /// completion order — so a caller (the HTTP gateway's chunked
    /// stream) can deliver results incrementally. The callback sees each
    /// point exactly once: progress survives healing, so a refetched
    /// connection never re-announces an already-collected fragment.
    pub fn collect_available_with(
        &mut self,
        jobs: &[PointJob],
        on_point: PointSink<'_>,
    ) -> Result<Vec<Option<(String, bool)>>, ClientError> {
        self.collect_inner(jobs, true, Some(on_point))
    }

    fn collect_inner(
        &mut self,
        jobs: &[PointJob],
        partial: bool,
        mut on_point: Option<PointSink<'_>>,
    ) -> Result<Vec<Option<(String, bool)>>, ClientError> {
        let started = Instant::now();
        let mut rng = SimRng::new(self.policy.seed).derive(RECONNECT_SALT);
        let mut fragments: Vec<Option<(String, bool)>> = vec![None; jobs.len()];
        // Tickets held per point. They outlive connections (a severed
        // socket loses no daemon state) and are invalidated only when
        // the daemon answers `unknown_job` — it restarted and lost its
        // job table — at which point still-missing points resubmit.
        let mut job_ids: Vec<Option<String>> = vec![None; jobs.len()];
        let mut ever_submitted: Vec<bool> = vec![false; jobs.len()];
        let mut fetch_tried: Vec<bool> = vec![false; jobs.len()];
        // Points a degraded coordinator declared unreachable (partial
        // mode only): skipped by later passes, `None` in the result.
        let mut unreachable: Vec<bool> = vec![false; jobs.len()];
        let mut healing = false;
        let mut attempts_this_outage = 0u32;
        // Completed round-trips (submits + fetches). Any round-trip
        // proves the daemon is reachable through the chaos, so the
        // outage budget only counts connections that achieved nothing.
        let mut round_trips = 0u64;

        while fragments
            .iter()
            .zip(&unreachable)
            .any(|(f, &skip)| f.is_none() && !skip)
        {
            if let Some(deadline) = self.policy.deadline {
                if started.elapsed() >= deadline {
                    return Err(ClientError::Exhausted {
                        attempts: self.stats.reconnects as u32 + 1,
                        elapsed: started.elapsed(),
                        last_reason: "sweep deadline exceeded while healing".into(),
                    });
                }
            }
            self.ensure_connected(&mut rng, healing)?;
            let round_trips_before = round_trips;
            match self.sweep_pass(
                jobs,
                &mut fragments,
                &mut job_ids,
                &mut ever_submitted,
                &mut fetch_tried,
                &mut round_trips,
                partial.then_some(&mut unreachable),
                &mut on_point,
            ) {
                // Ok may still leave points missing (stale tickets were
                // invalidated after a daemon restart): loop again on the
                // same healthy connection and resubmit them.
                Ok(()) => {
                    healing = false;
                    attempts_this_outage = 0;
                }
                Err(e) if e.is_transport() => {
                    // The connection died mid-sweep: drop it and heal.
                    // Collected fragments and valid tickets are kept —
                    // that is the partial-sweep resume. A connection
                    // that completed *any* round-trip before dying was
                    // talking to a live daemon, so it is not a strike
                    // against the consecutive-dead-connection budget.
                    if round_trips > round_trips_before {
                        attempts_this_outage = 0;
                    }
                    attempts_this_outage += 1;
                    if attempts_this_outage > self.max_reconnect_attempts {
                        return Err(e);
                    }
                    self.sever();
                    healing = true;
                    std::thread::sleep(self.policy.backoff(
                        attempts_this_outage.saturating_sub(1),
                        0,
                        &mut rng,
                    ));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(fragments)
    }

    /// One pass over the grid on the current connection: submit every
    /// missing point that has no live ticket, then fetch every missing
    /// fragment in order. Returns on the first transport error so the
    /// caller can heal, and returns `Ok` early — after invalidating all
    /// outstanding tickets — when the daemon answers `unknown_job`
    /// (it restarted); either way all progress stays recorded in
    /// `fragments`/`job_ids`.
    #[allow(clippy::too_many_arguments)]
    fn sweep_pass(
        &mut self,
        jobs: &[PointJob],
        fragments: &mut [Option<(String, bool)>],
        job_ids: &mut [Option<String>],
        ever_submitted: &mut [bool],
        fetch_tried: &mut [bool],
        round_trips: &mut u64,
        mut unreachable: Option<&mut Vec<bool>>,
        on_point: &mut Option<PointSink<'_>>,
    ) -> Result<(), ClientError> {
        let policy = self.policy;
        let client = self.client.as_mut().expect("ensure_connected ran");
        // Submit-all-first keeps the daemon's queue saturated while the
        // client blocks on in-order fetches, exactly like the plain
        // sweep path.
        for (i, job) in jobs.iter().enumerate() {
            if fragments[i].is_some() || job_ids[i].is_some() {
                continue;
            }
            if unreachable.as_ref().is_some_and(|u| u[i]) {
                continue;
            }
            let ticket = match client.submit_with_policy(job, &policy) {
                Ok(ticket) => ticket,
                Err(ClientError::Unreachable(_)) if unreachable.is_some() => {
                    // Partial-sweep mode: the degraded coordinator will
                    // not take this point; record it missing, keep
                    // draining the reachable ones.
                    *round_trips += 1;
                    if let Some(u) = unreachable.as_mut() {
                        u[i] = true;
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            *round_trips += 1;
            if ever_submitted[i] {
                self.stats.resubmits += 1;
            }
            ever_submitted[i] = true;
            job_ids[i] = Some(ticket.job_id);
        }
        for i in 0..jobs.len() {
            if fragments[i].is_some() || unreachable.as_ref().is_some_and(|u| u[i]) {
                continue;
            }
            let id = job_ids[i].clone().expect("submitted above");
            if fetch_tried[i] {
                self.stats.refetches += 1;
            }
            fetch_tried[i] = true;
            match client.fetch_fragment_checked(&id) {
                Ok(pair) => {
                    *round_trips += 1;
                    if let Some(cb) = on_point.as_deref_mut() {
                        cb(i, &pair.0, pair.1);
                    }
                    fragments[i] = Some(pair);
                }
                Err(ClientError::Unreachable(_)) if unreachable.is_some() => {
                    *round_trips += 1;
                    if let Some(u) = unreachable.as_mut() {
                        u[i] = true;
                    }
                    job_ids[i] = None;
                }
                Err(ClientError::UnknownJob(_)) => {
                    // The daemon restarted: every outstanding ticket
                    // died with its job table, not just this one.
                    *round_trips += 1;
                    for (j, fragment) in fragments.iter().enumerate() {
                        if fragment.is_none() {
                            job_ids[j] = None;
                        }
                    }
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Fetch the daemon's stats document (healing the connection first
    /// if needed, but not retrying the request itself — stats are not
    /// idempotent-critical).
    pub fn stats_raw(&mut self) -> Result<String, ClientError> {
        let mut rng = SimRng::new(self.policy.seed).derive(RECONNECT_SALT ^ 1);
        self.ensure_connected(&mut rng, false)?;
        let client = self.client.as_mut().expect("just connected");
        match client.stats_raw() {
            Ok(s) => Ok(s),
            Err(e) => {
                self.sever();
                Err(ClientError::Protocol(e))
            }
        }
    }

    /// Ask the daemon to shut down (no healing: if the connection is
    /// already gone, the daemon may be too, and that counts as down).
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        let mut rng = SimRng::new(self.policy.seed).derive(RECONNECT_SALT ^ 2);
        self.ensure_connected(&mut rng, false)?;
        let client = self.client.as_mut().expect("just connected");
        client.shutdown().map_err(ClientError::Protocol)
    }
}
