//! Client side of the wire protocol: connect, submit with backpressure
//! retry, and result collection.
//!
//! One [`Client`] owns one TCP connection and issues strictly
//! alternating request/response frames, which is all the protocol
//! needs — sweeps submit every point first (cheap: `accepted` comes back
//! before any simulation runs) and then collect results in order with
//! blocking `result` requests.

use crate::json::{escape, Value};
use crate::wire::{extract_fragment, read_frame, write_frame};
use dtn_experiments::jobs::{PointJob, PointOutcome};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Outcome of a successful submit: the job's content address and
/// whether the daemon served it straight from the result cache.
#[derive(Clone, Debug)]
pub struct SubmitTicket {
    /// Content-addressed job id (also the cache key).
    pub job_id: String,
    /// True when the result already existed — no work was queued.
    pub cached: bool,
}

/// A connection to a `dtnsimd` daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7700`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // The protocol is strict request/response with small frames;
        // Nagle only adds latency here.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connect, retrying while the daemon is still coming up (CI starts
    /// the daemon in the background and races it with the first client).
    pub fn connect_with_retry(addr: &str, attempts: u32, delay: Duration) -> io::Result<Client> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(delay);
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    fn request(&mut self, payload: &str) -> Result<Value, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send failed: {e}"))?;
        let raw = read_frame(&mut self.stream)
            .map_err(|e| format!("receive failed: {e}"))?
            .ok_or("daemon closed the connection")?;
        Value::parse(&raw).map_err(|e| format!("bad response: {e}"))
    }

    /// Raw request/response, returning the response frame verbatim.
    /// Result fragments must be sliced out of this exact string, so the
    /// typed [`Client::request`] path (which re-parses) cannot serve
    /// them.
    fn request_raw(&mut self, payload: &str) -> Result<String, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send failed: {e}"))?;
        read_frame(&mut self.stream)
            .map_err(|e| format!("receive failed: {e}"))?
            .ok_or_else(|| "daemon closed the connection".to_string())
    }

    /// Submit a job, sleeping out `queue_full` backpressure (the daemon
    /// tells us how long) and retrying until admitted. Any other
    /// rejection or error is final.
    pub fn submit(&mut self, job: &PointJob) -> Result<SubmitTicket, String> {
        let payload = format!(
            "{{\"type\":\"submit\",\"job\":{}}}",
            job.to_canonical_json()
        );
        loop {
            let response = self.request(&payload)?;
            match response.get("type").and_then(Value::as_str) {
                Some("accepted") => {
                    return Ok(SubmitTicket {
                        job_id: response
                            .get("job_id")
                            .and_then(Value::as_str)
                            .ok_or("accepted without job_id")?
                            .to_string(),
                        cached: response
                            .get("cached")
                            .and_then(Value::as_bool)
                            .unwrap_or(false),
                    });
                }
                Some("rejected") => {
                    let reason = response
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified");
                    if reason != "queue_full" {
                        return Err(format!("daemon rejected the job: {reason}"));
                    }
                    let backoff = response
                        .get("retry_after_ms")
                        .and_then(Value::as_u64)
                        .unwrap_or(250);
                    std::thread::sleep(Duration::from_millis(backoff));
                }
                Some("error") => {
                    return Err(response
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified daemon error")
                        .to_string())
                }
                other => return Err(format!("unexpected response type {other:?}")),
            }
        }
    }

    /// Block until `job_id` resolves and return its verbatim result
    /// fragment plus the daemon's `cached` flag.
    pub fn fetch_fragment(&mut self, job_id: &str) -> Result<(String, bool), String> {
        let raw = self.request_raw(&format!(
            "{{\"type\":\"result\",\"job_id\":\"{}\",\"wait\":true}}",
            escape(job_id)
        ))?;
        let Some(fragment) = extract_fragment(&raw) else {
            let parsed = Value::parse(&raw).map_err(|e| format!("bad response: {e}"))?;
            return Err(parsed
                .get("message")
                .and_then(Value::as_str)
                .map(String::from)
                .unwrap_or_else(|| format!("no fragment in response {raw}")));
        };
        let cached = Value::parse(&raw)
            .ok()
            .and_then(|v| v.get("cached").and_then(Value::as_bool))
            .unwrap_or(false);
        Ok((fragment.to_string(), cached))
    }

    /// Block until `job_id` resolves and decode its [`PointOutcome`].
    pub fn fetch_outcome(&mut self, job_id: &str) -> Result<PointOutcome, String> {
        let (fragment, _) = self.fetch_fragment(job_id)?;
        PointOutcome::from_wire_json(&fragment)
    }

    /// Cancel a queued job; `Ok(true)` if it was actually cancelled.
    pub fn cancel(&mut self, job_id: &str) -> Result<bool, String> {
        let response = self.request(&format!(
            "{{\"type\":\"cancel\",\"job_id\":\"{}\"}}",
            escape(job_id)
        ))?;
        response
            .get("cancelled")
            .and_then(Value::as_bool)
            .ok_or_else(|| "malformed cancel response".to_string())
    }

    /// Fetch the daemon's stats document, verbatim.
    pub fn stats_raw(&mut self) -> Result<String, String> {
        self.request_raw("{\"type\":\"stats\"}")
    }

    /// Ask the daemon to shut down; returns how many admitted jobs it is
    /// still draining.
    pub fn shutdown(&mut self) -> Result<u64, String> {
        let response = self.request("{\"type\":\"shutdown\"}")?;
        response
            .get("draining")
            .and_then(Value::as_u64)
            .ok_or_else(|| "malformed shutdown response".to_string())
    }
}
