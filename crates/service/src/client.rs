//! Client side of the wire protocol: connect, submit with bounded
//! backpressure retry, and result collection.
//!
//! One [`Client`] owns one TCP connection and issues strictly
//! alternating request/response frames, which is all the protocol
//! needs — sweeps submit every point first (cheap: `accepted` comes back
//! before any simulation runs) and then collect results in order with
//! blocking `result` requests.
//!
//! Backpressure retry is governed by a [`RetryPolicy`]: jittered
//! exponential backoff seeded deterministically (so chaos tests
//! reproduce byte-for-byte), honoring the daemon's `retry_after_ms`
//! hint as a floor, and **bounded** by an attempt cap and/or a total
//! deadline — exhaustion surfaces as a structured
//! [`ClientError::Exhausted`] instead of the old unbounded
//! sleep-forever loop. Connection-level healing (reconnect,
//! resubmission, partial-sweep resume) lives one layer up in
//! [`crate::resilient`].

use crate::json::{escape, Value};
use crate::wire::{extract_fragment, read_frame, write_frame};
use dtn_experiments::jobs::{PointJob, PointOutcome};
use dtn_sim::SimRng;
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Sub-stream salt for the retry-jitter RNG, in the same address-space
/// convention as the simulator's fault salts (`dtn-core::faults`).
const JITTER_SALT: u64 = 0xFA01_7000_0001_0000;

/// Outcome of a successful submit: the job's content address and
/// whether the daemon served it straight from the result cache.
#[derive(Clone, Debug)]
pub struct SubmitTicket {
    /// Content-addressed job id (also the cache key).
    pub job_id: String,
    /// True when the result already existed — no work was queued.
    pub cached: bool,
}

/// Structured client-side failure. `Display` renders the same messages
/// callers used to get as bare strings, so `e.to_string()` call sites
/// keep working.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed mid-exchange (send, receive, or the
    /// daemon closing the socket). These are the retriable-by-reconnect
    /// errors the resilient client heals.
    Transport(io::Error),
    /// The daemon rejected the request for a non-retriable reason
    /// (validation failure, unknown job, explicit error response).
    Rejected(String),
    /// Backpressure retries ran out: the daemon kept answering
    /// `queue_full` until the attempt cap or deadline was exhausted.
    Exhausted {
        /// Submit attempts made before giving up.
        attempts: u32,
        /// Wall time spent retrying.
        elapsed: Duration,
        /// The daemon's last rejection reason.
        last_reason: String,
    },
    /// The daemon does not know the referenced job id — it restarted
    /// and lost its job table. Healable by resubmitting (submission is
    /// idempotent), unlike a genuine [`ClientError::Rejected`].
    UnknownJob(String),
    /// A `dtnfedd` coordinator in degraded (quorum-lost) mode reports
    /// this point's owning shard unreachable. Per-point, not fatal to
    /// the sweep: [`crate::ResilientClient::collect_available`] records
    /// the point as missing and drains the rest.
    Unreachable(String),
    /// The daemon answered with a frame the protocol does not allow
    /// here (bad JSON, missing fields, unexpected type).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport failed: {e}"),
            ClientError::Rejected(reason) => write!(f, "daemon rejected the job: {reason}"),
            ClientError::Exhausted {
                attempts,
                elapsed,
                last_reason,
            } => write!(
                f,
                "submit retries exhausted after {attempts} attempts in {:.1}s (last reason: {last_reason})",
                elapsed.as_secs_f64()
            ),
            ClientError::UnknownJob(msg) => {
                write!(f, "daemon does not know this job (did it restart?): {msg}")
            }
            ClientError::Unreachable(msg) => {
                write!(f, "point owned by an unreachable shard (degraded federation): {msg}")
            }
            ClientError::Protocol(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// True for errors a reconnect could plausibly heal (the connection
    /// died). Rejections, protocol violations, and exhausted retries
    /// are final: repeating them on a fresh socket changes nothing.
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Transport(_))
    }
}

/// Bounded, jittered, deterministic backoff for `queue_full` retries.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retry at most this many times after the first attempt
    /// (`None` = unbounded; pair it with a deadline).
    pub max_retries: Option<u32>,
    /// Give up once this much wall time has elapsed across retries.
    pub deadline: Option<Duration>,
    /// First backoff step, before jitter.
    pub base_ms: u64,
    /// Backoff ceiling, before the daemon's `retry_after_ms` floor.
    pub max_ms: u64,
    /// Seed for the jitter RNG sub-stream; equal seeds replay the same
    /// backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: Some(32),
            deadline: None,
            base_ms: 50,
            max_ms: 5_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based), given the
    /// daemon's `retry_after_ms` hint: exponential from `base_ms`,
    /// capped at `max_ms`, floored at the hint, with uniform jitter in
    /// `[step/2, step]` so a herd of clients doesn't resynchronize.
    pub fn backoff(&self, attempt: u32, retry_after_ms: u64, rng: &mut SimRng) -> Duration {
        let step = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_ms)
            .max(retry_after_ms.min(self.max_ms));
        Duration::from_millis(rng.range_inclusive(step / 2, step).max(1))
    }

    /// The jitter RNG for this policy (a dedicated sub-stream, so
    /// sharing a seed with a simulation cannot correlate the streams).
    pub fn rng(&self) -> SimRng {
        SimRng::new(self.seed).derive(JITTER_SALT)
    }
}

/// Classify a daemon `error` response. A `bad_frame` rejection means
/// the request bytes were damaged **in flight** — the daemon also hangs
/// up after sending it — so it maps to [`ClientError::Transport`]:
/// resubmitting the (idempotent) request on a fresh connection is the
/// correct recovery, exactly as for a severed socket. Everything else
/// is a genuine rejection.
fn daemon_error(response: &Value) -> ClientError {
    let message = response
        .get("message")
        .and_then(Value::as_str)
        .unwrap_or("unspecified daemon error")
        .to_string();
    match response.get("code").and_then(Value::as_str) {
        Some("bad_frame") => {
            ClientError::Transport(io::Error::new(io::ErrorKind::InvalidData, message))
        }
        Some("unknown_job") => ClientError::UnknownJob(message),
        Some("unreachable") => ClientError::Unreachable(message),
        _ => ClientError::Rejected(message),
    }
}

/// A backpressure answer: the daemon (or the `dtnfedd` coordinator)
/// turned the submit away but invited a retry. The retriable reasons
/// are `queue_full` (bounded queue at capacity), `draining` (worker
/// being drained from a federation), `degraded` (coordinator below
/// quorum), and `no_workers` (coordinator momentarily has no routable
/// shard) — all transient states a bounded retry rides out.
#[derive(Clone, Debug)]
pub struct Backpressure {
    /// The daemon's floor on when to come back.
    pub retry_after_ms: u64,
    /// Which transient state caused the rejection.
    pub reason: String,
}

/// A connection to a `dtnsimd` daemon (or a `dtnfedd` coordinator —
/// the coordinator speaks the same client-facing protocol, so every
/// method here works unchanged against a federation).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7700`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // The protocol is strict request/response with small frames;
        // Nagle only adds latency here.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connect, retrying while the daemon is still coming up (CI starts
    /// the daemon in the background and races it with the first client).
    pub fn connect_with_retry(addr: &str, attempts: u32, delay: Duration) -> io::Result<Client> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(delay);
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    fn request(&mut self, payload: &str) -> Result<Value, ClientError> {
        let raw = self.request_raw(payload)?;
        Value::parse(&raw).map_err(|e| ClientError::Protocol(format!("bad response: {e}")))
    }

    /// Set (or clear) the socket read timeout. A request that times out
    /// leaves the connection desynchronized — the response may still
    /// arrive later — so after any timeout error the connection must be
    /// discarded, not reused. The coordinator's hedging path uses this
    /// to bound a blocking `result wait:true` at the hedge deadline.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Raw request/response, returning the response frame verbatim.
    /// Result fragments must be sliced out of this exact string, so the
    /// typed [`Client::request`] path (which re-parses) cannot serve
    /// them. Crate-visible: the coordinator relays worker frames
    /// verbatim through this.
    pub(crate) fn request_raw(&mut self, payload: &str) -> Result<String, ClientError> {
        write_frame(&mut self.stream, payload).map_err(ClientError::Transport)?;
        read_frame(&mut self.stream)
            .map_err(ClientError::Transport)?
            .ok_or_else(|| {
                ClientError::Transport(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "daemon closed the connection",
                ))
            })
    }

    /// One submit round-trip: `Ok(Ok(ticket))` on admission,
    /// `Ok(Err(backpressure))` on a retriable rejection (`queue_full`,
    /// `draining`, `degraded`, `no_workers` — retry is the caller's
    /// decision), any other answer an error.
    pub fn submit_once(
        &mut self,
        job: &PointJob,
    ) -> Result<Result<SubmitTicket, Backpressure>, ClientError> {
        let payload = format!(
            "{{\"type\":\"submit\",\"job\":{}}}",
            job.to_canonical_json()
        );
        let response = self.request(&payload)?;
        match response.get("type").and_then(Value::as_str) {
            Some("accepted") => Ok(Ok(SubmitTicket {
                job_id: response
                    .get("job_id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ClientError::Protocol("accepted without job_id".into()))?
                    .to_string(),
                cached: response
                    .get("cached")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            })),
            Some("rejected") => {
                let reason = response
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified");
                if reason == "unreachable" {
                    return Err(ClientError::Unreachable(reason.to_string()));
                }
                if !matches!(
                    reason,
                    "queue_full" | "draining" | "degraded" | "no_workers"
                ) {
                    return Err(ClientError::Rejected(reason.to_string()));
                }
                Ok(Err(Backpressure {
                    retry_after_ms: response
                        .get("retry_after_ms")
                        .and_then(Value::as_u64)
                        .unwrap_or(250),
                    reason: reason.to_string(),
                }))
            }
            Some("error") => Err(daemon_error(&response)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response type {other:?}"
            ))),
        }
    }

    /// Submit a job under `policy`: retriable rejections (`queue_full`,
    /// `draining`, `degraded`, `no_workers`) are retried with jittered
    /// exponential backoff — honoring the daemon's `retry_after_ms`
    /// hint as a *floor*, never an exact wait — until admitted, the
    /// attempt cap is hit, or the deadline passes.
    pub fn submit_with_policy(
        &mut self,
        job: &PointJob,
        policy: &RetryPolicy,
    ) -> Result<SubmitTicket, ClientError> {
        let started = Instant::now();
        let mut rng = policy.rng();
        let mut attempts = 0u32;
        loop {
            match self.submit_once(job)? {
                Ok(ticket) => return Ok(ticket),
                Err(backpressure) => {
                    let capped = policy.max_retries.is_some_and(|cap| attempts >= cap);
                    let overdue = policy.deadline.is_some_and(|d| started.elapsed() >= d);
                    if capped || overdue {
                        return Err(ClientError::Exhausted {
                            attempts: attempts + 1,
                            elapsed: started.elapsed(),
                            last_reason: backpressure.reason,
                        });
                    }
                    std::thread::sleep(policy.backoff(
                        attempts,
                        backpressure.retry_after_ms,
                        &mut rng,
                    ));
                    attempts += 1;
                }
            }
        }
    }

    /// Submit a job under the default [`RetryPolicy`]. Kept as the
    /// simple string-error entry point for existing callers.
    pub fn submit(&mut self, job: &PointJob) -> Result<SubmitTicket, String> {
        self.submit_with_policy(job, &RetryPolicy::default())
            .map_err(|e| e.to_string())
    }

    /// Block until `job_id` resolves and return its verbatim result
    /// fragment plus the daemon's `cached` flag.
    pub fn fetch_fragment(&mut self, job_id: &str) -> Result<(String, bool), String> {
        self.fetch_fragment_checked(job_id)
            .map_err(|e| e.to_string())
    }

    /// [`Client::fetch_fragment`] with the structured error type, so the
    /// resilient layer can distinguish transport failures (heal) from
    /// rejections (fail).
    pub fn fetch_fragment_checked(&mut self, job_id: &str) -> Result<(String, bool), ClientError> {
        let raw = self.request_raw(&format!(
            "{{\"type\":\"result\",\"job_id\":\"{}\",\"wait\":true}}",
            escape(job_id)
        ))?;
        let Some(fragment) = extract_fragment(&raw) else {
            let parsed = Value::parse(&raw)
                .map_err(|e| ClientError::Protocol(format!("bad response: {e}")))?;
            if parsed.get("type").and_then(Value::as_str) == Some("error") {
                return Err(daemon_error(&parsed));
            }
            return Err(ClientError::Protocol(format!(
                "no fragment in response {raw}"
            )));
        };
        let cached = Value::parse(&raw)
            .ok()
            .and_then(|v| v.get("cached").and_then(Value::as_bool))
            .unwrap_or(false);
        Ok((fragment.to_string(), cached))
    }

    /// Block until `job_id` resolves and decode its [`PointOutcome`].
    pub fn fetch_outcome(&mut self, job_id: &str) -> Result<PointOutcome, String> {
        let (fragment, _) = self.fetch_fragment(job_id)?;
        PointOutcome::from_wire_json(&fragment)
    }

    /// Cancel a queued job; `Ok(true)` if it was actually cancelled.
    pub fn cancel(&mut self, job_id: &str) -> Result<bool, String> {
        let response = self
            .request(&format!(
                "{{\"type\":\"cancel\",\"job_id\":\"{}\"}}",
                escape(job_id)
            ))
            .map_err(|e| e.to_string())?;
        response
            .get("cancelled")
            .and_then(Value::as_bool)
            .ok_or_else(|| "malformed cancel response".to_string())
    }

    /// Fetch the daemon's stats document, verbatim.
    pub fn stats_raw(&mut self) -> Result<String, String> {
        self.request_raw("{\"type\":\"stats\"}")
            .map_err(|e| e.to_string())
    }

    /// Ask the daemon to shut down; returns how many admitted jobs it is
    /// still draining.
    pub fn shutdown(&mut self) -> Result<u64, String> {
        let response = self
            .request("{\"type\":\"shutdown\"}")
            .map_err(|e| e.to_string())?;
        response
            .get("draining")
            .and_then(Value::as_u64)
            .ok_or_else(|| "malformed shutdown response".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_jittered_and_floored() {
        let policy = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        let mut rng = policy.rng();
        // Attempt 0: step = max(base=50, hint=0) → sleep in [25, 50].
        let d0 = policy.backoff(0, 0, &mut rng).as_millis() as u64;
        assert!((25..=50).contains(&d0), "got {d0}");
        // Attempt 4: step = 50 << 4 = 800 → [400, 800].
        let d4 = policy.backoff(4, 0, &mut rng).as_millis() as u64;
        assert!((400..=800).contains(&d4), "got {d4}");
        // The daemon's hint floors the step.
        let hinted = policy.backoff(0, 300, &mut rng).as_millis() as u64;
        assert!((150..=300).contains(&hinted), "got {hinted}");
        // The ceiling holds even for huge attempts and hints.
        let capped = policy.backoff(30, 60_000, &mut rng).as_millis() as u64;
        assert!(capped <= policy.max_ms, "got {capped}");
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let policy = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        let schedule = |p: &RetryPolicy| {
            let mut rng = p.rng();
            (0..8)
                .map(|a| p.backoff(a, 100, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(&policy), schedule(&policy));
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(schedule(&policy), schedule(&other));
    }

    #[test]
    fn errors_render_stable_messages() {
        let e = ClientError::Exhausted {
            attempts: 33,
            elapsed: Duration::from_millis(1500),
            last_reason: "queue_full".into(),
        };
        assert_eq!(
            e.to_string(),
            "submit retries exhausted after 33 attempts in 1.5s (last reason: queue_full)"
        );
        assert!(!e.is_transport());
        assert!(ClientError::Transport(io::Error::other("boom")).is_transport());
    }
}
