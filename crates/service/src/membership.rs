//! Shard membership for the `dtnfedd` coordinator: the worker registry,
//! its health state machine, and the consistent-hash ring that keeps
//! every job's content-addressed cache entry shard-local.
//!
//! ## Health state machine
//!
//! ```text
//!            probe ok                    probe ok
//!   ┌──────────────────────┐   ┌──────────────────────────┐
//!   ▼                      │   ▼                          │
//! Alive ──fail×suspect──▶ Suspect ──fail×(dead-suspect)──▶ Dead
//!   │                                                      │
//!   └── heartbeat_ack{draining:true} ──▶ Draining ◀────────┘ (never: dead
//!                                            │                shards revive
//!            heartbeat_ack{draining:false} ──┘                to Alive)
//! ```
//!
//! `Alive` and `Suspect` shards are **routable** — a suspect shard keeps
//! its in-flight work so one dropped probe cannot trigger a re-dispatch
//! storm. `Dead` and `Draining` shards are skipped by the ring walk;
//! crossing into `Dead` is the single edge that fires failover (the
//! coordinator re-dispatches the shard's unfinished jobs), reported once
//! via [`Transition::Died`] so the failover cannot double-run.
//!
//! ## Consistent hashing
//!
//! Each shard contributes `virtual_nodes` points on a 64-bit ring
//! (FNV-1a of `addr#index`, the same hash family as
//! [`crate::cache::job_key`]); a job routes to the first **routable**
//! shard clockwise from the hash of its job key. Adding or losing one
//! shard therefore only moves the keys that hashed to that shard —
//! every other shard keeps its content-addressed cache intact, which is
//! what makes failover cheap: re-dispatched jobs are recomputed (or
//! cache-hit) on exactly one new owner, and a revived shard takes back
//! only its own arc.

/// The ring's hash: FNV-1a 64-bit (the job-key hash family) through a
/// splitmix64 finalizer. Raw FNV output on short, similar keys leaves
/// the high bits correlated, which clumps the ring points; the mixer
/// spreads the arcs evenly.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = hash.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One worker's health, as seen by the coordinator's prober.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Answering heartbeats; routable.
    Alive,
    /// Missed probes, but not enough to declare it gone. Still routable
    /// — its in-flight work is kept so a dropped probe cannot trigger a
    /// re-dispatch storm.
    Suspect,
    /// Crossed the failure threshold: not routable, its unfinished jobs
    /// have been re-dispatched. Revives to `Alive` on the next good
    /// probe (the ring arc moves back, the shard-local cache still
    /// holds everything it computed before dying).
    Dead,
    /// Operator-requested drain: finishes what it has, receives nothing
    /// new, not a health failure.
    Draining,
}

impl ShardHealth {
    /// Stable lowercase name (wire + metrics label).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Alive => "alive",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Dead => "dead",
            ShardHealth::Draining => "draining",
        }
    }

    /// May new or re-dispatched jobs land here?
    pub fn routable(self) -> bool {
        matches!(self, ShardHealth::Alive | ShardHealth::Suspect)
    }
}

/// A state-machine edge worth acting on, returned by
/// [`Membership::mark_ok`] / [`Membership::mark_failure`] so the caller
/// (the health loop) fires failover/logging exactly once per crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// No edge crossed.
    None,
    /// Alive → Suspect.
    Suspected,
    /// Crossed into Dead: the caller must re-dispatch this shard's
    /// unfinished jobs.
    Died,
    /// Suspect/Dead/Draining → Alive.
    Revived,
}

/// One registered worker daemon.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Dial address (`host:port`).
    pub addr: String,
    /// Current health.
    pub health: ShardHealth,
    /// Consecutive failed probes (reset by any success).
    pub consecutive_failures: u32,
    /// Successful heartbeat probes.
    pub probes_ok: u64,
    /// Failed heartbeat probes.
    pub probes_failed: u64,
    /// Jobs whose result was served through this shard (attribution).
    pub completed: u64,
    /// Health ticks to skip before the next probe — the jittered
    /// backoff for dead shards, so a long-gone worker is not dialed at
    /// full heartbeat rate forever.
    pub skip_ticks: u32,
    /// Current probe backoff (ticks), doubled per failure while dead.
    pub backoff_ticks: u32,
}

/// The shard table plus its consistent-hash ring.
#[derive(Debug)]
pub struct Membership {
    shards: Vec<Shard>,
    /// Sorted `(ring_point, shard_index)` — rebuilt on membership
    /// change, never on health change (health is checked at walk time,
    /// so a revived shard takes its arc back with no rebuild).
    ring: Vec<(u64, usize)>,
    virtual_nodes: usize,
    suspect_after: u32,
    dead_after: u32,
}

impl Membership {
    /// An empty table. `suspect_after` failures mark a shard Suspect,
    /// `dead_after` (≥ suspect_after) mark it Dead; `virtual_nodes`
    /// ring points per shard smooth the key distribution.
    pub fn new(virtual_nodes: usize, suspect_after: u32, dead_after: u32) -> Membership {
        Membership {
            shards: Vec::new(),
            ring: Vec::new(),
            virtual_nodes: virtual_nodes.max(1),
            suspect_after: suspect_after.max(1),
            dead_after: dead_after.max(suspect_after.max(1)),
        }
    }

    /// Register a worker. Returns its index, or `None` if the address
    /// is already registered (re-registering is a no-op, so a restarted
    /// worker announcing itself again is harmless).
    pub fn add(&mut self, addr: &str) -> Option<usize> {
        if self.shards.iter().any(|s| s.addr == addr) {
            return None;
        }
        let index = self.shards.len();
        self.shards.push(Shard {
            addr: addr.to_string(),
            health: ShardHealth::Alive,
            consecutive_failures: 0,
            probes_ok: 0,
            probes_failed: 0,
            completed: 0,
            skip_ticks: 0,
            backoff_ticks: 0,
        });
        for v in 0..self.virtual_nodes {
            let point = ring_hash(format!("{addr}#{v}").as_bytes());
            self.ring.push((point, index));
        }
        self.ring.sort_unstable();
        Some(index)
    }

    /// All registered shards, in registration order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Mutable shard access (the health loop's probe bookkeeping).
    pub fn shard_mut(&mut self, index: usize) -> &mut Shard {
        &mut self.shards[index]
    }

    /// Registered shard count.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shards are registered.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Routable (Alive or Suspect) shard count.
    pub fn routable_count(&self) -> usize {
        self.shards.iter().filter(|s| s.health.routable()).count()
    }

    /// True when the routable fraction has fallen below `quorum` — the
    /// trigger for the coordinator's degraded partial-sweep mode.
    pub fn quorum_lost(&self, quorum: f64) -> bool {
        if self.shards.is_empty() {
            return true;
        }
        (self.routable_count() as f64) < quorum * self.shards.len() as f64
    }

    /// Walk the ring clockwise from `key`'s hash point and return the
    /// first routable shard, or `None` when nothing is routable.
    pub fn route(&self, key: &str) -> Option<usize> {
        self.walk(key, None)
    }

    /// Like [`Membership::route`] but skipping shard `exclude` — the
    /// failover/hedge target: "the next live owner that isn't the one
    /// that just failed me".
    pub fn route_excluding(&self, key: &str, exclude: usize) -> Option<usize> {
        self.walk(key, Some(exclude))
    }

    fn walk(&self, key: &str, exclude: Option<usize>) -> Option<usize> {
        if self.ring.is_empty() {
            return None;
        }
        let point = ring_hash(key.as_bytes());
        let start = self.ring.partition_point(|&(p, _)| p < point);
        // At most one look at each ring entry; distinct shards only.
        let mut seen = 0usize;
        for i in 0..self.ring.len() {
            let (_, shard) = self.ring[(start + i) % self.ring.len()];
            if Some(shard) == exclude {
                continue;
            }
            if self.shards[shard].health.routable() {
                return Some(shard);
            }
            seen += 1;
            if seen >= self.ring.len() {
                break;
            }
        }
        None
    }

    /// Record a successful probe (or any successful exchange) with
    /// shard `index`.
    pub fn mark_ok(&mut self, index: usize) -> Transition {
        let shard = &mut self.shards[index];
        shard.probes_ok += 1;
        shard.consecutive_failures = 0;
        shard.skip_ticks = 0;
        shard.backoff_ticks = 0;
        match shard.health {
            ShardHealth::Alive => Transition::None,
            ShardHealth::Suspect | ShardHealth::Dead | ShardHealth::Draining => {
                shard.health = ShardHealth::Alive;
                Transition::Revived
            }
        }
    }

    /// Record a failed probe (or a transport failure on a job exchange)
    /// with shard `index`. Crossing into Dead is reported exactly once.
    pub fn mark_failure(&mut self, index: usize) -> Transition {
        let shard = &mut self.shards[index];
        shard.probes_failed += 1;
        shard.consecutive_failures = shard.consecutive_failures.saturating_add(1);
        let failures = shard.consecutive_failures;
        match shard.health {
            ShardHealth::Dead => {
                // Already declared: back off the probe cadence so a
                // long-gone worker is not hammered at heartbeat rate.
                shard.backoff_ticks = (shard.backoff_ticks.max(1) * 2).min(16);
                shard.skip_ticks = shard.backoff_ticks;
                Transition::None
            }
            ShardHealth::Draining => Transition::None,
            ShardHealth::Alive if failures >= self.dead_after => {
                shard.health = ShardHealth::Dead;
                Transition::Died
            }
            ShardHealth::Alive if failures >= self.suspect_after => {
                shard.health = ShardHealth::Suspect;
                Transition::Suspected
            }
            ShardHealth::Alive => Transition::None,
            ShardHealth::Suspect if failures >= self.dead_after => {
                shard.health = ShardHealth::Dead;
                Transition::Died
            }
            ShardHealth::Suspect => Transition::None,
        }
    }

    /// Enter (or leave) operator drain for shard `index`, as reported by
    /// its own `heartbeat_ack`.
    pub fn set_draining(&mut self, index: usize, draining: bool) {
        let shard = &mut self.shards[index];
        match (draining, shard.health) {
            (true, ShardHealth::Alive | ShardHealth::Suspect) => {
                shard.health = ShardHealth::Draining;
            }
            (false, ShardHealth::Draining) => shard.health = ShardHealth::Alive,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> Membership {
        let mut m = Membership::new(64, 2, 4);
        m.add("127.0.0.1:7701");
        m.add("127.0.0.1:7702");
        m.add("127.0.0.1:7703");
        m
    }

    #[test]
    fn routing_is_stable_and_spread() {
        let m = three();
        let keys: Vec<String> = (0..512).map(|i| format!("key-{i:04x}")).collect();
        let owners: Vec<usize> = keys.iter().map(|k| m.route(k).unwrap()).collect();
        // Deterministic.
        let again: Vec<usize> = keys.iter().map(|k| m.route(k).unwrap()).collect();
        assert_eq!(owners, again);
        // Every shard owns a meaningful slice (vnodes smooth the ring).
        for shard in 0..3 {
            let n = owners.iter().filter(|&&o| o == shard).count();
            assert!(n > 64, "shard {shard} owns only {n}/512 keys");
        }
    }

    #[test]
    fn dead_shards_lose_only_their_arc() {
        let mut m = three();
        let keys: Vec<String> = (0..512).map(|i| format!("key-{i:04x}")).collect();
        let before: Vec<usize> = keys.iter().map(|k| m.route(k).unwrap()).collect();
        for _ in 0..4 {
            m.mark_failure(1);
        }
        assert_eq!(m.shards()[1].health, ShardHealth::Dead);
        for (key, &owner) in keys.iter().zip(&before) {
            let now = m.route(key).unwrap();
            if owner != 1 {
                assert_eq!(now, owner, "unaffected key {key} moved");
            } else {
                assert_ne!(now, 1, "dead shard still routed {key}");
            }
        }
        // Revival moves the arc straight back.
        m.mark_ok(1);
        let revived: Vec<usize> = keys.iter().map(|k| m.route(k).unwrap()).collect();
        assert_eq!(revived, before);
    }

    #[test]
    fn health_machine_walks_the_documented_edges() {
        let mut m = three();
        assert_eq!(m.mark_failure(0), Transition::None);
        assert_eq!(m.mark_failure(0), Transition::Suspected);
        assert_eq!(m.shards()[0].health, ShardHealth::Suspect);
        assert!(m.shards()[0].health.routable(), "suspect is routable");
        assert_eq!(m.mark_failure(0), Transition::None);
        assert_eq!(m.mark_failure(0), Transition::Died);
        assert_eq!(m.mark_failure(0), Transition::None, "dies only once");
        assert!(m.shards()[0].skip_ticks > 0, "dead shards back off");
        assert_eq!(m.mark_ok(0), Transition::Revived);
        assert_eq!(m.shards()[0].health, ShardHealth::Alive);
        assert_eq!(m.shards()[0].skip_ticks, 0);
    }

    #[test]
    fn drain_is_not_a_health_event() {
        let mut m = three();
        m.set_draining(2, true);
        assert_eq!(m.shards()[2].health, ShardHealth::Draining);
        assert!(!m.shards()[2].health.routable());
        assert_eq!(m.mark_failure(2), Transition::None, "drain never dies");
        m.mark_ok(2);
        assert_eq!(
            m.shards()[2].health,
            ShardHealth::Alive,
            "a good probe revives a drained shard (ack said draining:false)"
        );
    }

    #[test]
    fn quorum_and_exclusion() {
        let mut m = three();
        assert!(!m.quorum_lost(0.5));
        for _ in 0..4 {
            m.mark_failure(0);
            m.mark_failure(1);
        }
        assert_eq!(m.routable_count(), 1);
        assert!(m.quorum_lost(0.5));
        // Everything routes to the survivor; excluding it leaves nothing.
        let owner = m.route("any-key").unwrap();
        assert_eq!(owner, 2);
        assert_eq!(m.route_excluding("any-key", 2), None);
        // Empty table has no quorum by definition.
        assert!(Membership::new(8, 1, 2).quorum_lost(0.5));
    }
}
