//! The crate's one HTTP implementation, and the `/v1` JSON gateway
//! built on it.
//!
//! Everything HTTP in this workspace goes through this module: the
//! telemetry sidecar ([`crate::http::MetricsServer`]) mounts its
//! `/metrics`/`/healthz` routes here, and the [`Gateway`] fronts a
//! `dtnsimd` daemon or `dtnfedd` federation with a plain HTTP/JSON API
//! so scripts and low-capability clients can submit sweeps without
//! speaking the length-prefixed wire protocol.
//!
//! ## The server half
//!
//! [`HttpServer`] is a deliberately small HTTP/1.1 listener: one
//! request per connection (`Connection: close` on every response, so
//! HTTP/1.0 scrapers work unchanged), thread-per-connection (streams
//! may be long-lived), and a bounded parser — [`HttpLimits`] caps the
//! head and body sizes and puts a wall-clock deadline on reading the
//! request, which is the slowloris guard: a client that dribbles bytes
//! cannot pin a connection thread past the deadline.
//!
//! ## The gateway
//!
//! | route | answer |
//! |---|---|
//! | `POST /v1/sweeps` | submit a robustness grid; `202` + content-addressed sweep id |
//! | `GET /v1/sweeps/{id}` | status document |
//! | `GET /v1/sweeps/{id}/stream` | chunked stream: one JSON line per finished point, then the assembled report |
//! | `DELETE /v1/sweeps/{id}` | best-effort cancel |
//! | `GET /v1/protocols` | the canonical protocol spec table |
//! | `GET /metrics`, `GET /healthz` | same as the sidecar |
//!
//! The gateway executes sweeps through [`ResilientClient`] against its
//! configured upstream, so federation failover and hedging are
//! transparent, and every job travels the content-addressed
//! [`crate::job_key`] path — an HTTP-submitted sweep hits the same
//! cache as a TCP-submitted one and replays **byte-identically**. The
//! stream keeps that property end to end: per-point `outcome` members
//! are the daemon's verbatim fragment bytes (always the last member,
//! like the wire protocol's frames), and the terminating report is
//! length-prefixed raw bytes, never re-encoded.
//!
//! Upstream states map onto HTTP statuses: backpressure (`queue_full`,
//! `draining`, …) is `429` with a `Retry-After` header carrying the
//! daemon's own hint; a quorum-lost federation (`unreachable`) is
//! `503`; a dead upstream is `502`. Mid-sweep quorum loss surfaces as
//! a *partial* result — the stream still terminates with an assembled
//! report, plus a non-zero `missing` count, exactly like
//! `dtnsim --connect` partial-sweep mode.

use crate::cache::job_key;
use crate::client::{Client, ClientError, RetryPolicy};
use crate::json::{escape, Value};
use crate::resilient::ResilientClient;
use dtn_epidemic::protocols;
use dtn_experiments::{
    assemble_grid_report, grid_point_jobs, FederationStats, GridPoint, Mobility, PointJob,
    PointOutcome, ShardStat, SweepConfig,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Limits and parse errors
// ---------------------------------------------------------------------------

/// Bounds on what the parser will accept from one connection.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Request head (request line + headers) cap.
    pub max_head_bytes: usize,
    /// Request body cap (identity or chunked).
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading one complete request — the
    /// slowloris guard.
    pub read_deadline: Duration,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_deadline: Duration::from_secs(10),
        }
    }
}

/// Why a request could not be read. Each variant maps to the HTTP
/// status the server answers before closing.
#[derive(Debug)]
pub enum HttpError {
    /// Head exceeded [`HttpLimits::max_head_bytes`] → `431`.
    HeadTooLarge,
    /// Body exceeded [`HttpLimits::max_body_bytes`] → `413`.
    BodyTooLarge,
    /// The read deadline expired mid-request → `408`.
    Timeout,
    /// The peer closed before sending anything (no response owed).
    Closed,
    /// Anything else unparseable → `400` with the reason.
    Malformed(String),
}

impl HttpError {
    /// `(status line, message)` to answer with; `None` when the peer is
    /// owed nothing (it never sent a request).
    fn response(&self) -> Option<(&'static str, String)> {
        match self {
            HttpError::HeadTooLarge => Some((
                "431 Request Header Fields Too Large",
                "request head exceeds the limit".to_string(),
            )),
            HttpError::BodyTooLarge => Some((
                "413 Content Too Large",
                "request body exceeds the limit".to_string(),
            )),
            HttpError::Timeout => Some((
                "408 Request Timeout",
                "request read deadline expired".to_string(),
            )),
            HttpError::Closed => None,
            HttpError::Malformed(reason) => Some(("400 Bad Request", reason.clone())),
        }
    }
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, …
    pub method: String,
    /// Path component of the target (before `?`).
    pub path: String,
    /// Raw query string (after `?`, empty if absent).
    pub query: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body bytes (chunked bodies are de-chunked).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the query string contains `key` or `key=1`/`key=true`.
    pub fn query_flag(&self, key: &str) -> bool {
        self.query.split('&').any(|item| {
            item == key
                || item
                    .split_once('=')
                    .is_some_and(|(k, v)| k == key && matches!(v, "1" | "true"))
        })
    }
}

/// Read bytes until the `\r\n\r\n` ending a head. Returns the head (without
/// the terminator) and any bytes read past it (the body's first bytes).
fn read_head(
    reader: &mut dyn Read,
    cap: usize,
    deadline: Instant,
) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut acc: Vec<u8> = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    loop {
        if let Some(pos) = acc.windows(4).position(|w| w == b"\r\n\r\n") {
            let leftover = acc.split_off(pos + 4);
            acc.truncate(pos);
            return Ok((acc, leftover));
        }
        if acc.len() > cap {
            return Err(HttpError::HeadTooLarge);
        }
        match reader.read(&mut buf) {
            Ok(0) => {
                return Err(if acc.is_empty() {
                    HttpError::Closed
                } else {
                    HttpError::Malformed("connection closed mid-head".to_string())
                })
            }
            Ok(n) => acc.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(HttpError::Timeout);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        }
    }
}

/// Fill `buf` completely, riding out read timeouts until `deadline`.
fn fill(reader: &mut dyn Read, buf: &mut [u8], deadline: Instant) -> Result<(), HttpError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed mid-body".to_string(),
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(HttpError::Timeout);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        }
    }
    Ok(())
}

/// Read one `\r\n`-terminated line (returned without the terminator).
fn read_crlf_line(
    reader: &mut dyn Read,
    cap: usize,
    deadline: Instant,
) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::with_capacity(16);
    let mut byte = [0u8; 1];
    loop {
        fill(reader, &mut byte, deadline)?;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 chunk framing".to_string()));
        }
        line.push(byte[0]);
        if line.len() > cap {
            return Err(HttpError::Malformed(
                "oversized chunk-size line".to_string(),
            ));
        }
    }
}

/// Decode a chunked transfer-encoded body (torn bodies are malformed).
fn read_chunked_body(
    reader: &mut dyn Read,
    cap: usize,
    deadline: Instant,
) -> Result<Vec<u8>, HttpError> {
    let mut out: Vec<u8> = Vec::new();
    loop {
        let size_line = read_crlf_line(reader, 256, deadline)?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_hex:?}")))?;
        if size == 0 {
            // Trailer section: lines until the blank one.
            loop {
                if read_crlf_line(reader, 256, deadline)?.is_empty() {
                    return Ok(out);
                }
            }
        }
        if out.len() + size > cap {
            return Err(HttpError::BodyTooLarge);
        }
        let start = out.len();
        out.resize(start + size, 0);
        fill(reader, &mut out[start..], deadline)?;
        let mut crlf = [0u8; 2];
        fill(reader, &mut crlf, deadline)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Malformed(
                "chunk data not CRLF-terminated".to_string(),
            ));
        }
    }
}

/// Read and parse one complete request under `limits`. The reader
/// should carry a short socket read timeout so the deadline can fire
/// mid-silence (in-memory readers simply never time out).
pub fn read_request(reader: &mut dyn Read, limits: &HttpLimits) -> Result<Request, HttpError> {
    let deadline = Instant::now() + limits.read_deadline;
    let (head, leftover) = read_head(reader, limits.max_head_bytes, deadline)?;
    let head = String::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let mut body_reader = std::io::Cursor::new(leftover).chain(reader);
    let body = if header("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    {
        read_chunked_body(&mut body_reader, limits.max_body_bytes, deadline)?
    } else if let Some(len) = header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
        if len > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
        let mut body = vec![0u8; len];
        fill(&mut body_reader, &mut body, deadline)?;
        body
    } else {
        Vec::new()
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The write half of one connection, handed to the server's handler.
/// Exactly one response goes out: either [`Responder::send`] or a
/// [`Responder::begin_chunked`] stream. Every response carries
/// `Connection: close`.
pub struct Responder {
    stream: TcpStream,
}

impl Responder {
    /// Send a complete response with a `Content-Length` body.
    pub fn send(
        mut self,
        status: &str,
        content_type: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
    ) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Start a chunked response; the body goes out through the returned
    /// writer.
    pub fn begin_chunked(
        mut self,
        status: &str,
        content_type: &str,
    ) -> std::io::Result<ChunkedWriter> {
        let head = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.flush()?;
        Ok(ChunkedWriter {
            stream: self.stream,
        })
    }
}

/// Writer for a chunked response body.
pub struct ChunkedWriter {
    stream: TcpStream,
}

impl ChunkedWriter {
    /// Write one chunk (empty input writes nothing — an empty chunk
    /// would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.stream
            .write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream (the zero chunk).
    pub fn finish(mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A request handler: consume the request, produce exactly one response
/// through the responder.
pub type Handler = dyn Fn(Request, Responder) + Send + Sync;

/// A bound HTTP listener dispatching each connection's one request to a
/// handler on its own thread.
pub struct HttpServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `127.0.0.1:port` (0 picks a free port) and serve until
    /// [`HttpServer::shutdown`].
    pub fn spawn(
        port: u16,
        thread_name: &str,
        limits: HttpLimits,
        handler: Arc<Handler>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = Arc::clone(&handler);
                    // Connection threads are detached: each serves one
                    // request then exits, and a streaming response may
                    // legitimately outlive the accept loop.
                    let _ = std::thread::Builder::new()
                        .name("http-conn".to_string())
                        .spawn(move || serve_connection(stream, limits, &*handler));
                }
            })?;
        Ok(HttpServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting and join the accept thread (in-flight connection
    /// threads drain on their own).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_connection(stream: TcpStream, limits: HttpLimits, handler: &Handler) {
    // A short socket timeout makes every blocking read wake up to check
    // the parser's wall-clock deadline — the slowloris guard.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut reader = &stream;
    match read_request(&mut reader, &limits) {
        Ok(request) => {
            let _ = stream.set_read_timeout(None);
            handler(request, Responder { stream });
        }
        Err(e) => {
            if let Some((status, message)) = e.response() {
                let body = format!("{{\"error\":\"{}\"}}\n", escape(&message));
                let _ = Responder { stream }.send(status, "application/json", &[], body.as_bytes());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client half
// ---------------------------------------------------------------------------

/// A complete client-side response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Numeric status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The full (de-chunked) body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Incremental reader over a response body: de-chunks chunked bodies,
/// bounds `Content-Length` ones, reads to close otherwise.
pub struct BodyReader {
    stream: TcpStream,
    leftover: Vec<u8>,
    pos: usize,
    mode: BodyMode,
}

enum BodyMode {
    Chunked {
        remaining: usize,
        first: bool,
        done: bool,
    },
    Length(usize),
    UntilClose,
}

impl BodyReader {
    fn read_raw(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.leftover.len() {
            let n = (self.leftover.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.leftover[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        loop {
            match self.stream.read(buf) {
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }

    fn read_raw_exact(&mut self, buf: &mut [u8]) -> std::io::Result<()> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.read_raw(&mut buf[filled..])? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "torn chunked body",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    fn read_raw_line(&mut self) -> std::io::Result<String> {
        let mut line: Vec<u8> = Vec::with_capacity(16);
        let mut byte = [0u8; 1];
        loop {
            self.read_raw_exact(&mut byte)?;
            if byte[0] == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 chunk framing")
                });
            }
            line.push(byte[0]);
            if line.len() > 256 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "oversized chunk-size line",
                ));
            }
        }
    }
}

impl Read for BodyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        match self.mode {
            BodyMode::UntilClose => self.read_raw(buf),
            BodyMode::Length(0) => Ok(0),
            BodyMode::Length(remaining) => {
                let take = remaining.min(buf.len());
                let got = self.read_raw(&mut buf[..take])?;
                if got == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "body shorter than content-length",
                    ));
                }
                self.mode = BodyMode::Length(remaining - got);
                Ok(got)
            }
            BodyMode::Chunked { done: true, .. } => Ok(0),
            BodyMode::Chunked {
                mut remaining,
                mut first,
                ..
            } => {
                if remaining == 0 {
                    if !first {
                        let mut crlf = [0u8; 2];
                        self.read_raw_exact(&mut crlf)?;
                        if &crlf != b"\r\n" {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "chunk data not CRLF-terminated",
                            ));
                        }
                    }
                    first = false;
                    let size_line = self.read_raw_line()?;
                    let size_hex = size_line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(size_hex, 16).map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad chunk size {size_hex:?}"),
                        )
                    })?;
                    if size == 0 {
                        while !self.read_raw_line()?.is_empty() {}
                        self.mode = BodyMode::Chunked {
                            remaining: 0,
                            first,
                            done: true,
                        };
                        return Ok(0);
                    }
                    remaining = size;
                }
                let take = remaining.min(buf.len());
                let got = self.read_raw(&mut buf[..take])?;
                if got == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "torn chunked body",
                    ));
                }
                self.mode = BodyMode::Chunked {
                    remaining: remaining - got,
                    first,
                    done: false,
                };
                Ok(got)
            }
        }
    }
}

/// An opened response: status, lower-cased headers, incremental body.
pub type OpenResponse = (u16, Vec<(String, String)>, BodyReader);

/// Send one request and return the parsed head plus an incremental
/// body reader — the streaming client used by `dtnsim --gateway`.
pub fn http_open(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> std::io::Result<OpenResponse> {
    let stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some((content_type, payload)) = body {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    {
        let mut w = &stream;
        w.write_all(head.as_bytes())?;
        if let Some((_, payload)) = body {
            w.write_all(payload)?;
        }
        w.flush()?;
    }
    let mut reader = &stream;
    // Far-future deadline: the client blocks as long as the server
    // streams (a sweep point can take minutes); a closed socket still
    // errors out promptly.
    let deadline = Instant::now() + Duration::from_secs(24 * 3600);
    let (head, leftover) = read_head(&mut reader, 64 * 1024, deadline).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad response head: {e:?}"),
        )
    })?;
    let head = String::from_utf8(head)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let mode =
        if find("transfer-encoding").is_some_and(|v| v.to_ascii_lowercase().contains("chunked")) {
            BodyMode::Chunked {
                remaining: 0,
                first: true,
                done: false,
            }
        } else if let Some(len) = find("content-length").and_then(|v| v.parse::<usize>().ok()) {
            BodyMode::Length(len)
        } else {
            BodyMode::UntilClose
        };
    Ok((
        status,
        headers,
        BodyReader {
            stream,
            leftover,
            pos: 0,
            mode,
        },
    ))
}

/// Send one request and read the whole response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> std::io::Result<HttpResponse> {
    let (status, headers, mut reader) = http_open(addr, method, path, body)?;
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

// ---------------------------------------------------------------------------
// Connect-target parsing (dtnsim --connect)
// ---------------------------------------------------------------------------

/// Where `dtnsim --connect` should point its client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnectTarget {
    /// A `host:port` speaking the length-prefixed wire protocol.
    Wire(String),
    /// An `http://host:port` gateway (stored as bare `host:port`).
    Http(String),
}

/// A typed parse failure for a connect address: what was given and why
/// it is not usable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectParseError {
    /// The offending input, verbatim.
    pub input: String,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ConnectParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid connect address {input:?}: {reason}",
            input = self.input,
            reason = self.reason
        )
    }
}

impl std::error::Error for ConnectParseError {}

fn check_host_port(input: &str, s: &str) -> Result<(), ConnectParseError> {
    let err = |reason: String| ConnectParseError {
        input: input.to_string(),
        reason,
    };
    let (host, port) = s
        .rsplit_once(':')
        .ok_or_else(|| err("expected host:port".to_string()))?;
    if host.is_empty() {
        return Err(err("empty host".to_string()));
    }
    match port.parse::<u16>() {
        Ok(0) => Err(err("port 0 is not connectable".to_string())),
        Ok(_) => Ok(()),
        Err(_) => Err(err(format!("bad port {port:?}"))),
    }
}

/// Classify a `--connect` address: `http://host:port` selects the
/// gateway client, bare `host:port` the wire client; anything else is a
/// typed error naming the problem.
pub fn parse_connect_target(s: &str) -> Result<ConnectTarget, ConnectParseError> {
    let err = |reason: &str| ConnectParseError {
        input: s.to_string(),
        reason: reason.to_string(),
    };
    if let Some(rest) = s.strip_prefix("http://") {
        let rest = rest.strip_suffix('/').unwrap_or(rest);
        if rest.contains('/') {
            return Err(err("a gateway URL is just http://host:port, with no path"));
        }
        check_host_port(s, rest)?;
        return Ok(ConnectTarget::Http(rest.to_string()));
    }
    if s.starts_with("https://") {
        return Err(err("https is not supported; the gateway speaks plain http"));
    }
    if let Some((scheme, _)) = s.split_once("://") {
        return Err(ConnectParseError {
            input: s.to_string(),
            reason: format!("unsupported scheme {scheme:?} (use http:// or bare host:port)"),
        });
    }
    check_host_port(s, s)?;
    Ok(ConnectTarget::Wire(s.to_string()))
}

// ---------------------------------------------------------------------------
// The gateway
// ---------------------------------------------------------------------------

/// Gateway configuration.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// HTTP bind port on 127.0.0.1 (0 picks a free port).
    pub port: u16,
    /// Wire address of the upstream `dtnsimd` or `dtnfedd`.
    pub upstream: String,
    /// Seed for the runner's healing/backoff jitter streams.
    pub seed: u64,
    /// Parser bounds for incoming requests.
    pub limits: HttpLimits,
}

impl GatewayConfig {
    /// A default-limit gateway on a free port, fronting `upstream`.
    pub fn new(upstream: &str) -> GatewayConfig {
        GatewayConfig {
            port: 0,
            upstream: upstream.to_string(),
            seed: 0,
            limits: HttpLimits::default(),
        }
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum SweepStatus {
    #[default]
    Running,
    Done,
    Failed,
    Cancelled,
}

impl SweepStatus {
    fn as_str(self) -> &'static str {
        match self {
            SweepStatus::Running => "running",
            SweepStatus::Done => "done",
            SweepStatus::Failed => "failed",
            SweepStatus::Cancelled => "cancelled",
        }
    }
}

#[derive(Default)]
struct SweepInner {
    status: SweepStatus,
    /// Pre-rendered per-point stream lines, in completion order.
    points: Vec<String>,
    cancel_requested: bool,
    missing: u64,
    error: Option<String>,
    report_full: Option<String>,
    report_canonical: Option<String>,
}

struct Sweep {
    id: String,
    total: usize,
    /// Content addresses of every job, in grid order (cancel targets —
    /// the daemon's job id *is* the job key).
    job_keys: Vec<String>,
    inner: Mutex<SweepInner>,
    cv: Condvar,
}

impl Sweep {
    fn status_doc(&self) -> String {
        let inner = self.inner.lock().expect("sweep poisoned");
        let error = inner
            .error
            .as_ref()
            .map(|e| format!(",\"error\":\"{}\"", escape(e)))
            .unwrap_or_default();
        format!(
            "{{\"id\":\"{}\",\"status\":\"{}\",\"total\":{},\"done\":{},\"missing\":{}{error}}}\n",
            self.id,
            inner.status.as_str(),
            self.total,
            inner.points.len(),
            inner.missing,
        )
    }
}

struct GatewayState {
    config: GatewayConfig,
    sweeps: Mutex<HashMap<String, Arc<Sweep>>>,
}

/// The running HTTP/JSON gateway.
pub struct Gateway {
    server: HttpServer,
}

impl Gateway {
    /// Bind and serve. Runner threads are spawned per accepted sweep
    /// and detached — they complete their upstream work even if the
    /// listener shuts down first.
    pub fn spawn(config: GatewayConfig) -> std::io::Result<Gateway> {
        let limits = config.limits;
        let port = config.port;
        let state = Arc::new(GatewayState {
            config,
            sweeps: Mutex::new(HashMap::new()),
        });
        let handler: Arc<Handler> = Arc::new(move |request, responder| {
            route(&state, request, responder);
        });
        let server = HttpServer::spawn(port, "gateway-http", limits, handler)?;
        Ok(Gateway { server })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Stop the listener (in-flight sweeps keep running upstream).
    pub fn shutdown(self) {
        self.server.shutdown()
    }
}

fn route(state: &Arc<GatewayState>, request: Request, responder: Responder) {
    let path = request.path.clone();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    let result = match (method, segments.as_slice()) {
        ("GET", ["metrics"]) => responder.send(
            "200 OK",
            "text/plain; version=0.0.4",
            &[],
            dtn_sim::telemetry::global().render_prometheus().as_bytes(),
        ),
        ("GET", ["healthz"]) => responder.send("200 OK", "text/plain", &[], b"ok\n"),
        ("GET", ["v1", "protocols"]) => responder.send(
            "200 OK",
            "application/json",
            &[],
            protocols_doc().as_bytes(),
        ),
        ("POST", ["v1", "sweeps"]) => {
            handle_submit(state, &request, responder);
            Ok(())
        }
        ("GET", ["v1", "sweeps", id]) => match lookup(state, id) {
            Some(sweep) => responder.send(
                "200 OK",
                "application/json",
                &[],
                sweep.status_doc().as_bytes(),
            ),
            None => not_found(responder, id),
        },
        ("GET", ["v1", "sweeps", id, "stream"]) => match lookup(state, id) {
            Some(sweep) => {
                handle_stream(&sweep, request.query_flag("canonical"), responder);
                Ok(())
            }
            None => not_found(responder, id),
        },
        ("DELETE", ["v1", "sweeps", id]) => match lookup(state, id) {
            Some(sweep) => {
                handle_cancel(state, &sweep, responder);
                Ok(())
            }
            None => not_found(responder, id),
        },
        (_, ["metrics" | "healthz"]) | (_, ["v1", ..]) => responder.send(
            "405 Method Not Allowed",
            "application/json",
            &[],
            b"{\"error\":\"method not allowed\"}\n",
        ),
        _ => responder.send(
            "404 Not Found",
            "application/json",
            &[],
            b"{\"error\":\"no such route\"}\n",
        ),
    };
    let _ = result;
}

fn lookup(state: &GatewayState, id: &str) -> Option<Arc<Sweep>> {
    state
        .sweeps
        .lock()
        .expect("sweeps poisoned")
        .get(id)
        .cloned()
}

fn not_found(responder: Responder, id: &str) -> std::io::Result<()> {
    let body = format!("{{\"error\":\"no sweep {}\"}}\n", escape(id));
    responder.send("404 Not Found", "application/json", &[], body.as_bytes())
}

fn protocols_doc() -> String {
    let rows: Vec<String> = protocols::ALL_SPECS
        .iter()
        .zip(protocols::spec_protocols())
        .map(|(spec, proto)| {
            format!(
                "{{\"spec\":\"{}\",\"name\":\"{}\"}}",
                escape(spec),
                escape(proto.name)
            )
        })
        .collect();
    format!("{{\"protocols\":[{}]}}\n", rows.join(","))
}

/// The POST body, mirroring `dtnsim --robustness` flags and defaults.
struct SweepSpec {
    mobility: Mobility,
    load: u32,
    reps: usize,
    seed: u64,
    buffer: usize,
    tx_time: Option<u64>,
    retries: u32,
    point_timeout: Option<u64>,
    audit: bool,
}

fn parse_sweep_spec(body: &[u8]) -> Result<SweepSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body; expected a JSON sweep spec like \
                    {\"mobility\":\"interval=2000\",\"load\":10}"
            .to_string());
    }
    let v = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let mobility_spec = v
        .get("mobility")
        .and_then(Value::as_str)
        .ok_or("missing \"mobility\" (trace | rwp | geom-rwp | interval=SECS)")?;
    let mobility = Mobility::parse(mobility_spec)?;
    let uint = |key: &str, default: u64| -> Result<u64, String> {
        match v.get(key) {
            None => Ok(default),
            Some(value) => value
                .as_u64()
                .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
        }
    };
    let opt_uint = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None => Ok(None),
            Some(value) if value.is_null() => Ok(None),
            Some(value) => value
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
        }
    };
    let load = u32::try_from(uint("load", 25)?).map_err(|_| "\"load\" out of range".to_string())?;
    let reps =
        usize::try_from(uint("reps", 10)?).map_err(|_| "\"reps\" out of range".to_string())?;
    if load == 0 || reps == 0 {
        return Err("\"load\" and \"reps\" must be at least 1".to_string());
    }
    Ok(SweepSpec {
        mobility,
        load,
        reps,
        seed: uint("seed", 1)?,
        buffer: usize::try_from(uint("buffer", 10)?)
            .map_err(|_| "\"buffer\" out of range".to_string())?,
        tx_time: opt_uint("tx_time")?,
        retries: u32::try_from(uint("retries", 0)?)
            .map_err(|_| "\"retries\" out of range".to_string())?,
        point_timeout: opt_uint("point_timeout")?,
        audit: match v.get("audit") {
            None => false,
            Some(value) => value
                .as_bool()
                .ok_or("\"audit\" must be a boolean".to_string())?,
        },
    })
}

fn sweep_config(spec: &SweepSpec) -> SweepConfig {
    SweepConfig {
        loads: vec![spec.load],
        replications: spec.reps,
        base_seed: spec.seed,
        buffer_capacity: spec.buffer,
        tx_time_secs: spec.tx_time,
        retries: spec.retries,
        point_timeout_secs: spec.point_timeout,
        audit: spec.audit,
        ..SweepConfig::default()
    }
}

fn bad_request(responder: Responder, message: &str) {
    let body = format!("{{\"error\":\"{}\"}}\n", escape(message));
    let _ = responder.send("400 Bad Request", "application/json", &[], body.as_bytes());
}

fn handle_submit(state: &Arc<GatewayState>, request: &Request, responder: Responder) {
    let spec = match parse_sweep_spec(&request.body) {
        Ok(spec) => spec,
        Err(e) => return bad_request(responder, &e),
    };
    let cfg = sweep_config(&spec);
    let points = match grid_point_jobs(spec.mobility, &cfg) {
        Ok(points) => points,
        Err(e) => return bad_request(responder, &e),
    };
    // The sweep id is the content address of the whole grid: equal
    // specs collapse onto one sweep, exactly as equal jobs collapse
    // onto one cache entry.
    let canonical: Vec<String> = points.iter().map(|p| p.job.to_canonical_json()).collect();
    let id = job_key(&canonical.join("\n"));
    if let Some(existing) = reuse_or_evict(state, &id) {
        let _ = responder.send(
            "200 OK",
            "application/json",
            &[],
            existing.status_doc().as_bytes(),
        );
        return;
    }
    // Admission probe: one zero-retry submit of the first job answers
    // the backpressure question *now*, so the client gets its 429 (and
    // the daemon's own Retry-After hint) instead of a silently queued
    // sweep. The probe's job is not wasted — the runner resubmits it
    // idempotently.
    match Client::connect(&state.config.upstream) {
        Err(e) => {
            let body = format!(
                "{{\"error\":\"upstream daemon unreachable: {}\"}}\n",
                escape(&e.to_string())
            );
            let _ = responder.send("502 Bad Gateway", "application/json", &[], body.as_bytes());
            return;
        }
        Ok(mut probe) => match probe.submit_once(&points[0].job) {
            Ok(Ok(_ticket)) => {}
            Ok(Err(backpressure)) => {
                let secs = backpressure.retry_after_ms.div_ceil(1000).max(1);
                let body = format!(
                    "{{\"error\":\"backpressure\",\"reason\":\"{}\",\"retry_after_ms\":{}}}\n",
                    escape(&backpressure.reason),
                    backpressure.retry_after_ms
                );
                let _ = responder.send(
                    "429 Too Many Requests",
                    "application/json",
                    &[("Retry-After", secs.to_string())],
                    body.as_bytes(),
                );
                return;
            }
            Err(ClientError::Unreachable(detail)) => {
                let body = format!(
                    "{{\"error\":\"unreachable\",\"detail\":\"{}\"}}\n",
                    escape(&detail)
                );
                let _ = responder.send(
                    "503 Service Unavailable",
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
                return;
            }
            Err(e) => {
                let body = format!(
                    "{{\"error\":\"upstream error: {}\"}}\n",
                    escape(&e.to_string())
                );
                let _ = responder.send("502 Bad Gateway", "application/json", &[], body.as_bytes());
                return;
            }
        },
    }
    let sweep = Arc::new(Sweep {
        id: id.clone(),
        total: points.len(),
        job_keys: canonical.iter().map(|c| job_key(c)).collect(),
        inner: Mutex::new(SweepInner::default()),
        cv: Condvar::new(),
    });
    {
        let mut sweeps = state.sweeps.lock().expect("sweeps poisoned");
        // A concurrent identical POST may have won the race while the
        // probe was in flight; theirs is as good as ours.
        if let Some(existing) = sweeps.get(&id) {
            let doc = Arc::clone(existing).status_doc();
            drop(sweeps);
            let _ = responder.send("200 OK", "application/json", &[], doc.as_bytes());
            return;
        }
        sweeps.insert(id.clone(), Arc::clone(&sweep));
    }
    let config = state.config.clone();
    let runner_sweep = Arc::clone(&sweep);
    let mobility = spec.mobility;
    let _ = std::thread::Builder::new()
        .name("gateway-sweep".to_string())
        .spawn(move || run_sweep(config, mobility, cfg, points, runner_sweep));
    let _ = responder.send(
        "202 Accepted",
        "application/json",
        &[],
        sweep.status_doc().as_bytes(),
    );
}

/// Reuse a live (running or completed) sweep with this id; evict a
/// failed or cancelled one so the resubmission runs fresh.
fn reuse_or_evict(state: &GatewayState, id: &str) -> Option<Arc<Sweep>> {
    let mut sweeps = state.sweeps.lock().expect("sweeps poisoned");
    let existing = sweeps.get(id)?;
    let status = existing.inner.lock().expect("sweep poisoned").status;
    match status {
        SweepStatus::Running | SweepStatus::Done => Some(Arc::clone(existing)),
        SweepStatus::Failed | SweepStatus::Cancelled => {
            sweeps.remove(id);
            None
        }
    }
}

fn run_sweep(
    config: GatewayConfig,
    mobility: Mobility,
    cfg: SweepConfig,
    points: Vec<GridPoint>,
    sweep: Arc<Sweep>,
) {
    let jobs: Vec<PointJob> = points.iter().map(|p| p.job.clone()).collect();
    let policy = RetryPolicy {
        seed: config.seed,
        ..RetryPolicy::default()
    };
    let mut client = ResilientClient::new(&config.upstream, policy);
    let started = Instant::now();
    let result = {
        let stream_sweep = &sweep;
        let stream_points = &points;
        client.collect_available_with(&jobs, &mut |index, fragment, cached| {
            // `outcome` is last, like the wire protocol's frames: a
            // reader can slice the member's bytes verbatim.
            let line = format!(
                "{{\"type\":\"point\",\"index\":{index},\"key\":\"{}\",\"cached\":{cached},\
                 \"outcome\":{fragment}}}",
                escape(&stream_points[index].key)
            );
            let mut inner = stream_sweep.inner.lock().expect("sweep poisoned");
            inner.points.push(line);
            stream_sweep.cv.notify_all();
        })
    };
    let pairs = match result {
        Ok(pairs) => pairs,
        Err(e) => {
            let mut inner = sweep.inner.lock().expect("sweep poisoned");
            if inner.cancel_requested {
                inner.status = SweepStatus::Cancelled;
            } else {
                inner.status = SweepStatus::Failed;
                inner.error = Some(e.to_string());
            }
            sweep.cv.notify_all();
            return;
        }
    };
    let missing = pairs.iter().filter(|p| p.is_none()).count() as u64;
    let decoded: Result<Vec<(GridPoint, PointOutcome)>, String> = points
        .iter()
        .zip(&pairs)
        .filter_map(|(point, pair)| {
            pair.as_ref().map(|(fragment, _)| {
                PointOutcome::from_wire_json(fragment).map(|o| (point.clone(), o))
            })
        })
        .collect();
    let kept = match decoded {
        Ok(kept) => kept,
        Err(e) => {
            let mut inner = sweep.inner.lock().expect("sweep poisoned");
            inner.status = SweepStatus::Failed;
            inner.error = Some(format!("malformed fragment: {e}"));
            sweep.cv.notify_all();
            return;
        }
    };
    let (kept_points, kept_outcomes): (Vec<GridPoint>, Vec<PointOutcome>) =
        kept.into_iter().unzip();
    let mut report = assemble_grid_report(
        mobility,
        &cfg,
        &kept_points,
        &kept_outcomes,
        started.elapsed().as_secs_f64(),
    );
    report.federation = federation_stats(&mut client, missing);
    let full = report.to_json();
    let canonical = report.to_canonical_json();
    let mut inner = sweep.inner.lock().expect("sweep poisoned");
    inner.status = SweepStatus::Done;
    inner.missing = missing;
    inner.report_full = Some(full);
    inner.report_canonical = Some(canonical);
    sweep.cv.notify_all();
}

/// Same attribution fetch `dtnsim --connect` does after a sweep: if the
/// upstream is a coordinator, fold its stats into the report's
/// federation block. Best-effort; a plain daemon yields `None`.
fn federation_stats(client: &mut ResilientClient, missing_points: u64) -> Option<FederationStats> {
    let raw = client.stats_raw().ok()?;
    let v = Value::parse(&raw).ok()?;
    if v.get("role").and_then(Value::as_str) != Some("coordinator") {
        return None;
    }
    let num = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    let shards = v
        .get("shards")
        .and_then(Value::as_array)
        .map(|entries| {
            entries
                .iter()
                .map(|s| ShardStat {
                    addr: s
                        .get("addr")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    state: s
                        .get("state")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    completed: s.get("completed").and_then(Value::as_u64).unwrap_or(0),
                })
                .collect()
        })
        .unwrap_or_default();
    Some(FederationStats {
        workers: num("workers"),
        routable_workers: num("routable_workers"),
        degraded: v.get("degraded").and_then(Value::as_bool).unwrap_or(false),
        failovers: num("failovers"),
        hedges: num("hedges"),
        redispatches: num("redispatches"),
        missing_points,
        shards,
    })
}

fn handle_stream(sweep: &Arc<Sweep>, canonical: bool, responder: Responder) {
    let Ok(mut writer) = responder.begin_chunked("200 OK", "application/x-ndjson") else {
        return;
    };
    let mut sent = 0usize;
    loop {
        // Snapshot under the lock, write outside it: a slow reader must
        // not stall the runner's completion callback.
        let (batch, terminal): (Vec<String>, Option<(String, Option<String>)>) = {
            let mut inner = sweep.inner.lock().expect("sweep poisoned");
            loop {
                if sent < inner.points.len() {
                    break (inner.points[sent..].to_vec(), None);
                }
                match inner.status {
                    SweepStatus::Running => {
                        inner = sweep
                            .cv
                            .wait_timeout(inner, Duration::from_secs(1))
                            .expect("sweep poisoned")
                            .0;
                    }
                    SweepStatus::Done => {
                        let report = if canonical {
                            inner.report_canonical.clone()
                        } else {
                            inner.report_full.clone()
                        }
                        .unwrap_or_default();
                        let header = format!(
                            "{{\"type\":\"report\",\"status\":\"done\",\"missing\":{},\
                             \"bytes\":{}}}\n",
                            inner.missing,
                            report.len()
                        );
                        break (Vec::new(), Some((header, Some(report))));
                    }
                    SweepStatus::Failed => {
                        let error = inner.error.clone().unwrap_or_default();
                        let header = format!(
                            "{{\"type\":\"error\",\"status\":\"failed\",\"error\":\"{}\"}}\n",
                            escape(&error)
                        );
                        break (Vec::new(), Some((header, None)));
                    }
                    SweepStatus::Cancelled => {
                        let header = "{\"type\":\"error\",\"status\":\"cancelled\"}\n".to_string();
                        break (Vec::new(), Some((header, None)));
                    }
                }
            }
        };
        for line in batch {
            sent += 1;
            let mut chunk = line.into_bytes();
            chunk.push(b'\n');
            if writer.chunk(&chunk).is_err() {
                return;
            }
        }
        if let Some((header, payload)) = terminal {
            if writer.chunk(header.as_bytes()).is_err() {
                return;
            }
            if let Some(report) = payload {
                if writer.chunk(report.as_bytes()).is_err() {
                    return;
                }
            }
            let _ = writer.finish();
            return;
        }
    }
}

fn handle_cancel(state: &Arc<GatewayState>, sweep: &Arc<Sweep>, responder: Responder) {
    {
        let mut inner = sweep.inner.lock().expect("sweep poisoned");
        match inner.status {
            SweepStatus::Running => inner.cancel_requested = true,
            status => {
                let body = format!(
                    "{{\"id\":\"{}\",\"cancelled\":false,\"status\":\"{}\"}}\n",
                    sweep.id,
                    status.as_str()
                );
                let _ = responder.send("200 OK", "application/json", &[], body.as_bytes());
                return;
            }
        }
    }
    // Best-effort: cancel whatever is still queued upstream. Running
    // points complete (and cache); the runner unwinds the moment it
    // waits on a cancelled job and reports the sweep cancelled.
    let mut jobs_cancelled = 0u64;
    if let Ok(mut control) = Client::connect(&state.config.upstream) {
        for key in &sweep.job_keys {
            if control.cancel(key) == Ok(true) {
                jobs_cancelled += 1;
            }
        }
    }
    let body = format!(
        "{{\"id\":\"{}\",\"cancelled\":true,\"jobs_cancelled\":{jobs_cancelled}}}\n",
        sweep.id
    );
    let _ = responder.send("202 Accepted", "application/json", &[], body.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        read_request(&mut cursor, &HttpLimits::default())
    }

    #[test]
    fn parses_a_plain_request() {
        let req = parse(
            b"POST /v1/sweeps?canonical=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweeps");
        assert!(req.query_flag("canonical"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn decodes_chunked_bodies_and_rejects_torn_ones() {
        let req = parse(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"wikipedia");
        let torn = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n10\r\nshort");
        assert!(matches!(torn, Err(HttpError::Malformed(_))), "{torn:?}");
    }

    #[test]
    fn oversized_heads_and_bodies_are_bounded() {
        let huge_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(
            parse(huge_header.as_bytes()),
            Err(HttpError::HeadTooLarge)
        ));
        let small = HttpLimits {
            max_body_bytes: 8,
            ..HttpLimits::default()
        };
        let mut cursor = std::io::Cursor::new(
            b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789".to_vec(),
        );
        assert!(matches!(
            read_request(&mut cursor, &small),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn connect_targets_parse_and_misparse_with_types() {
        assert_eq!(
            parse_connect_target("127.0.0.1:7700"),
            Ok(ConnectTarget::Wire("127.0.0.1:7700".to_string()))
        );
        assert_eq!(
            parse_connect_target("http://127.0.0.1:8080/"),
            Ok(ConnectTarget::Http("127.0.0.1:8080".to_string()))
        );
        for bad in [
            "nonsense",
            "http://nohost",
            "https://127.0.0.1:1",
            "ftp://x:1",
            "host:0",
            "host:99999",
            ":7700",
        ] {
            let err = parse_connect_target(bad).unwrap_err();
            assert_eq!(err.input, bad);
            assert!(!err.reason.is_empty());
        }
    }

    #[test]
    fn server_routes_and_streams_chunks() {
        let handler: Arc<Handler> = Arc::new(|request, responder| match request.path.as_str() {
            "/plain" => {
                let _ = responder.send("200 OK", "text/plain", &[], b"hello");
            }
            "/stream" => {
                let mut w = responder.begin_chunked("200 OK", "text/plain").unwrap();
                w.chunk(b"alpha ").unwrap();
                w.chunk(b"beta").unwrap();
                w.finish().unwrap();
            }
            _ => {
                let _ = responder.send("404 Not Found", "text/plain", &[], b"");
            }
        });
        let server =
            HttpServer::spawn(0, "httpd-test", HttpLimits::default(), handler).expect("bind");
        let addr = server.local_addr().to_string();
        let plain = http_request(&addr, "GET", "/plain", None).unwrap();
        assert_eq!(plain.status, 200);
        assert_eq!(plain.body, b"hello");
        let streamed = http_request(&addr, "GET", "/stream", None).unwrap();
        assert_eq!(streamed.status, 200);
        assert_eq!(streamed.body, b"alpha beta");
        assert_eq!(
            http_request(&addr, "GET", "/nope", None).unwrap().status,
            404
        );
        server.shutdown();
    }

    #[test]
    fn sweep_spec_parses_with_defaults_and_rejects_garbage() {
        let spec = parse_sweep_spec(br#"{"mobility":"interval=2000","load":10,"reps":2}"#).unwrap();
        assert_eq!(spec.load, 10);
        assert_eq!(spec.reps, 2);
        assert_eq!(spec.seed, 1, "seed defaults to the CLI's default");
        assert_eq!(spec.buffer, 10);
        for bad in [
            &b""[..],
            b"{}",
            b"{\"mobility\":\"marsrover\"}",
            b"{\"mobility\":\"rwp\",\"load\":0}",
            b"{\"mobility\":\"rwp\",\"reps\":\"many\"}",
            b"not json",
        ] {
            assert!(parse_sweep_spec(bad).is_err(), "{bad:?}");
        }
    }
}
