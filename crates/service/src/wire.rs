//! Wire protocol: length-prefixed, CRC-verified JSON frames and the job
//! codec.
//!
//! Every message — request or response — is one JSON document framed by
//! a 4-byte big-endian byte length and a 4-byte big-endian CRC32 of the
//! payload. Length prefixes beat line framing here because result
//! fragments embed arbitrary violation strings, and they make the read
//! loop trivially robust against partial reads. The CRC turns silent
//! mid-frame corruption (a flipped bit on a bad link, a fault-injection
//! proxy doing its job) into a detectable [`bad frame`](is_bad_frame)
//! that the daemon rejects with a structured error instead of feeding
//! garbage into the JSON parser or — worse — the result cache.
//!
//! ## Requests
//!
//! | `type`      | fields                         | response |
//! |-------------|--------------------------------|----------|
//! | `submit`    | `job`: canonical job document  | `accepted` \| `rejected` \| `error` |
//! | `status`    | `job_id`                       | `status` |
//! | `result`    | `job_id`, `wait` (bool)        | `result` \| `status` \| `error` |
//! | `cancel`    | `job_id`                       | `cancelled` |
//! | `stats`     | —                              | `stats` |
//! | `shutdown`  | —                              | `shutdown` |
//! | `heartbeat` | —                              | `heartbeat_ack` (`engine`, `queue_depth`, `running`, `draining`) |
//! | `drain`     | `resume` (bool, optional)      | `draining` |
//!
//! The federation additions: `heartbeat` is the coordinator's health
//! probe (cheap, lock-light, answered even while draining); `drain` is
//! a reversible operator signal — the daemon finishes what it has and
//! bounces new submits with `rejected reason:"draining"` until a
//! `drain` with `resume:true`. The `dtnfedd` coordinator serves the
//! same client-facing table plus `register` (`addr`: a worker joins the
//! federation) and `drain` (`addr`, `resume`: drain one worker through
//! the coordinator); its `stats` answer carries
//! `role:"coordinator"` and a per-shard `shards` array.
//!
//! `submit` answers `accepted` (`job_id`, `cached`) when the job is
//! cached, already known, or newly queued; `rejected` (`reason`,
//! `retry_after_ms`, `queue_depth`) is the queue-full backpressure
//! signal — the queue never grows without bound, clients are told when
//! to come back. `result` with `wait:true` blocks until the job leaves
//! the queue/worker pipeline; its `fragment` member is the daemon's
//! stored result document **verbatim** (it is always the last member, so
//! [`extract_fragment`] can recover the exact bytes), which is what
//! makes cache hits bit-identical to fresh computation.
//!
//! The job document itself is [`PointJob::to_canonical_json`]; the
//! daemon re-parses and re-renders it ([`job_from_value`] +
//! `to_canonical_json`), so the cache key never depends on client-side
//! formatting.

use crate::crc::crc32;
use crate::json::Value;
use dtn_epidemic::{ChurnMode, ChurnPlan, FaultPlan, GilbertElliott};
use dtn_experiments::jobs::PointJob;
use dtn_experiments::Mobility;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on a single frame. Large enough for any report fragment
/// (a 10 000-replication point is ~2 MB), small enough that a corrupt
/// or hostile length prefix cannot balloon memory.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of frame header: 4-byte payload length + 4-byte payload CRC32,
/// both big-endian.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Write one length-prefixed, CRC-framed message. Header and payload go
/// out in a single write: two small writes would trip the
/// Nagle/delayed-ACK interaction and cost ~100 ms per frame on loopback.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&crc32(payload.as_bytes()).to_be_bytes());
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

fn bad_frame(detail: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("bad_frame: {detail}"),
    )
}

/// True when `e` means the peer sent a structurally invalid frame
/// (oversized length, CRC mismatch, non-UTF-8 payload) rather than the
/// transport failing. The daemon answers these with a structured
/// `bad_frame` error before dropping the connection; transports errors
/// are just dropped.
pub fn is_bad_frame(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::InvalidData
}

/// True when `e` is a read/write deadline expiring (the slowloris
/// guard): both `WouldBlock` and `TimedOut` surface from socket
/// timeouts depending on platform.
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn decode_payload(header: [u8; FRAME_HEADER_BYTES], payload: Vec<u8>) -> std::io::Result<String> {
    let want_crc = u32::from_be_bytes(header[4..8].try_into().expect("4-byte slice"));
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(bad_frame(format!(
            "payload CRC {got_crc:08x} does not match header CRC {want_crc:08x}"
        )));
    }
    String::from_utf8(payload).map_err(bad_frame)
}

fn checked_len(header: [u8; FRAME_HEADER_BYTES]) -> std::io::Result<u32> {
    let len = u32::from_be_bytes(header[0..4].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_BYTES {
        return Err(bad_frame(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    Ok(len)
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary (the
/// peer closed the connection); errors on truncated frames, oversized
/// prefixes, or CRC mismatches (see [`is_bad_frame`]).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_BYTES {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    let len = checked_len(header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(header, payload).map(Some)
}

/// Read one frame off a socket under two deadlines: `idle` bounds the
/// wait for the frame's **first byte** (how long a silent connection may
/// be parked), and `frame_deadline` bounds first-byte-to-last-byte (the
/// slowloris guard — a peer trickling one byte per second can otherwise
/// pin a connection thread forever, since per-read timeouts reset on
/// every byte). Restores no particular timeout on return; callers own
/// the socket's timeout configuration.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    idle: Option<Duration>,
    frame_deadline: Option<Duration>,
) -> std::io::Result<Option<String>> {
    stream.set_read_timeout(idle)?;
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let mut filled = 0usize;
    let mut started: Option<Instant> = None;
    let arm = |stream: &TcpStream, started: Instant| -> std::io::Result<()> {
        let Some(budget) = frame_deadline else {
            return stream.set_read_timeout(None);
        };
        let remaining = budget
            .checked_sub(started.elapsed())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame deadline exceeded mid-frame",
                )
            })?;
        stream.set_read_timeout(Some(remaining))
    };
    while filled < FRAME_HEADER_BYTES {
        match stream.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => {
                filled += n;
                let t = *started.get_or_insert_with(Instant::now);
                arm(stream, t)?;
            }
        }
    }
    let len = checked_len(header)? as usize;
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    let started = started.unwrap_or_else(Instant::now);
    while got < len {
        match stream.read(&mut payload[got..])? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => {
                got += n;
                arm(stream, started)?;
            }
        }
    }
    decode_payload(header, payload).map(Some)
}

/// Read one frame's **raw encoded bytes** (header + payload) without
/// verifying the CRC or the payload encoding. This is the fault-
/// injection proxy's forwarding unit: the proxy must relay frames
/// byte-for-byte — including ones it deliberately corrupted — and let
/// the endpoints' CRC verification do its job.
pub fn read_raw_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_BYTES {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    let len = checked_len(header)? as usize;
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + len);
    frame.extend_from_slice(&header);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    frame.extend_from_slice(&payload);
    Ok(Some(frame))
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn hex_f64(v: &Value, key: &str) -> Result<f64, String> {
    let raw = v
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("field {key:?} must be a hex-bits string"))?;
    u64::from_str_radix(raw, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("field {key:?}: bad f64 bits {raw:?}: {e}"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be an unsigned integer"))
}

/// Decode a canonical job document (the `job` member of a `submit`
/// request) back into a [`PointJob`]. Inverse of
/// [`PointJob::to_canonical_json`]; the round trip is tested to be
/// exact, which the content-addressed cache relies on.
pub fn job_from_value(v: &Value) -> Result<PointJob, String> {
    let faults_v = field(v, "faults")?;
    let burst = match field(faults_v, "burst")? {
        Value::Null => None,
        b => Some(GilbertElliott {
            loss_good: hex_f64(b, "loss_good")?,
            loss_bad: hex_f64(b, "loss_bad")?,
            p_good_to_bad: hex_f64(b, "p_good_to_bad")?,
            p_bad_to_good: hex_f64(b, "p_bad_to_good")?,
        }),
    };
    let churn = match field(faults_v, "churn")? {
        Value::Null => None,
        c => Some(ChurnPlan {
            mean_up_secs: hex_f64(c, "mean_up_secs")?,
            mean_down_secs: hex_f64(c, "mean_down_secs")?,
            mode: match c.get("mode").and_then(Value::as_str) {
                Some("crash") => ChurnMode::Crash,
                Some("duty") => ChurnMode::DutyCycle,
                other => return Err(format!("bad churn mode {other:?}")),
            },
        }),
    };
    let point_timeout_secs = match field(v, "point_timeout_secs")? {
        Value::Null => None,
        t => Some(
            t.as_u64()
                .ok_or("point_timeout_secs must be null or an unsigned integer")?,
        ),
    };
    let job = PointJob {
        protocol: field(v, "protocol")?
            .as_str()
            .ok_or("protocol must be a string")?
            .to_string(),
        mobility: Mobility::parse(
            field(v, "mobility")?
                .as_str()
                .ok_or("mobility must be a string")?,
        )?,
        load: u64_field(v, "load")?
            .try_into()
            .map_err(|_| "load out of range")?,
        replications: u64_field(v, "replications")? as usize,
        root_seed: u64_field(v, "root_seed")?,
        trace_seed: u64_field(v, "trace_seed")?,
        buffer_capacity: u64_field(v, "buffer")? as usize,
        tx_time_secs: u64_field(v, "tx_time_secs")?,
        transfer_loss: hex_f64(v, "transfer_loss")?,
        faults: FaultPlan {
            truncation_prob: hex_f64(faults_v, "truncation_prob")?,
            ack_loss_prob: hex_f64(faults_v, "ack_loss_prob")?,
            burst,
            churn,
        },
        retries: u64_field(v, "retries")?
            .try_into()
            .map_err(|_| "retries out of range")?,
        point_timeout_secs,
        audit: field(v, "audit")?.as_bool().ok_or("audit must be a bool")?,
    };
    job.validate()?;
    Ok(job)
}

/// Recover the verbatim `fragment` document from a `result` response.
/// The daemon always renders `fragment` as the **last** member, so the
/// exact stored bytes are the span between the key and the closing
/// brace — no JSON re-rendering touches them.
pub fn extract_fragment(raw: &str) -> Option<&str> {
    let idx = raw.find(",\"fragment\":")?;
    let body = &raw[idx + ",\"fragment\":".len()..];
    body.strip_suffix('}')
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_experiments::jobs::exercise_fault_plan;
    use dtn_experiments::SweepConfig;

    fn jobs() -> Vec<PointJob> {
        let cfg = SweepConfig::default();
        let plain = PointJob::from_sweep("pure", Mobility::Trace, 10, &cfg);
        let mut faulty = PointJob::from_sweep("pq=0.3,0.7", Mobility::Interval(2000), 25, &cfg);
        faulty.faults = exercise_fault_plan();
        faulty.transfer_loss = 0.1;
        faulty.point_timeout_secs = Some(30);
        faulty.audit = true;
        faulty.root_seed = u64::MAX;
        vec![plain, faulty]
    }

    #[test]
    fn job_codec_round_trips_exactly() {
        for job in jobs() {
            let doc = job.to_canonical_json();
            let back = job_from_value(&Value::parse(&doc).unwrap()).unwrap();
            assert_eq!(back, job);
            assert_eq!(back.to_canonical_json(), doc, "re-render must be stable");
        }
    }

    #[test]
    fn job_decode_rejects_invalid_jobs() {
        let cfg = SweepConfig::default();
        let mut bad = PointJob::from_sweep("pure", Mobility::Trace, 10, &cfg);
        bad.load = 0;
        let doc = bad.to_canonical_json();
        assert!(job_from_value(&Value::parse(&doc).unwrap()).is_err());
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"stats\"}").unwrap();
        write_frame(&mut buf, "second ☃ frame").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"type\":\"stats\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "second ☃ frame");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        let mut huge = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 4]); // CRC half of the header
        let err = read_frame(&mut &huge[..]).unwrap_err();
        assert!(is_bad_frame(&err), "oversize is a bad frame: {err}");
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err(), "truncated payload");
        let partial = [0u8, 0];
        assert!(read_frame(&mut &partial[..]).is_err(), "truncated prefix");
    }

    #[test]
    fn corrupted_payload_bytes_are_rejected_by_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"stats\"}").unwrap();
        for i in FRAME_HEADER_BYTES..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x20;
            let err = read_frame(&mut &copy[..]).unwrap_err();
            assert!(
                is_bad_frame(&err),
                "flipping payload byte {i} must trip the CRC, got {err}"
            );
        }
        // A corrupted CRC field itself is equally fatal.
        let mut copy = buf.clone();
        copy[5] ^= 0x01;
        assert!(is_bad_frame(&read_frame(&mut &copy[..]).unwrap_err()));
    }

    #[test]
    fn raw_frames_round_trip_verbatim_even_when_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload").unwrap();
        buf[FRAME_HEADER_BYTES] ^= 0xFF; // corrupt the first payload byte
        let mut r = &buf[..];
        let raw = read_raw_frame(&mut r).unwrap().unwrap();
        assert_eq!(raw, buf, "the proxy's reader must not drop corrupt frames");
        assert_eq!(read_raw_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn fragment_extraction_is_verbatim() {
        let fragment = "{\"attempts\":[1],\"slow\":0,\"runs\":[[1]],\"violations\":[]}";
        let response = format!(
            "{{\"type\":\"result\",\"job_id\":\"ab\",\"cached\":true,\"fragment\":{fragment}}}"
        );
        assert_eq!(extract_fragment(&response), Some(fragment));
        assert_eq!(extract_fragment("{\"type\":\"error\"}"), None);
    }
}
