//! The `dtnsimd` daemon: accept loop, bounded job queue, worker pool,
//! and request dispatch.
//!
//! Threading model: one accept thread, one thread per live connection,
//! and a fixed worker pool. Connections only touch shared state under
//! two mutexes — the queue (with its "work available" condvar) and the
//! job table (with its "job finished" condvar) — and workers never hold
//! both at once, so the lock order is trivially acyclic.
//!
//! Backpressure is explicit: the queue is a bounded [`VecDeque`], and a
//! submit that would exceed the bound is answered with `rejected` +
//! `retry_after_ms` instead of being buffered. Nothing in the daemon
//! grows with the number of *offered* jobs, only with the number of
//! *admitted* ones.
//!
//! Shutdown drains: workers finish every admitted job before exiting,
//! result waiters are woken as those jobs land, and the cache index is
//! persisted last — so a client that saw `accepted` can always collect
//! its result from the same daemon incarnation.

use crate::cache::{job_key, JournalConfig, ResultStore, ENGINE_VERSION};
use crate::cron::{Cron, CronBuilder};
use crate::janitor::{Janitor, JanitorConfig};
use crate::json::{escape, Value};
use crate::wire::{is_bad_frame, job_from_value, read_frame_deadline, write_frame};
use dtn_experiments::jobs::{PointJob, RunOutcome};
use dtn_experiments::TraceCache;
use dtn_sim::telemetry::{
    self, AtomicHistogram, Clock, Counter, Gauge, HistogramSnapshot, MonotonicClock, Span,
};
use dtn_sim::Threads;
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Maximum number of queued (admitted but not yet running) jobs.
    pub queue_capacity: usize,
    /// Worker threads. `0` is allowed — jobs queue but never run, which
    /// the backpressure tests use to fill the queue deterministically.
    pub workers: usize,
    /// Thread policy for the replications *inside* one job.
    pub job_threads: Threads,
    /// Result-cache index file; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Hint returned with `rejected` responses.
    pub retry_after_ms: u64,
    /// Log a stderr line whenever one job's simulation phase exceeds
    /// this many wall seconds (`None` disables the slow-job log).
    pub slow_job_secs: Option<f64>,
    /// Journal the result cache after this many unflushed inserts.
    pub journal_flush_entries: usize,
    /// …or after the oldest unflushed insert is this old, whichever
    /// comes first. A crash loses at most one such flush window.
    pub journal_flush_secs: f64,
    /// Slowloris guard: once a request frame's first byte arrives, the
    /// whole frame must complete within this budget (`None` disables).
    pub frame_deadline_ms: Option<u64>,
    /// How long a connection may sit silent between requests before the
    /// daemon hangs up (`None` parks connections forever).
    pub idle_timeout_secs: Option<u64>,
    /// Socket write timeout for responses — a peer that stops reading
    /// cannot pin a connection thread (`None` disables).
    pub write_timeout_secs: Option<u64>,
    /// Overload shedding: a job that waited in the queue longer than
    /// this is failed at claim time instead of run — under sustained
    /// overload, late answers are worse than honest sheds (`None`
    /// disables; the default, since shedding trades completeness for
    /// latency and only an operator can make that call).
    pub queue_deadline_ms: Option<u64>,
    /// Janitor TTL: evict cached results older than this many seconds
    /// (`None` disables age-based expiry).
    pub cache_ttl_secs: Option<f64>,
    /// Janitor byte budget: evict least-recently-used cached results
    /// while the resident set exceeds this (`None` disables).
    pub cache_max_bytes: Option<u64>,
    /// Nominal period between janitor sweeps (early-jittered by the
    /// cron scheduler; irrelevant unless a TTL or budget is set).
    pub janitor_interval_secs: f64,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 64,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            job_threads: Threads::Auto,
            cache_path: None,
            retry_after_ms: 250,
            slow_job_secs: None,
            journal_flush_entries: 8,
            journal_flush_secs: 1.0,
            frame_deadline_ms: Some(10_000),
            idle_timeout_secs: Some(300),
            write_timeout_secs: Some(30),
            queue_deadline_ms: None,
            cache_ttl_secs: None,
            cache_max_bytes: None,
            janitor_interval_secs: 5.0,
        }
    }
}

/// Telemetry handles for the daemon's job lifecycle, registered in the
/// process-global [`telemetry::MetricsRegistry`]. Registration dedups
/// on `(name, labels)`, so repeated [`Daemon::spawn`]s in one process
/// (tests, benches) share the same monotone series.
pub(crate) struct DaemonMetrics {
    pub connections: Counter,
    pub frame_decode: Arc<AtomicHistogram>,
    pub request: Arc<AtomicHistogram>,
    pub write: Arc<AtomicHistogram>,
    pub queue_wait: Arc<AtomicHistogram>,
    pub cache_probe: Arc<AtomicHistogram>,
    pub sim: Arc<AtomicHistogram>,
    pub serialize: Arc<AtomicHistogram>,
    pub queue_depth: Gauge,
    pub inflight: Gauge,
    pub jobs_completed: Counter,
    pub jobs_cached: Counter,
    pub jobs_failed_error: Counter,
    pub jobs_failed_panic: Counter,
    pub jobs_cancelled: Counter,
    pub rejected_queue_full: Counter,
    pub rejected_shutdown: Counter,
    pub reps_panicked: Counter,
    pub reps_timed_out: Counter,
    pub rejected_draining: Counter,
    pub heartbeats: Counter,
    pub cache_hit: Counter,
    pub cache_miss: Counter,
    pub busy_nanos: Counter,
    pub bad_frames: Counter,
    pub shed_queue_deadline: Counter,
    pub journal_salvaged: Counter,
    pub journal_discarded: Counter,
    pub stale_tmp_removed: Counter,
}

impl DaemonMetrics {
    fn register() -> DaemonMetrics {
        let reg = telemetry::global();
        let hist = |name, help| reg.histogram(name, help, &[]);
        let jobs = |outcome| {
            reg.counter(
                "dtnsimd_jobs_total",
                "terminal job outcomes by kind",
                outcome,
            )
        };
        DaemonMetrics {
            connections: reg.counter("dtnsimd_connections_total", "accepted TCP connections", &[]),
            frame_decode: hist("dtnsimd_frame_decode_seconds", "request frame JSON parse"),
            request: hist("dtnsimd_request_seconds", "request dispatch + handling"),
            write: hist("dtnsimd_write_seconds", "response frame write"),
            queue_wait: hist("dtnsimd_queue_wait_seconds", "admit-to-claim queue wait"),
            cache_probe: hist("dtnsimd_cache_probe_seconds", "result-store lookup"),
            sim: hist("dtnsimd_sim_seconds", "worker simulation (PointJob::run)"),
            serialize: hist("dtnsimd_serialize_seconds", "result fragment rendering"),
            queue_depth: reg.gauge("dtnsimd_queue_depth", "jobs admitted but not claimed", &[]),
            inflight: reg.gauge("dtnsimd_inflight_jobs", "jobs currently running", &[]),
            jobs_completed: jobs(&[("outcome", "completed")]),
            jobs_cached: jobs(&[("outcome", "cached")]),
            jobs_failed_error: jobs(&[("outcome", "failed_error")]),
            jobs_failed_panic: jobs(&[("outcome", "failed_panic")]),
            jobs_cancelled: jobs(&[("outcome", "cancelled")]),
            rejected_queue_full: reg.counter(
                "dtnsimd_rejections_total",
                "submissions turned away at the door",
                &[("reason", "queue_full")],
            ),
            rejected_shutdown: reg.counter(
                "dtnsimd_rejections_total",
                "submissions turned away at the door",
                &[("reason", "shutting_down")],
            ),
            reps_panicked: reg.counter(
                "dtnsimd_replications_total",
                "supervised replication outcomes inside completed jobs",
                &[("outcome", "panicked")],
            ),
            reps_timed_out: reg.counter(
                "dtnsimd_replications_total",
                "supervised replication outcomes inside completed jobs",
                &[("outcome", "timed_out")],
            ),
            rejected_draining: reg.counter(
                "dtnsimd_rejections_total",
                "submissions turned away at the door",
                &[("reason", "draining")],
            ),
            heartbeats: reg.counter(
                "dtnsimd_heartbeats_total",
                "heartbeat probes answered (federation health checks)",
                &[],
            ),
            cache_hit: reg.counter(
                "dtnsimd_cache_total",
                "submission-time result-cache probes",
                &[("result", "hit")],
            ),
            cache_miss: reg.counter(
                "dtnsimd_cache_total",
                "submission-time result-cache probes",
                &[("result", "miss")],
            ),
            busy_nanos: reg.counter(
                "dtnsimd_worker_busy_nanos_total",
                "wall nanoseconds workers spent running jobs",
                &[],
            ),
            bad_frames: reg.counter(
                "dtnsimd_bad_frames_total",
                "request frames rejected by length/CRC/UTF-8 validation",
                &[],
            ),
            shed_queue_deadline: reg.counter(
                "dtnsimd_shed_total",
                "jobs shed at claim time for exceeding the queue-wait deadline",
                &[("reason", "queue_deadline")],
            ),
            journal_salvaged: reg.counter(
                "dtnsimd_journal_records_total",
                "cache-journal records handled by startup recovery",
                &[("outcome", "salvaged")],
            ),
            journal_discarded: reg.counter(
                "dtnsimd_journal_records_total",
                "cache-journal records handled by startup recovery",
                &[("outcome", "discarded")],
            ),
            stale_tmp_removed: reg.counter(
                "dtnsimd_stale_tmp_removed_total",
                "orphaned cache .tmp files cleaned up at startup",
                &[],
            ),
        }
    }
}

/// Lifecycle of an admitted job.
#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running,
    Done { cached: bool },
    Failed(String),
    Cancelled,
}

struct JobEntry {
    job: PointJob,
    state: JobState,
    /// Admission timestamp (telemetry epoch nanos) — the queue-wait
    /// histogram measures admit → worker-claim from this.
    enqueued_nanos: u64,
}

struct Shared {
    config: DaemonConfig,
    local_addr: std::net::SocketAddr,
    store: Arc<ResultStore>,
    trace_cache: Arc<TraceCache>,
    queue: Mutex<VecDeque<String>>,
    work_cv: Condvar,
    jobs: Mutex<HashMap<String, JobEntry>>,
    done_cv: Condvar,
    shutting_down: AtomicBool,
    /// Operator drain (`drain` request): finish what is admitted, turn
    /// new submits away with a retriable `draining` rejection. Unlike
    /// shutdown this is reversible (`drain` with `resume:true`) and
    /// keeps the daemon serving results — it is how a worker leaves a
    /// federation gracefully.
    draining: AtomicBool,
    started: Instant,
    metrics: DaemonMetrics,
    submitted: AtomicU64,
    completed: AtomicU64,
    // `failed` folds errors + panics (the legacy wire counter);
    // `rejected` folds queue_full + shutting_down. The split atomics
    // below are what the extended stats reply distinguishes.
    failed: AtomicU64,
    failed_errors: AtomicU64,
    failed_panics: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    replication_panics: AtomicU64,
    replication_timeouts: AtomicU64,
    busy_nanos: AtomicU64,
    running: AtomicUsize,
    bad_frames: AtomicU64,
    shed_queue_deadline: AtomicU64,
}

/// A running daemon: the accept loop and worker pool, plus the handle
/// needed to join them and persist the cache on the way out.
pub struct Daemon {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    cron: Option<Cron>,
}

impl Daemon {
    /// Bind, load the cache index, and start the accept loop and worker
    /// pool. Returns as soon as the listener is live.
    pub fn spawn(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let store = Arc::new(match &config.cache_path {
            Some(path) => ResultStore::open_with(
                path,
                JournalConfig {
                    flush_every: config.journal_flush_entries.max(1),
                    flush_interval: Duration::from_secs_f64(config.journal_flush_secs.max(0.01)),
                },
            ),
            None => ResultStore::in_memory(),
        });
        let metrics = DaemonMetrics::register();
        // Surface what journal recovery found — the crash story must be
        // auditable from telemetry alone.
        let recovery = store.recovery();
        metrics.journal_salvaged.add(recovery.salvaged);
        metrics.journal_discarded.add(recovery.discarded);
        metrics.stale_tmp_removed.add(recovery.stale_tmp_removed);
        if recovery.salvaged > 0 || recovery.discarded > 0 || recovery.stale_tmp_removed > 0 {
            eprintln!(
                "dtnsimd: journal recovery: {} salvaged, {} discarded, {} stale tmp removed",
                recovery.salvaged, recovery.discarded, recovery.stale_tmp_removed
            );
        }
        let shared = Arc::new(Shared {
            config: config.clone(),
            local_addr,
            store,
            trace_cache: Arc::new(TraceCache::new()),
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            metrics,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            failed_errors: AtomicU64::new(0),
            failed_panics: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            replication_panics: AtomicU64::new(0),
            replication_timeouts: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            running: AtomicUsize::new(0),
            bad_frames: AtomicU64::new(0),
            shed_queue_deadline: AtomicU64::new(0),
        });
        register_derived_gauges(&shared);

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dtnsimd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dtnsimd-accept".to_string())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn accept loop")
        };

        // All periodic chores ride one jittered cron thread: the
        // journal's time-based flush window (which must hold even when
        // no inserts arrive to trigger it lazily), the cache janitor,
        // and the stale-`.tmp` sweep.
        let janitor = Janitor::new(
            Arc::clone(&shared.store),
            JanitorConfig {
                ttl: config.cache_ttl_secs.map(Duration::from_secs_f64),
                max_bytes: config.cache_max_bytes,
            },
            "dtnsimd",
        );
        let flush_tick =
            Duration::from_secs_f64((config.journal_flush_secs / 2.0).clamp(0.05, 1.0));
        let flush_store = Arc::clone(&shared.store);
        let mut cron = CronBuilder::new(0).every_final("journal-flush", flush_tick, move || {
            let _ = flush_store.flush_journal(false);
        });
        if janitor.config().is_active() {
            cron = cron.every(
                "janitor",
                Duration::from_secs_f64(config.janitor_interval_secs.max(0.05)),
                move || {
                    janitor.sweep();
                },
            );
            let tmp_shared = Arc::clone(&shared);
            cron = cron.every("stale-tmp", Duration::from_secs(60), move || {
                let removed = tmp_shared.store.sweep_stale_tmp();
                tmp_shared.metrics.stale_tmp_removed.add(removed);
            });
        }
        let cron = cron.spawn("dtnsimd-cron").expect("spawn cron scheduler");

        Ok(Daemon {
            shared,
            local_addr,
            accept: Some(accept),
            workers,
            cron: Some(cron),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Wait for shutdown: accept loop gone, workers drained, cache index
    /// persisted. Returns the persist result.
    pub fn join(mut self) -> std::io::Result<()> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop only exits on shutdown, so the flag is set and
        // workers will drain the queue and stop.
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(cron) = self.cron.take() {
            cron.shutdown();
        }
        self.shared.store.persist()
    }

    /// Request shutdown in-process (used by tests and benches that own
    /// the daemon directly rather than going through a socket).
    pub fn request_shutdown(&self) {
        begin_shutdown(&self.shared);
    }
}

/// Trip the shutdown flag, wake the workers so they drain and exit, and
/// poke the accept loop out of its blocking `accept()`.
fn begin_shutdown(shared: &Arc<Shared>) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    shared.work_cv.notify_all();
    let _ = TcpStream::connect(shared.local_addr);
}

/// Install the scrape-time hook computing derived gauges: worker
/// utilization (busy time / workers × uptime) and resident cache
/// entries. Registered under one stable name, so the *latest* daemon
/// spawned in this process owns the series.
fn register_derived_gauges(shared: &Arc<Shared>) {
    let reg = telemetry::global();
    let workers_g = reg.gauge("dtnsimd_workers", "worker pool size", &[]);
    let capacity_g = reg.gauge("dtnsimd_queue_capacity", "job queue bound", &[]);
    let util_g = reg.gauge(
        "dtnsimd_worker_utilization",
        "busy fraction of the worker pool since daemon start",
        &[],
    );
    let entries_g = reg.gauge(
        "dtnsimd_cache_entries",
        "resident result-cache entries",
        &[],
    );
    let flushes_g = reg.gauge(
        "dtnsimd_journal_flushes",
        "completed cache-journal flushes",
        &[],
    );
    let journal_errors_g = reg.gauge(
        "dtnsimd_journal_errors",
        "cache-journal write failures survived",
        &[],
    );
    workers_g.set(shared.config.workers as f64);
    capacity_g.set(shared.config.queue_capacity as f64);
    let hook_shared = Arc::clone(shared);
    reg.register_refresh("dtnsimd_derived_gauges", move || {
        let busy = hook_shared.busy_nanos.load(Ordering::Relaxed) as f64;
        let denom =
            hook_shared.started.elapsed().as_nanos() as f64 * hook_shared.config.workers as f64;
        util_g.set(if denom > 0.0 {
            (busy / denom).min(1.0)
        } else {
            0.0
        });
        entries_g.set(hook_shared.store.stats().2 as f64);
        flushes_g.set(hook_shared.store.journal_flushes() as f64);
        journal_errors_g.set(hook_shared.store.journal_errors() as f64);
    });
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.connections.inc();
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("dtnsimd-conn".to_string())
            .spawn(move || serve_connection(stream, &shared));
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Request/response with small frames: Nagle only adds latency.
    let _ = stream.set_nodelay(true);
    // A peer that stops *reading* must not pin this thread either.
    let _ = stream.set_write_timeout(shared.config.write_timeout_secs.map(Duration::from_secs));
    let idle = shared.config.idle_timeout_secs.map(Duration::from_secs);
    let frame_deadline = shared.config.frame_deadline_ms.map(Duration::from_millis);
    loop {
        let raw = match read_frame_deadline(&mut stream, idle, frame_deadline) {
            Ok(Some(raw)) => raw,
            Ok(None) => return,
            Err(e) if is_bad_frame(&e) => {
                // Structured rejection, then hang up: framing is gone,
                // so nothing later on this connection can be trusted.
                shared.bad_frames.fetch_add(1, Ordering::Relaxed);
                shared.metrics.bad_frames.inc();
                let reject = format!(
                    "{{\"type\":\"error\",\"code\":\"bad_frame\",\"message\":\"{}\"}}",
                    escape(&e.to_string())
                );
                let _ = write_frame(&mut stream, &reject);
                return;
            }
            // Idle/slowloris timeouts and severed sockets: hang up.
            Err(_) => return,
        };
        let parsed = {
            let _t = Span::<MonotonicClock>::start(&shared.metrics.frame_decode);
            Value::parse(&raw)
        };
        let response = match parsed {
            Ok(request) => {
                if request.get("type").and_then(Value::as_str) == Some("shutdown") {
                    // Order matters: the ack must reach the socket before
                    // the flag is tripped. Once the accept loop breaks,
                    // `join` can drain and exit the process, and an ack
                    // still unwritten at that point becomes an EOF for
                    // the very client that asked for the shutdown.
                    let ack = shutdown_ack(shared);
                    if write_frame(&mut stream, &ack).is_err() {
                        return;
                    }
                    begin_shutdown(shared);
                    continue;
                }
                let _t = Span::<MonotonicClock>::start(&shared.metrics.request);
                handle_request(shared, &request)
            }
            Err(e) => error_response(&format!("bad request: {e}")),
        };
        let _t = Span::<MonotonicClock>::start(&shared.metrics.write);
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn error_response(message: &str) -> String {
    format!("{{\"type\":\"error\",\"message\":\"{}\"}}", escape(message))
}

fn state_name(state: &JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Running => "running",
        JobState::Done { .. } => "done",
        JobState::Failed(_) => "failed",
        JobState::Cancelled => "cancelled",
    }
}

fn handle_request(shared: &Arc<Shared>, request: &Value) -> String {
    match request.get("type").and_then(Value::as_str) {
        Some("submit") => handle_submit(shared, request),
        Some("status") => handle_status(shared, request),
        Some("result") => handle_result(shared, request),
        Some("cancel") => handle_cancel(shared, request),
        Some("stats") => handle_stats(shared),
        Some("heartbeat") => handle_heartbeat(shared),
        Some("drain") => handle_drain(shared, request),
        // "shutdown" is intercepted in `serve_connection` so its ack is
        // written before the flag can let the process exit.
        other => error_response(&format!("unknown request type {other:?}")),
    }
}

fn job_id_of(request: &Value) -> Result<&str, String> {
    request
        .get("job_id")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing job_id".to_string())
}

fn handle_submit(shared: &Arc<Shared>, request: &Value) -> String {
    let Some(job_doc) = request.get("job") else {
        return error_response("submit without a job document");
    };
    let job = match job_from_value(job_doc) {
        Ok(job) => job,
        Err(e) => return error_response(&format!("invalid job: {e}")),
    };
    // Key the daemon-side re-rendering, never the client's bytes: two
    // clients formatting the same job differently must collide.
    let key = job_key(&job.to_canonical_json());

    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        shared.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
        shared.metrics.rejected_shutdown.inc();
        return format!(
            "{{\"type\":\"rejected\",\"reason\":\"shutting_down\",\
             \"retry_after_ms\":{},\"queue_depth\":0}}",
            shared.config.retry_after_ms
        );
    }
    if shared.draining.load(Ordering::SeqCst) {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        shared.metrics.rejected_draining.inc();
        let queue_depth = shared.queue.lock().expect("queue poisoned").len();
        return format!(
            "{{\"type\":\"rejected\",\"reason\":\"draining\",\
             \"retry_after_ms\":{},\"queue_depth\":{queue_depth}}}",
            retry_after_hint_ms(shared, queue_depth)
        );
    }

    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let hit = {
        let _t = Span::<MonotonicClock>::start(&shared.metrics.cache_probe);
        shared.store.lookup(&key).is_some()
    };
    if hit {
        shared.metrics.cache_hit.inc();
        // Content-addressed hit: the result exists, no work is queued.
        // Overwriting a previous terminal state is fine — the stored
        // fragment is the result either way, and `cached: true` tells
        // the client this submission cost nothing.
        jobs.entry(key.clone())
            .and_modify(|e| e.state = JobState::Done { cached: true })
            .or_insert(JobEntry {
                job,
                state: JobState::Done { cached: true },
                enqueued_nanos: 0,
            });
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        shared.metrics.jobs_cached.inc();
        return accepted(&key, true);
    }
    shared.metrics.cache_miss.inc();
    if let Some(entry) = jobs.get(&key) {
        match entry.state {
            // Already admitted (or already resolved): piggyback.
            JobState::Queued | JobState::Running | JobState::Done { .. } => {
                shared.submitted.fetch_add(1, Ordering::Relaxed);
                return accepted(&key, false);
            }
            // A cancelled or failed job may be resubmitted; fall through
            // to re-queue it.
            JobState::Cancelled | JobState::Failed(_) => {}
        }
    }

    let mut queue = shared.queue.lock().expect("queue poisoned");
    if queue.len() >= shared.config.queue_capacity {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
        shared.metrics.rejected_queue_full.inc();
        return format!(
            "{{\"type\":\"rejected\",\"reason\":\"queue_full\",\
             \"retry_after_ms\":{},\"queue_depth\":{}}}",
            retry_after_hint_ms(shared, queue.len()),
            queue.len()
        );
    }
    queue.push_back(key.clone());
    shared.metrics.queue_depth.set(queue.len() as f64);
    drop(queue);
    jobs.insert(
        key.clone(),
        JobEntry {
            job,
            state: JobState::Queued,
            enqueued_nanos: MonotonicClock::now_nanos(),
        },
    );
    drop(jobs);
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work_cv.notify_one();
    accepted(&key, false)
}

fn accepted(key: &str, cached: bool) -> String {
    format!("{{\"type\":\"accepted\",\"job_id\":\"{key}\",\"cached\":{cached}}}")
}

/// Ceiling on the computed backpressure hint — a pathological backlog
/// estimate must not tell clients to go away for minutes.
const MAX_RETRY_AFTER_MS: u64 = 30_000;

/// The `retry_after_ms` hint for a rejection: proportional to the
/// current backlog — queue depth × observed mean simulation time,
/// spread over the worker pool — instead of a constant. Before any job
/// has run (no mean yet) the configured constant is the hint; it also
/// serves as the floor, and [`MAX_RETRY_AFTER_MS`] caps the estimate.
/// Clients treat the hint as a *floor* on their own jittered backoff
/// (`RetryPolicy::backoff`), so an estimate that proves too short just
/// re-rejects with an updated hint.
fn retry_after_hint_ms(shared: &Shared, queue_depth: usize) -> u64 {
    let base = shared.config.retry_after_ms;
    let snap = shared.metrics.sim.snapshot();
    if snap.count == 0 {
        return base;
    }
    let workers = shared.config.workers.max(1) as f64;
    let backlog_ms = (queue_depth as f64 * snap.mean() * 1000.0 / workers).round() as u64;
    backlog_ms.clamp(base, MAX_RETRY_AFTER_MS.max(base))
}

/// Answer a federation health probe. Cheap by design — no locks beyond
/// the queue length — because the coordinator sends one per shard per
/// heartbeat interval.
fn handle_heartbeat(shared: &Arc<Shared>) -> String {
    shared.metrics.heartbeats.inc();
    let queue_depth = shared.queue.lock().expect("queue poisoned").len();
    format!(
        "{{\"type\":\"heartbeat_ack\",\"engine\":\"{}\",\"queue_depth\":{queue_depth},\
         \"running\":{},\"draining\":{}}}",
        escape(ENGINE_VERSION),
        shared.running.load(Ordering::Relaxed),
        shared.draining.load(Ordering::SeqCst),
    )
}

/// Enter (or with `resume:true` leave) operator drain: admitted jobs
/// finish and stay collectable, new submits bounce with a retriable
/// `draining` rejection, and the next `heartbeat_ack` tells the
/// coordinator to stop routing here.
fn handle_drain(shared: &Arc<Shared>, request: &Value) -> String {
    let resume = request
        .get("resume")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    shared.draining.store(!resume, Ordering::SeqCst);
    let queued = {
        let jobs = shared.jobs.lock().expect("jobs poisoned");
        jobs.values()
            .filter(|e| matches!(e.state, JobState::Queued | JobState::Running))
            .count()
    };
    format!(
        "{{\"type\":\"draining\",\"draining\":{},\"queued\":{queued}}}",
        !resume
    )
}

fn handle_status(shared: &Arc<Shared>, request: &Value) -> String {
    let id = match job_id_of(request) {
        Ok(id) => id,
        Err(e) => return error_response(&e),
    };
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    match jobs.get(id) {
        None => format!("{{\"type\":\"status\",\"job_id\":\"{id}\",\"state\":\"unknown\"}}"),
        Some(entry) => match &entry.state {
            JobState::Failed(message) => format!(
                "{{\"type\":\"status\",\"job_id\":\"{id}\",\"state\":\"failed\",\
                 \"error\":\"{}\"}}",
                escape(message)
            ),
            state => format!(
                "{{\"type\":\"status\",\"job_id\":\"{id}\",\"state\":\"{}\"}}",
                state_name(state)
            ),
        },
    }
}

fn handle_result(shared: &Arc<Shared>, request: &Value) -> String {
    let id = match job_id_of(request) {
        Ok(id) => id.to_string(),
        Err(e) => return error_response(&e),
    };
    let wait = request
        .get("wait")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    loop {
        let Some(entry) = jobs.get(&id) else {
            // Structured code: a client holding a stale ticket (the
            // daemon restarted and lost its job table) must be able to
            // tell this apart from a real rejection — it heals by
            // resubmitting, which is idempotent.
            return format!(
                "{{\"type\":\"error\",\"code\":\"unknown_job\",\"message\":\"unknown job {}\"}}",
                escape(&id)
            );
        };
        match &entry.state {
            JobState::Done { cached } => {
                let cached = *cached;
                drop(jobs);
                // Counter-neutral fetch: hit/miss stats describe submits.
                let Some(fragment) = shared.store.fragment(&id) else {
                    return error_response(&format!("result for {id} missing from store"));
                };
                // `fragment` MUST stay the last member — clients slice
                // the verbatim bytes out by position (extract_fragment).
                return format!(
                    "{{\"type\":\"result\",\"job_id\":\"{id}\",\"cached\":{cached},\
                     \"fragment\":{fragment}}}"
                );
            }
            JobState::Failed(message) => {
                return error_response(&format!("job {id} failed: {message}"))
            }
            JobState::Cancelled => return error_response(&format!("job {id} was cancelled")),
            JobState::Queued | JobState::Running if !wait => {
                return format!(
                    "{{\"type\":\"status\",\"job_id\":\"{id}\",\"state\":\"{}\"}}",
                    state_name(&entry.state)
                );
            }
            JobState::Queued | JobState::Running => {
                jobs = shared.done_cv.wait(jobs).expect("jobs poisoned");
            }
        }
    }
}

fn handle_cancel(shared: &Arc<Shared>, request: &Value) -> String {
    let id = match job_id_of(request) {
        Ok(id) => id,
        Err(e) => return error_response(&e),
    };
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let cancelled = match jobs.get_mut(id) {
        // Only queued jobs can be cancelled; the entry stays in the
        // table and the worker discards the id when it pops it.
        Some(entry) if matches!(entry.state, JobState::Queued) => {
            entry.state = JobState::Cancelled;
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.metrics.jobs_cancelled.inc();
            shared.done_cv.notify_all();
            true
        }
        _ => false,
    };
    format!("{{\"type\":\"cancelled\",\"job_id\":\"{id}\",\"cancelled\":{cancelled}}}")
}

/// One histogram snapshot as a JSON object (count/sum/mean/quantiles).
/// Floats use Rust's shortest round-trip rendering — the stats reply is
/// informational, not byte-identity-constrained (the `--canonical`
/// client mode masks the whole telemetry object).
fn snapshot_json(snap: &HistogramSnapshot) -> String {
    let q = |q: f64| snap.quantile(q).unwrap_or(0.0);
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        snap.count,
        snap.sum,
        snap.mean(),
        q(0.5),
        q(0.9),
        q(0.99),
    )
}

fn handle_stats(shared: &Arc<Shared>) -> String {
    let (hits, misses, entries) = shared.store.stats();
    let queue_depth = shared.queue.lock().expect("queue poisoned").len();
    let uptime = shared.started.elapsed().as_secs_f64();
    let busy_secs = shared.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
    let utilization = if shared.config.workers > 0 && uptime > 0.0 {
        (busy_secs / (uptime * shared.config.workers as f64)).min(1.0)
    } else {
        0.0
    };
    let m = &shared.metrics;
    // Legacy keys first, in their original order, so pre-telemetry
    // clients parsing positionally or by key keep working; the split
    // counters and histogram snapshots extend the object after them.
    format!(
        "{{\"type\":\"stats\",\"engine\":\"{}\",\"workers\":{},\
         \"queue_depth\":{queue_depth},\"queue_capacity\":{},\
         \"running\":{},\"submitted\":{},\"completed\":{},\"failed\":{},\
         \"rejected\":{},\"cache_hits\":{hits},\"cache_misses\":{misses},\
         \"cache_entries\":{entries},\
         \"failed_errors\":{},\"failed_panics\":{},\"cancelled\":{},\
         \"rejected_queue_full\":{},\"rejected_shutdown\":{},\
         \"replication_panics\":{},\"replication_timeouts\":{},\
         \"bad_frames\":{},\"shed_queue_deadline\":{},\
         \"journal_salvaged\":{},\"journal_discarded\":{},\
         \"journal_flushes\":{},\"journal_errors\":{},\
         \"stale_tmp_removed\":{},\
         \"cache_expired\":{},\"cache_evictions\":{},\"cache_bytes\":{},\
         \"uptime_secs\":{uptime},\"worker_busy_secs\":{busy_secs},\
         \"worker_utilization\":{utilization},\
         \"latency\":{{\"frame_decode\":{},\"request\":{},\"queue_wait\":{},\
         \"cache_probe\":{},\"sim\":{},\"serialize\":{},\"write\":{}}}}}",
        escape(ENGINE_VERSION),
        shared.config.workers,
        shared.config.queue_capacity,
        shared.running.load(Ordering::Relaxed),
        shared.submitted.load(Ordering::Relaxed),
        shared.completed.load(Ordering::Relaxed),
        shared.failed.load(Ordering::Relaxed),
        shared.rejected.load(Ordering::Relaxed),
        shared.failed_errors.load(Ordering::Relaxed),
        shared.failed_panics.load(Ordering::Relaxed),
        shared.cancelled.load(Ordering::Relaxed),
        shared.rejected_queue_full.load(Ordering::Relaxed),
        shared.rejected_shutdown.load(Ordering::Relaxed),
        shared.replication_panics.load(Ordering::Relaxed),
        shared.replication_timeouts.load(Ordering::Relaxed),
        shared.bad_frames.load(Ordering::Relaxed),
        shared.shed_queue_deadline.load(Ordering::Relaxed),
        shared.store.recovery().salvaged,
        shared.store.recovery().discarded,
        shared.store.journal_flushes(),
        shared.store.journal_errors(),
        shared.store.recovery().stale_tmp_removed,
        shared.store.eviction_counters().0,
        shared.store.eviction_counters().1,
        shared.store.cache_bytes(),
        snapshot_json(&m.frame_decode.snapshot()),
        snapshot_json(&m.request.snapshot()),
        snapshot_json(&m.queue_wait.snapshot()),
        snapshot_json(&m.cache_probe.snapshot()),
        snapshot_json(&m.sim.snapshot()),
        snapshot_json(&m.serialize.snapshot()),
        snapshot_json(&m.write.snapshot()),
    )
}

fn shutdown_ack(shared: &Arc<Shared>) -> String {
    let draining = {
        let jobs = shared.jobs.lock().expect("jobs poisoned");
        jobs.values()
            .filter(|e| matches!(e.state, JobState::Queued | JobState::Running))
            .count()
    };
    format!("{{\"type\":\"shutdown\",\"draining\":{draining}}}")
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let key = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(key) = queue.pop_front() {
                    break key;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.work_cv.wait(queue).expect("queue poisoned");
            }
        };

        {
            let queue = shared.queue.lock().expect("queue poisoned");
            shared.metrics.queue_depth.set(queue.len() as f64);
        }
        let job = {
            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
            match jobs.get_mut(&key) {
                Some(entry) if matches!(entry.state, JobState::Queued) => {
                    let waited = MonotonicClock::now_nanos().saturating_sub(entry.enqueued_nanos);
                    shared.metrics.queue_wait.record(waited as f64 * 1e-9);
                    // Overload shedding: a job that sat past the queue
                    // deadline is answered with an honest failure at
                    // claim time — running it now only makes every job
                    // behind it later still.
                    let shed = shared
                        .config
                        .queue_deadline_ms
                        .is_some_and(|d| waited / 1_000_000 > d);
                    if shed {
                        let waited_ms = waited / 1_000_000;
                        entry.state = JobState::Failed(format!(
                            "shed_queue_deadline: queued {waited_ms}ms, deadline {}ms",
                            shared.config.queue_deadline_ms.unwrap_or(0)
                        ));
                        shared.shed_queue_deadline.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.shed_queue_deadline.inc();
                        shared.failed.fetch_add(1, Ordering::Relaxed);
                        shared.failed_errors.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.jobs_failed_error.inc();
                        drop(jobs);
                        shared.done_cv.notify_all();
                        continue;
                    }
                    entry.state = JobState::Running;
                    entry.job.clone()
                }
                // Cancelled while queued (or table inconsistency): skip.
                _ => continue,
            }
        };

        shared.running.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .inflight
            .set(shared.running.load(Ordering::Relaxed) as f64);
        let threads = shared.config.job_threads;
        let trace_cache = Arc::clone(&shared.trace_cache);
        // PointJob::run already supervises per-replication panics; this
        // outer guard catches bugs in the fold itself so one bad job can
        // never take a worker thread down.
        let sim_start = MonotonicClock::now_nanos();
        let outcome = catch_unwind(AssertUnwindSafe(|| job.run(threads, &trace_cache)));
        let sim_nanos = MonotonicClock::now_nanos().saturating_sub(sim_start);
        let sim_secs = sim_nanos as f64 * 1e-9;
        shared.metrics.sim.record(sim_secs);
        shared.busy_nanos.fetch_add(sim_nanos, Ordering::Relaxed);
        shared.metrics.busy_nanos.add(sim_nanos);
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared
            .metrics
            .inflight
            .set(shared.running.load(Ordering::Relaxed) as f64);
        if let Some(threshold) = shared.config.slow_job_secs {
            if sim_secs > threshold {
                eprintln!(
                    "dtnsimd: slow job {key}: simulation took {sim_secs:.3}s \
                     (threshold {threshold}s)"
                );
            }
        }

        let new_state = match outcome {
            Ok(Ok(point)) => {
                // Completed jobs can still carry supervised per-
                // replication failures; surface them instead of letting
                // "completed" hide a point whose replications all died.
                let panics = point
                    .outcomes
                    .iter()
                    .filter(|o| matches!(o, RunOutcome::Panicked(_)))
                    .count() as u64;
                let timeouts = point
                    .outcomes
                    .iter()
                    .filter(|o| matches!(o, RunOutcome::TimedOut))
                    .count() as u64;
                shared
                    .replication_panics
                    .fetch_add(panics, Ordering::Relaxed);
                shared
                    .replication_timeouts
                    .fetch_add(timeouts, Ordering::Relaxed);
                shared.metrics.reps_panicked.add(panics);
                shared.metrics.reps_timed_out.add(timeouts);
                let fragment = {
                    let _t = Span::<MonotonicClock>::start(&shared.metrics.serialize);
                    point.to_wire_json()
                };
                shared.store.insert(key.clone(), fragment);
                shared.completed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.jobs_completed.inc();
                JobState::Done { cached: false }
            }
            Ok(Err(message)) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                shared.failed_errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.jobs_failed_error.inc();
                JobState::Failed(message)
            }
            Err(panic) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                shared.failed_panics.fetch_add(1, Ordering::Relaxed);
                shared.metrics.jobs_failed_panic.inc();
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".to_string());
                JobState::Failed(format!("job runner panicked: {message}"))
            }
        };
        let mut jobs = shared.jobs.lock().expect("jobs poisoned");
        if let Some(entry) = jobs.get_mut(&key) {
            entry.state = new_state;
        }
        drop(jobs);
        shared.done_cv.notify_all();
    }
}
