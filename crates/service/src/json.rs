//! A minimal JSON reader for the wire protocol.
//!
//! The workspace is std-only by charter, and the protocol surface is
//! small (flat request/response objects plus the canonical job
//! documents), so a ~150-line recursive-descent parser beats an external
//! dependency. Two deliberate deviations from a general-purpose parser:
//!
//! * numbers are kept as their **raw source text** ([`Value::Num`]) —
//!   seeds are full-range `u64`s that an eager `f64` conversion would
//!   corrupt, so conversion happens at the access site where the caller
//!   knows the intended type;
//! * there is no writer — the protocol's writers compose strings
//!   directly (like the rest of the repo), keeping every rendered byte
//!   under the caller's control, which the bit-identical cache contract
//!   depends on.

use std::collections::HashMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw source text (lossless for `u64` seeds).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Duplicate keys keep the last occurrence.
    Obj(HashMap<String, Value>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Escape a string for embedding in a JSON string literal (the writer
/// half the protocol needs).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = HashMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "non-UTF-8 number".to_string())?;
            // Validate once so as_u64/as_f64 can't both fail silently.
            raw.parse::<f64>()
                .map_err(|e| format!("bad number {raw:?}: {e}"))?;
            Ok(Value::Num(raw.to_string()))
        }
        Some(c) => Err(format!(
            "unexpected byte {c:?} at {pos}",
            c = *c as char,
            pos = *pos
        )),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    let mut buf = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                if !buf.is_empty() {
                    out.push_str(
                        std::str::from_utf8(&buf).map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
                return Ok(out);
            }
            Some(b'\\') => {
                if !buf.is_empty() {
                    out.push_str(
                        std::str::from_utf8(&buf).map_err(|_| "invalid UTF-8".to_string())?,
                    );
                    buf.clear();
                }
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                buf.push(b);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Value::parse(
            "{\"type\":\"submit\",\"job\":{\"load\":25,\"seed\":18446744073709551615,\
             \"audit\":false,\"timeout\":null,\"loads\":[1,2,3]}}",
        )
        .unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("submit"));
        let job = v.get("job").unwrap();
        assert_eq!(job.get("load").and_then(Value::as_u64), Some(25));
        assert_eq!(
            job.get("seed").and_then(Value::as_u64),
            Some(u64::MAX),
            "u64 seeds survive losslessly"
        );
        assert_eq!(job.get("audit").and_then(Value::as_bool), Some(false));
        assert!(job.get("timeout").unwrap().is_null());
        assert_eq!(job.get("loads").and_then(Value::as_array).unwrap().len(), 3);
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} extra",
            "\"unterminated",
            "{\"a\":01x}",
            "nul",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn numbers_parse_both_ways() {
        let v = Value::parse("{\"i\":42,\"f\":-1.5e3}").unwrap();
        assert_eq!(v.get("i").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(-1500.0));
        assert_eq!(v.get("f").and_then(Value::as_u64), None);
    }
}
