//! Result-cache housekeeping: periodic TTL expiry, byte-budget
//! eviction, and journal compaction for a [`ResultStore`].
//!
//! Everything the store holds is *reproducible* — fragments are
//! re-computable from their content-addressed jobs, bit-identically —
//! so the janitor can be aggressive without any correctness risk: an
//! evicted entry costs a recomputation, never a wrong answer. What the
//! janitor protects is the bound itself: long-running daemons must not
//! let the cache (and its journal file) grow without limit.
//!
//! One [`Janitor::sweep`] pass:
//!
//! 1. [`ResultStore::evict`] applies the TTL (age since insert) and
//!    then the byte budget (least-recently-used first);
//! 2. if anything was removed, [`ResultStore::persist`] compacts the
//!    journal so the file shrinks with the resident set — and a cold
//!    restart replays exactly the surviving entries;
//! 3. the `cache_expired_total` / `cache_evictions_total` counters
//!    advance by the pass deltas, and a registered refresh hook keeps
//!    the `cache_bytes` gauge live at scrape time.
//!
//! The [`crate::cron`] scheduler drives sweeps; the janitor itself is
//! synchronous and lock-cheap (one pass under the store's entry lock).

use crate::cache::{EvictionPass, ResultStore};
use dtn_sim::telemetry::{self, Counter};
use std::sync::Arc;
use std::time::Duration;

/// TTL / byte-budget policy for a [`Janitor`]. Both bounds optional;
/// with neither set the janitor is inert (sweeps are no-ops).
#[derive(Clone, Copy, Debug, Default)]
pub struct JanitorConfig {
    /// Evict entries older than this (age since insert / recovery).
    pub ttl: Option<Duration>,
    /// Evict least-recently-used entries while resident bytes exceed
    /// this budget.
    pub max_bytes: Option<u64>,
}

impl JanitorConfig {
    /// True when at least one bound is configured.
    pub fn is_active(&self) -> bool {
        self.ttl.is_some() || self.max_bytes.is_some()
    }
}

/// Telemetry series for one janitor, namespaced per daemon role.
struct JanitorMetrics {
    expired: Counter,
    evicted: Counter,
}

impl JanitorMetrics {
    fn register(prefix: &str, store: &Arc<ResultStore>) -> JanitorMetrics {
        let reg = telemetry::global();
        // Two fixed roles keep every metric name `'static`, as the
        // registry requires.
        let (expired_name, evicted_name, bytes_name, hook_name): (
            &'static str,
            &'static str,
            &'static str,
            &'static str,
        ) = if prefix == "dtnfedd" {
            (
                "dtnfedd_cache_expired_total",
                "dtnfedd_cache_evictions_total",
                "dtnfedd_cache_bytes",
                "dtnfedd_cache_bytes_hook",
            )
        } else {
            (
                "dtnsimd_cache_expired_total",
                "dtnsimd_cache_evictions_total",
                "dtnsimd_cache_bytes",
                "dtnsimd_cache_bytes_hook",
            )
        };
        let expired = reg.counter(expired_name, "Cache entries expired by TTL", &[]);
        let evicted = reg.counter(
            evicted_name,
            "Cache entries evicted by the byte budget (LRU-first)",
            &[],
        );
        let bytes_gauge = reg.gauge(bytes_name, "Resident result-cache bytes", &[]);
        let hook_store = Arc::clone(store);
        reg.register_refresh(hook_name, move || {
            bytes_gauge.set(hook_store.cache_bytes() as f64);
        });
        JanitorMetrics { expired, evicted }
    }
}

/// Periodic cache housekeeping over one [`ResultStore`].
pub struct Janitor {
    store: Arc<ResultStore>,
    config: JanitorConfig,
    metrics: JanitorMetrics,
}

impl Janitor {
    /// A janitor for `store` under `config`. `prefix` namespaces the
    /// telemetry series (`"dtnsimd"` or `"dtnfedd"`); the series (and
    /// the `cache_bytes` refresh hook) register even for an inert
    /// config, so the metric families always exist.
    pub fn new(store: Arc<ResultStore>, config: JanitorConfig, prefix: &str) -> Janitor {
        let metrics = JanitorMetrics::register(prefix, &store);
        Janitor {
            store,
            config,
            metrics,
        }
    }

    /// The configured policy.
    pub fn config(&self) -> JanitorConfig {
        self.config
    }

    /// One housekeeping pass: evict, then compact the journal if the
    /// pass removed anything. Returns what the pass did.
    pub fn sweep(&self) -> EvictionPass {
        if !self.config.is_active() {
            return EvictionPass {
                bytes: self.store.cache_bytes(),
                ..EvictionPass::default()
            };
        }
        let pass = self.store.evict(self.config.ttl, self.config.max_bytes);
        self.metrics.expired.add(pass.expired);
        self.metrics.evicted.add(pass.evicted);
        if pass.removed_any() {
            // Compaction failure is survivable (the journal still has
            // every surviving entry, plus garbage the next compaction
            // retries); the store's journal-error counter records it.
            let _ = self.store.persist();
        }
        pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_janitor_never_removes() {
        let store = Arc::new(ResultStore::in_memory());
        store.insert("aa".into(), "{\"runs\":1}".into());
        let janitor = Janitor::new(Arc::clone(&store), JanitorConfig::default(), "dtnsimd");
        assert!(!janitor.config().is_active());
        let pass = janitor.sweep();
        assert!(!pass.removed_any());
        assert_eq!(pass.bytes, store.cache_bytes());
        assert!(store.fragment("aa").is_some());
    }

    #[test]
    fn sweep_enforces_budget_and_compacts_journal() {
        let dir = std::env::temp_dir().join(format!("dtn_janitor_{}", std::process::id()));
        let path = dir.join("cache.jsonl");
        let store = Arc::new(ResultStore::open_with(
            &path,
            crate::cache::JournalConfig {
                flush_every: 1,
                ..Default::default()
            },
        ));
        let fat = format!("{{\"runs\":[{}]}}", "9,".repeat(100) + "9");
        for k in ["aa", "bb", "cc"] {
            store.insert(k.into(), fat.clone());
        }
        let budget = 2 * (2 + fat.len() as u64);
        let janitor = Janitor::new(
            Arc::clone(&store),
            JanitorConfig {
                ttl: None,
                max_bytes: Some(budget),
            },
            "dtnsimd",
        );
        let pass = janitor.sweep();
        assert_eq!(pass.evicted, 1);
        assert!(pass.bytes <= budget, "budget must hold after the sweep");
        // The sweep compacted: the journal now holds exactly the
        // survivors, and a cold restart replays them verbatim.
        let reloaded = ResultStore::open(&path);
        assert_eq!(reloaded.stats().2, 2);
        assert!(reloaded.cache_bytes() <= budget);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
