//! The service's one periodic-work thread: a jittered task scheduler.
//!
//! `dtnsimd` used to grow one ad-hoc thread per background chore — a
//! journal flusher here, a telemetry snapshotter there — each with its
//! own sleep loop, stop flag, and shutdown quirks. [`Cron`] replaces
//! them with a single scheduler thread running any number of
//! [`CronBuilder`]-registered tasks, each on its own jittered period.
//!
//! Jitter matters operationally (a fleet of daemons must not flush
//! journals or snapshot telemetry in lockstep) but must not cost
//! reproducibility: the delay schedule is drawn from a
//! [`SimRng`] sub-stream salted per task, so a given `(seed, task
//! index)` replays the identical schedule every run —
//! [`delay_schedule`] exposes the pure computation for tests.
//!
//! Shutdown is prompt (a condvar, not a polled sleep) and tasks marked
//! [`CronBuilder::every_final`] run one last time on the way out — how
//! the telemetry snapshotter writes its final line and the journal
//! flusher drains its last window.

use dtn_sim::SimRng;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sub-stream salt for cron jitter, in the service's `0xFA01_70xx`
/// salt address space (distinct from client retry, reconnect, and
/// prober jitter so none of the schedules can correlate).
const CRON_SALT: u64 = 0xFA01_7000_0004_0000;

/// Fraction of the period a task may fire early: each delay is drawn
/// uniformly from `[period * (1 - JITTER_FRAC), period]`, mirroring the
/// coordinator prober's early-biased window (never late, so TTL and
/// flush guarantees stay upper-bounded by the nominal period).
const JITTER_FRAC: f64 = 0.25;

/// The pure jitter computation: the first `n` delays of task
/// `task_index` under `seed`. Equal inputs produce equal schedules —
/// the determinism contract the scheduler thread inherits.
pub fn delay_schedule(seed: u64, task_index: u64, period: Duration, n: usize) -> Vec<Duration> {
    let mut rng = SimRng::new(seed).derive(CRON_SALT ^ task_index);
    (0..n).map(|_| jittered(period, &mut rng)).collect()
}

fn jittered(period: Duration, rng: &mut SimRng) -> Duration {
    let period_ms = period.as_millis().max(1) as u64;
    let floor_ms = ((period_ms as f64) * (1.0 - JITTER_FRAC)).max(1.0) as u64;
    Duration::from_millis(rng.range_inclusive(floor_ms, period_ms).max(1))
}

struct Task {
    name: &'static str,
    period: Duration,
    run_on_shutdown: bool,
    job: Box<dyn FnMut() + Send>,
    rng: SimRng,
    due: Instant,
}

/// Declarative registration of periodic tasks; [`CronBuilder::spawn`]
/// turns the set into one scheduler thread.
pub struct CronBuilder {
    seed: u64,
    tasks: Vec<Task>,
}

impl CronBuilder {
    /// A builder whose jitter streams derive from `seed` (equal seeds
    /// replay equal schedules).
    pub fn new(seed: u64) -> CronBuilder {
        CronBuilder {
            seed,
            tasks: Vec::new(),
        }
    }

    /// Register `job` to run roughly every `period` (early-jittered,
    /// never late). `name` labels the task in schedules and tests.
    pub fn every(
        self,
        name: &'static str,
        period: Duration,
        job: impl FnMut() + Send + 'static,
    ) -> CronBuilder {
        self.register(name, period, false, job)
    }

    /// Like [`CronBuilder::every`], but the task also runs once more
    /// during shutdown — for final flushes and last snapshot lines.
    pub fn every_final(
        self,
        name: &'static str,
        period: Duration,
        job: impl FnMut() + Send + 'static,
    ) -> CronBuilder {
        self.register(name, period, true, job)
    }

    fn register(
        mut self,
        name: &'static str,
        period: Duration,
        run_on_shutdown: bool,
        job: impl FnMut() + Send + 'static,
    ) -> CronBuilder {
        let index = self.tasks.len() as u64;
        let mut rng = SimRng::new(self.seed).derive(CRON_SALT ^ index);
        let first = jittered(period, &mut rng);
        self.tasks.push(Task {
            name,
            period: period.max(Duration::from_millis(1)),
            run_on_shutdown,
            job: Box::new(job),
            rng,
            due: Instant::now() + first,
        });
        self
    }

    /// Names of the registered tasks, in registration (= salt) order.
    pub fn task_names(&self) -> Vec<&'static str> {
        self.tasks.iter().map(|t| t.name).collect()
    }

    /// Start the scheduler thread. With no tasks registered this still
    /// spawns (and immediately parks) so the caller's shutdown path is
    /// uniform.
    pub fn spawn(self, thread_name: &str) -> std::io::Result<Cron> {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let mut tasks = self.tasks;
        let handle = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn(move || {
                let (lock, cv) = &*thread_stop;
                loop {
                    let now = Instant::now();
                    for task in tasks.iter_mut() {
                        if task.due <= now {
                            (task.job)();
                            let delay = jittered(task.period, &mut task.rng);
                            task.due = now + delay;
                        }
                    }
                    let next = tasks.iter().map(|t| t.due).min();
                    let wait = next.map_or(Duration::from_secs(3600), |due| {
                        due.saturating_duration_since(Instant::now())
                    });
                    let stopped = lock.lock().expect("cron stop poisoned");
                    if *stopped {
                        break;
                    }
                    let (stopped, _) = cv.wait_timeout(stopped, wait).expect("cron stop poisoned");
                    if *stopped {
                        break;
                    }
                }
                for task in tasks.iter_mut() {
                    if task.run_on_shutdown {
                        (task.job)();
                    }
                }
            })?;
        Ok(Cron {
            stop,
            handle: Some(handle),
        })
    }
}

/// A running scheduler thread. Dropping without
/// [`Cron::shutdown`] detaches the thread (tests should shut down).
pub struct Cron {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Cron {
    /// Stop the scheduler: wakes the thread immediately, runs every
    /// `every_final` task once more, and joins.
    pub fn shutdown(mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    fn signal_stop(&self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().expect("cron stop poisoned") = true;
        cv.notify_all();
    }
}

impl Drop for Cron {
    fn drop(&mut self) {
        // Best effort: wake the thread so a forgotten shutdown doesn't
        // leave it sleeping a full period; the handle is detached.
        self.signal_stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn delay_schedule_is_deterministic_and_early_biased() {
        let period = Duration::from_millis(1000);
        let a = delay_schedule(7, 0, period, 16);
        assert_eq!(a, delay_schedule(7, 0, period, 16), "same seed, same task");
        assert_ne!(a, delay_schedule(8, 0, period, 16), "seed changes it");
        assert_ne!(a, delay_schedule(7, 1, period, 16), "task salt changes it");
        for d in &a {
            let ms = d.as_millis() as u64;
            assert!((750..=1000).contains(&ms), "delay {ms}ms outside window");
        }
    }

    #[test]
    fn tasks_fire_repeatedly_and_final_tasks_run_on_shutdown() {
        let ticks = Arc::new(AtomicU64::new(0));
        let finals = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        let f = Arc::clone(&finals);
        let cron = CronBuilder::new(3)
            .every("tick", Duration::from_millis(5), move || {
                t.fetch_add(1, Ordering::Relaxed);
            })
            .every_final("flush", Duration::from_secs(3600), move || {
                f.fetch_add(1, Ordering::Relaxed);
            })
            .spawn("cron-test")
            .expect("spawn");
        let deadline = Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(ticks.load(Ordering::Relaxed) >= 3, "fast task must repeat");
        assert_eq!(
            finals.load(Ordering::Relaxed),
            0,
            "hour-period task must not have fired yet"
        );
        cron.shutdown();
        assert_eq!(
            finals.load(Ordering::Relaxed),
            1,
            "final task runs exactly once at shutdown"
        );
    }

    #[test]
    fn shutdown_is_prompt_despite_long_periods() {
        let cron = CronBuilder::new(1)
            .every("slow", Duration::from_secs(3600), || {})
            .spawn("cron-prompt")
            .expect("spawn");
        let started = Instant::now();
        cron.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown must not wait out the period"
        );
    }
}
