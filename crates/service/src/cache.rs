//! The content-addressed result store.
//!
//! A job's identity is [`job_key`]: a 128-bit FNV-1a hash (two
//! independently-seeded 64-bit lanes) over `"v1|{engine}|{canonical job
//! JSON}"`. Everything a result depends on is in that string — protocol
//! spec, mobility, seeds, fault plan, watchdog policy (retries re-seed
//! RNG streams, so supervision is result-relevant), and the engine
//! version — so equal keys imply bit-identical results and *nothing
//! else* needs comparing on a hit.
//!
//! The store maps keys to the result fragment's **wire rendering**,
//! stored verbatim: a cache hit replays the exact bytes a fresh
//! computation produced, which is how the service keeps its
//! "cache hits are bit-identical" contract trivially true rather than
//! approximately true.
//!
//! Persistence is a JSONL file (manifest line, then one `{"key":…,
//! "fragment":…}` line per entry) written on graceful shutdown and
//! reloaded at startup. A manifest whose engine string differs from the
//! running daemon's is discarded wholesale — results from another engine
//! version must never be served, and the engine version is part of every
//! key precisely so stale entries cannot collide.

use crate::json::Value;
use dtn_experiments::ensure_dir;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The engine version folded into every cache key: crate version plus a
/// result-schema revision. Bump the schema suffix whenever the fragment
/// layout or any simulation-visible behavior changes without a version
/// bump.
pub const ENGINE_VERSION: &str = concat!(env!("CARGO_PKG_VERSION"), "+bloom2");

/// The content address of a job: 32 hex chars from two FNV-1a 64 lanes
/// over `"v1|{ENGINE_VERSION}|{canonical}"`.
pub fn job_key(canonical_job_json: &str) -> String {
    let material = format!("v1|{ENGINE_VERSION}|{canonical_job_json}");
    let lane = |mut hash: u64| {
        for b in material.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    };
    // Standard FNV offset basis, and the same basis advanced by one
    // round over a salt byte — two independent lanes, one pass each.
    let a = lane(0xCBF2_9CE4_8422_2325);
    let b = lane(0xCBF2_9CE4_8422_2325 ^ 0x5A5A_5A5A_5A5A_5A5A);
    format!("{a:016x}{b:016x}")
}

/// Thread-safe content-addressed store with hit/miss counters and
/// optional JSONL persistence.
pub struct ResultStore {
    entries: Mutex<HashMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    path: Option<PathBuf>,
}

impl ResultStore {
    /// An empty in-memory store (no persistence).
    pub fn in_memory() -> ResultStore {
        ResultStore {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            path: None,
        }
    }

    /// A store backed by `path`: existing compatible entries are loaded
    /// eagerly, and [`ResultStore::persist`] writes the current contents
    /// back. A missing file or an engine-version mismatch both mean
    /// "start empty" — never an error, never stale results.
    pub fn open(path: &Path) -> ResultStore {
        let mut store = ResultStore::in_memory();
        store.path = Some(path.to_path_buf());
        if let Ok(text) = std::fs::read_to_string(path) {
            let mut lines = text.lines().filter(|l| !l.trim().is_empty());
            let manifest_ok = lines.next().is_some_and(|manifest| {
                Value::parse(manifest)
                    .ok()
                    .and_then(|m| m.get("engine").and_then(Value::as_str).map(String::from))
                    .is_some_and(|engine| engine == ENGINE_VERSION)
            });
            if manifest_ok {
                let mut entries = store.entries.lock().expect("store poisoned");
                for line in lines {
                    // `fragment` is the last member; recover it verbatim
                    // so persisted results stay byte-identical too.
                    let Some(fragment) = crate::wire::extract_fragment(line) else {
                        continue;
                    };
                    let Some(key) = Value::parse(line)
                        .ok()
                        .and_then(|v| v.get("key").and_then(Value::as_str).map(String::from))
                    else {
                        continue;
                    };
                    entries.insert(key, fragment.to_string());
                }
            }
        }
        store
    }

    /// Look up a job's result, counting a hit or miss. This is the
    /// submission-time gate: its counters are what `Stats` reports as
    /// the cache-hit ratio.
    pub fn lookup(&self, key: &str) -> Option<String> {
        let entries = self.entries.lock().expect("store poisoned");
        match entries.get(key) {
            Some(fragment) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(fragment.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fetch a stored fragment without touching the hit/miss counters
    /// (used when serving `Result` requests for jobs already resolved).
    pub fn fragment(&self, key: &str) -> Option<String> {
        self.entries
            .lock()
            .expect("store poisoned")
            .get(key)
            .cloned()
    }

    /// Insert (or overwrite — last writer wins, results are identical by
    /// construction) a computed fragment.
    pub fn insert(&self, key: String, fragment: String) {
        self.entries
            .lock()
            .expect("store poisoned")
            .insert(key, fragment);
    }

    /// `(hits, misses, entries)` counters.
    pub fn stats(&self) -> (u64, u64, usize) {
        let entries = self.entries.lock().expect("store poisoned").len();
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            entries,
        )
    }

    /// Write the store to its backing file (no-op for in-memory stores):
    /// temp file in the same directory, then an atomic rename, so a
    /// crash mid-persist can never leave a half-written index.
    pub fn persist(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            ensure_dir(dir)?;
        }
        let entries = self.entries.lock().expect("store poisoned");
        let mut out = String::with_capacity(entries.len() * 256 + 64);
        out.push_str(&format!(
            "{{\"store\":\"dtn-service\",\"engine\":\"{}\"}}\n",
            crate::json::escape(ENGINE_VERSION)
        ));
        // Deterministic order keeps the file diff-able across restarts.
        let mut keys: Vec<&String> = entries.keys().collect();
        keys.sort_unstable();
        for key in keys {
            out.push_str(&format!(
                "{{\"key\":\"{}\",\"fragment\":{}}}\n",
                crate::json::escape(key),
                entries[key]
            ));
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_content_sensitive() {
        let a = job_key("{\"protocol\":\"pure\"}");
        assert_eq!(a, job_key("{\"protocol\":\"pure\"}"));
        assert_eq!(a.len(), 32);
        assert_ne!(a, job_key("{\"protocol\":\"ec\"}"));
        assert_ne!(a, job_key("{\"protocol\":\"pure\"} "));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let store = ResultStore::in_memory();
        assert_eq!(store.lookup("k"), None);
        store.insert("k".into(), "{\"runs\":[]}".into());
        assert_eq!(store.lookup("k").as_deref(), Some("{\"runs\":[]}"));
        assert_eq!(store.stats(), (1, 1, 1));
        // fragment() is counter-neutral.
        assert!(store.fragment("k").is_some());
        assert_eq!(store.stats(), (1, 1, 1));
    }

    #[test]
    fn persistence_round_trips_verbatim() {
        let dir = std::env::temp_dir().join(format!("dtn_store_{}", std::process::id()));
        let path = dir.join("nested").join("cache.jsonl");
        let store = ResultStore::open(&path);
        let fragment = "{\"attempts\":[1,1],\"slow\":0,\"runs\":[[1,2]],\"violations\":[\"rep 0: x \\\"q\\\"\"]}";
        store.insert("deadbeef".into(), fragment.to_string());
        store.persist().unwrap();

        let reloaded = ResultStore::open(&path);
        assert_eq!(reloaded.fragment("deadbeef").as_deref(), Some(fragment));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_mismatch_discards_the_file() {
        let dir = std::env::temp_dir().join(format!("dtn_store_ver_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        std::fs::write(
            &path,
            "{\"store\":\"dtn-service\",\"engine\":\"0.0.0+ancient\"}\n\
             {\"key\":\"aa\",\"fragment\":{\"runs\":[]}}\n",
        )
        .unwrap();
        let store = ResultStore::open(&path);
        assert_eq!(store.stats().2, 0, "stale engine entries must be dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
