//! The content-addressed result store and its crash-safe journal.
//!
//! A job's identity is [`job_key`]: a 128-bit FNV-1a hash (two
//! independently-seeded 64-bit lanes) over `"v1|{engine}|{canonical job
//! JSON}"`. Everything a result depends on is in that string — protocol
//! spec, mobility, seeds, fault plan, watchdog policy (retries re-seed
//! RNG streams, so supervision is result-relevant), and the engine
//! version — so equal keys imply bit-identical results and *nothing
//! else* needs comparing on a hit.
//!
//! The store maps keys to the result fragment's **wire rendering**,
//! stored verbatim: a cache hit replays the exact bytes a fresh
//! computation produced, which is how the service keeps its
//! "cache hits are bit-identical" contract trivially true rather than
//! approximately true.
//!
//! ## The journal
//!
//! Persistence is an **append-only, CRC-framed journal**: a manifest
//! line, then one record per entry, each line shaped
//! `XXXXXXXX {json}` where `XXXXXXXX` is the CRC32 of the JSON bytes in
//! lowercase hex. Inserts append to an in-memory buffer that is flushed
//! to the file every [`JournalConfig::flush_every`] entries or
//! [`JournalConfig::flush_interval`], whichever comes first — so a
//! `kill -9` (or a kernel panic) loses **at most one flush window**,
//! not the whole cache the old shutdown-only persistence lost.
//!
//! Startup recovery reads the journal record by record and stops at the
//! **first** bad line — torn tail, bit flip, truncated write — keeping
//! everything before it (the *salvaged* entries), truncating the file
//! back to the last good record, and counting everything at or after
//! the damage as *discarded*. The counts are surfaced through
//! [`ResultStore::recovery`] so the daemon can report them via
//! telemetry and `stats`; silent data loss is the one thing a crash
//! story must never have.
//!
//! A manifest whose engine string differs from the running daemon's is
//! discarded wholesale — results from another engine version must never
//! be served, and the engine version is part of every key precisely so
//! stale entries cannot collide. Graceful shutdown compacts the journal
//! into a sorted snapshot (same format) via tmp-rename; a stale `.tmp`
//! left by a crash mid-compaction is removed — and counted — on the
//! next startup.
//!
//! ## Bounding the store
//!
//! The store tracks resident bytes (keys + fragments) and per-entry
//! age/recency, and [`ResultStore::evict`] applies an optional TTL and
//! an optional total-bytes budget: expired entries go first, then
//! least-recently-used ones until the budget holds. Eviction only
//! removes *reproducible* state — every fragment is recomputable from
//! its content-addressed job — so correctness is untouched; the
//! [`crate::janitor`] drives eviction periodically and compacts the
//! journal afterwards so the file shrinks with the resident set.

use crate::crc::crc32;
use crate::json::Value;
use dtn_experiments::ensure_dir;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The engine version folded into every cache key: crate version plus a
/// result-schema revision. Bump the schema suffix whenever the fragment
/// layout or any simulation-visible behavior changes without a version
/// bump.
pub const ENGINE_VERSION: &str = concat!(env!("CARGO_PKG_VERSION"), "+bloom2");

/// The journal format tag in the manifest line. Bumped if the record
/// framing ever changes; a mismatch discards the file like an engine
/// mismatch does.
const JOURNAL_FORMAT: &str = "journal-v1";

/// The content address of a job: 32 hex chars from two FNV-1a 64 lanes
/// over `"v1|{ENGINE_VERSION}|{canonical}"`.
pub fn job_key(canonical_job_json: &str) -> String {
    let material = format!("v1|{ENGINE_VERSION}|{canonical_job_json}");
    let lane = |mut hash: u64| {
        for b in material.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    };
    // Standard FNV offset basis, and the same basis advanced by one
    // round over a salt byte — two independent lanes, one pass each.
    let a = lane(0xCBF2_9CE4_8422_2325);
    let b = lane(0xCBF2_9CE4_8422_2325 ^ 0x5A5A_5A5A_5A5A_5A5A);
    format!("{a:016x}{b:016x}")
}

/// Incremental-flush policy for the journal.
#[derive(Clone, Copy, Debug)]
pub struct JournalConfig {
    /// Flush after this many buffered inserts.
    pub flush_every: usize,
    /// Flush when the oldest buffered insert is this old (checked on
    /// insert and by the daemon's periodic flusher).
    pub flush_interval: Duration,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            flush_every: 8,
            flush_interval: Duration::from_secs(1),
        }
    }
}

/// What startup recovery found in the journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records recovered intact (before the first damaged one).
    pub salvaged: u64,
    /// Lines lost: the first damaged record and everything after it,
    /// or every record when the manifest itself was unusable.
    pub discarded: u64,
    /// Stale `.tmp` files (from a crash mid-compaction) removed.
    pub stale_tmp_removed: u64,
}

/// The append-side state of the journal, behind its own lock so inserts
/// under the entries lock never wait on file I/O done by a flusher.
struct Journal {
    file: File,
    pending: Vec<u8>,
    pending_entries: usize,
    oldest_pending: Option<Instant>,
    flushes: u64,
}

/// One CRC-framed journal line (no trailing newline).
fn frame_line(json: &str) -> String {
    format!("{:08x} {json}", crc32(json.as_bytes()))
}

fn manifest_line() -> String {
    frame_line(&format!(
        "{{\"store\":\"dtn-service\",\"engine\":\"{}\",\"format\":\"{JOURNAL_FORMAT}\"}}",
        crate::json::escape(ENGINE_VERSION)
    ))
}

/// Unframe one journal line: verify the CRC prefix and return the JSON
/// body. `None` for any damage — short line, bad hex, CRC mismatch.
fn unframe_line(line: &str) -> Option<&str> {
    let (crc_hex, json) = line.split_once(' ')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc32(json.as_bytes()) == want).then_some(json)
}

fn record_line(key: &str, fragment: &str) -> String {
    // `fragment` is last, as on the wire, so `extract_fragment` can
    // recover the exact stored bytes on reload.
    frame_line(&format!(
        "{{\"key\":\"{}\",\"fragment\":{fragment}}}",
        crate::json::escape(key)
    ))
}

/// One resident entry: the verbatim fragment plus the bookkeeping the
/// janitor's TTL/LRU policy needs.
struct Slot {
    fragment: String,
    /// When the entry became resident (insert or journal recovery).
    inserted: Instant,
    /// The store-wide use tick of the entry's last touch (LRU order).
    last_used: u64,
}

/// The resident set behind one lock: the map plus the byte/recency
/// accounting that must stay exactly consistent with it.
struct Resident {
    map: HashMap<String, Slot>,
    /// Total resident bytes: `key.len() + fragment.len()` per entry.
    bytes: u64,
    /// Monotonic use counter; every touch stamps `Slot::last_used`.
    tick: u64,
}

impl Resident {
    fn touch(&mut self, key: &str) -> Option<&Slot> {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.get_mut(key)?;
        slot.last_used = tick;
        Some(slot)
    }
}

fn entry_bytes(key: &str, fragment: &str) -> u64 {
    (key.len() + fragment.len()) as u64
}

/// What one [`ResultStore::evict`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionPass {
    /// Entries dropped because their age exceeded the TTL.
    pub expired: u64,
    /// Entries dropped (LRU-first) to get under the byte budget.
    pub evicted: u64,
    /// Resident bytes after the pass.
    pub bytes: u64,
    /// Resident entries after the pass.
    pub entries: usize,
}

impl EvictionPass {
    /// True when the pass removed anything (so the journal should be
    /// compacted to match).
    pub fn removed_any(&self) -> bool {
        self.expired + self.evicted > 0
    }
}

/// Thread-safe content-addressed store with hit/miss counters and an
/// optional crash-safe journal.
pub struct ResultStore {
    entries: Mutex<Resident>,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
    path: Option<PathBuf>,
    config: JournalConfig,
    journal: Option<Mutex<Journal>>,
    journal_errors: AtomicU64,
    recovery: RecoveryStats,
}

impl ResultStore {
    /// An empty in-memory store (no persistence, no journal).
    pub fn in_memory() -> ResultStore {
        ResultStore {
            entries: Mutex::new(Resident {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            path: None,
            config: JournalConfig::default(),
            journal: None,
            journal_errors: AtomicU64::new(0),
            recovery: RecoveryStats::default(),
        }
    }

    /// A store backed by the journal at `path` with the default flush
    /// policy. See [`ResultStore::open_with`].
    pub fn open(path: &Path) -> ResultStore {
        ResultStore::open_with(path, JournalConfig::default())
    }

    /// A store backed by the journal at `path`: compatible records are
    /// recovered eagerly (truncating the file after the last intact
    /// one), a stale `.tmp` from a crashed compaction is removed, and
    /// every [`ResultStore::insert`] appends to the journal under
    /// `config`'s flush policy. A missing file or an engine/format
    /// mismatch both mean "start empty" — never an error, never stale
    /// results. Unrecoverable I/O (an unwritable directory) degrades to
    /// in-memory operation and counts a journal error rather than
    /// refusing to serve.
    pub fn open_with(path: &Path, config: JournalConfig) -> ResultStore {
        let mut store = ResultStore::in_memory();
        store.path = Some(path.to_path_buf());
        store.config = config;

        // A crash between `persist`'s write and rename leaves a `.tmp`
        // behind; the journal at `path` is still authoritative, so the
        // orphan is pure garbage — but garbage worth counting.
        let tmp = path.with_extension("tmp");
        if tmp.exists() && std::fs::remove_file(&tmp).is_ok() {
            store.recovery.stale_tmp_removed += 1;
        }

        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if ensure_dir(dir).is_err() {
                store.journal_errors.fetch_add(1, Ordering::Relaxed);
                return store;
            }
        }

        let mut fresh = true;
        if let Ok(text) = std::fs::read_to_string(path) {
            fresh = false;
            let (mut entries, recovery, keep_bytes) = recover_journal(&text);
            store.recovery.salvaged = recovery.salvaged;
            store.recovery.discarded = recovery.discarded;
            match keep_bytes {
                // Compatible journal: truncate off any damaged tail so
                // new appends land after the last intact record.
                Some(keep) => {
                    if keep < text.len() as u64 {
                        let truncated = OpenOptions::new()
                            .write(true)
                            .open(path)
                            .and_then(|f| f.set_len(keep));
                        if truncated.is_err() {
                            store.journal_errors.fetch_add(1, Ordering::Relaxed);
                            return store;
                        }
                    }
                    let resident = store.entries.get_mut().expect("store poisoned");
                    // Recovered entries all restart their TTL clock now
                    // and take recency in sorted-key order — a
                    // deterministic baseline the first real touches
                    // immediately refine.
                    let now = Instant::now();
                    let mut keys: Vec<String> = entries.keys().cloned().collect();
                    keys.sort_unstable();
                    for key in keys {
                        let fragment = entries.remove(&key).expect("key just listed");
                        resident.tick += 1;
                        resident.bytes += entry_bytes(&key, &fragment);
                        let tick = resident.tick;
                        resident.map.insert(
                            key,
                            Slot {
                                fragment,
                                inserted: now,
                                last_used: tick,
                            },
                        );
                    }
                }
                // Incompatible manifest (other engine, other format,
                // or damaged): start over with a fresh journal.
                None => fresh = true,
            }
        }

        if fresh {
            let written = std::fs::write(path, format!("{}\n", manifest_line()));
            if written.is_err() {
                store.journal_errors.fetch_add(1, Ordering::Relaxed);
                return store;
            }
        }
        match OpenOptions::new().append(true).open(path) {
            Ok(file) => {
                store.journal = Some(Mutex::new(Journal {
                    file,
                    pending: Vec::new(),
                    pending_entries: 0,
                    oldest_pending: None,
                    flushes: 0,
                }));
            }
            Err(_) => {
                store.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        store
    }

    /// Look up a job's result, counting a hit or miss. This is the
    /// submission-time gate: its counters are what `Stats` reports as
    /// the cache-hit ratio.
    pub fn lookup(&self, key: &str) -> Option<String> {
        let mut entries = self.entries.lock().expect("store poisoned");
        match entries.touch(key) {
            Some(slot) => {
                let fragment = slot.fragment.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(fragment)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fetch a stored fragment without touching the hit/miss counters
    /// (used when serving `Result` requests for jobs already resolved).
    /// Still counts as a *use* for the LRU order — a fragment being
    /// served is the last thing the janitor should evict.
    pub fn fragment(&self, key: &str) -> Option<String> {
        self.entries
            .lock()
            .expect("store poisoned")
            .touch(key)
            .map(|slot| slot.fragment.clone())
    }

    /// Insert (or overwrite — last writer wins, results are identical by
    /// construction) a computed fragment, journaling it durably within
    /// one flush window.
    pub fn insert(&self, key: String, fragment: String) {
        let line = self.journal.is_some().then(|| record_line(&key, &fragment));
        {
            let mut entries = self.entries.lock().expect("store poisoned");
            entries.tick += 1;
            entries.bytes += entry_bytes(&key, &fragment);
            let slot = Slot {
                fragment,
                inserted: Instant::now(),
                last_used: entries.tick,
            };
            if let Some(old) = entries.map.insert(key.clone(), slot) {
                let freed = entry_bytes(&key, &old.fragment);
                entries.bytes -= freed;
            }
        }
        let (Some(journal), Some(line)) = (&self.journal, line) else {
            return;
        };
        let mut j = journal.lock().expect("journal poisoned");
        j.pending.extend_from_slice(line.as_bytes());
        j.pending.push(b'\n');
        j.pending_entries += 1;
        j.oldest_pending.get_or_insert_with(Instant::now);
        let due = j.pending_entries >= self.config.flush_every
            || j.oldest_pending
                .is_some_and(|t| t.elapsed() >= self.config.flush_interval);
        if due && flush_locked(&mut j).is_err() {
            self.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Flush buffered journal records to the file if any are due (or
    /// `force` everything). The daemon's periodic flusher calls this so
    /// the time-based window holds even when no inserts arrive.
    pub fn flush_journal(&self, force: bool) -> std::io::Result<()> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        let mut j = journal.lock().expect("journal poisoned");
        if j.pending_entries == 0 {
            return Ok(());
        }
        let due = force
            || j.pending_entries >= self.config.flush_every
            || j.oldest_pending
                .is_some_and(|t| t.elapsed() >= self.config.flush_interval);
        if !due {
            return Ok(());
        }
        flush_locked(&mut j).map_err(|e| {
            self.journal_errors.fetch_add(1, Ordering::Relaxed);
            e
        })
    }

    /// `(hits, misses, entries)` counters.
    pub fn stats(&self) -> (u64, u64, usize) {
        let entries = self.entries.lock().expect("store poisoned").map.len();
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            entries,
        )
    }

    /// Total resident bytes (keys + fragments).
    pub fn cache_bytes(&self) -> u64 {
        self.entries.lock().expect("store poisoned").bytes
    }

    /// `(expired, evicted)` lifetime eviction counters.
    pub fn eviction_counters(&self) -> (u64, u64) {
        (
            self.expired.load(Ordering::Relaxed),
            self.evicted.load(Ordering::Relaxed),
        )
    }

    /// One eviction pass: drop entries older than `ttl`, then drop
    /// least-recently-used entries until resident bytes fit under
    /// `max_bytes`. Either bound may be absent. The journal is *not*
    /// compacted here — callers (the janitor) follow a removing pass
    /// with [`ResultStore::persist`] so the file shrinks too.
    pub fn evict(&self, ttl: Option<Duration>, max_bytes: Option<u64>) -> EvictionPass {
        let mut entries = self.entries.lock().expect("store poisoned");
        let mut pass = EvictionPass::default();

        if let Some(ttl) = ttl {
            let dead: Vec<String> = entries
                .map
                .iter()
                .filter(|(_, slot)| slot.inserted.elapsed() >= ttl)
                .map(|(key, _)| key.clone())
                .collect();
            for key in dead {
                if let Some(slot) = entries.map.remove(&key) {
                    entries.bytes -= entry_bytes(&key, &slot.fragment);
                    pass.expired += 1;
                }
            }
        }

        if let Some(budget) = max_bytes {
            if entries.bytes > budget {
                // Oldest use first; key as tie-break for determinism.
                let mut order: Vec<(u64, String)> = entries
                    .map
                    .iter()
                    .map(|(key, slot)| (slot.last_used, key.clone()))
                    .collect();
                order.sort_unstable();
                for (_, key) in order {
                    if entries.bytes <= budget {
                        break;
                    }
                    if let Some(slot) = entries.map.remove(&key) {
                        entries.bytes -= entry_bytes(&key, &slot.fragment);
                        pass.evicted += 1;
                    }
                }
            }
        }

        pass.bytes = entries.bytes;
        pass.entries = entries.map.len();
        self.expired.fetch_add(pass.expired, Ordering::Relaxed);
        self.evicted.fetch_add(pass.evicted, Ordering::Relaxed);
        pass
    }

    /// Remove a stale `.tmp` snapshot next to the journal if one exists
    /// (a crash mid-compaction leaves one; startup already sweeps once,
    /// this is the periodic re-sweep the cron runs). Only files whose
    /// last write is over a minute old are touched, so an in-flight
    /// [`ResultStore::persist`] can never lose its snapshot to the
    /// sweeper. Returns how many files were removed (0 or 1).
    pub fn sweep_stale_tmp(&self) -> u64 {
        let Some(path) = &self.path else {
            return 0;
        };
        let tmp = path.with_extension("tmp");
        let stale = std::fs::metadata(&tmp)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= Duration::from_secs(60));
        u64::from(stale && std::fs::remove_file(&tmp).is_ok())
    }

    /// What startup recovery salvaged, discarded, and cleaned up.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Completed journal flushes (file writes, not buffered appends).
    pub fn journal_flushes(&self) -> u64 {
        self.journal
            .as_ref()
            .map_or(0, |j| j.lock().expect("journal poisoned").flushes)
    }

    /// Journal write failures survived (the store keeps serving from
    /// memory; durability of the affected window is lost).
    pub fn journal_errors(&self) -> u64 {
        self.journal_errors.load(Ordering::Relaxed)
    }

    /// Compact the journal into a sorted snapshot (no-op for in-memory
    /// stores): temp file in the same directory, then an atomic rename,
    /// so a crash mid-persist can never leave a half-written index. On
    /// rename failure the temp file is removed rather than left to
    /// shadow the (still valid) journal.
    pub fn persist(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            ensure_dir(dir)?;
        }
        // Hold the entries lock across the snapshot *and* the journal
        // swap so an insert cannot slip between them and be lost.
        let entries = self.entries.lock().expect("store poisoned");
        let mut out = String::with_capacity(entries.map.len() * 256 + 64);
        out.push_str(&manifest_line());
        out.push('\n');
        // Deterministic order keeps the file diff-able across restarts.
        let mut keys: Vec<&String> = entries.map.keys().collect();
        keys.sort_unstable();
        for key in keys {
            out.push_str(&record_line(key, &entries.map[key].fragment));
            out.push('\n');
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // The snapshot replaced the file under the journal's old handle;
        // everything pending is in the snapshot, so re-point the handle
        // and drop the buffer.
        if let Some(journal) = &self.journal {
            let mut j = journal.lock().expect("journal poisoned");
            j.pending.clear();
            j.pending_entries = 0;
            j.oldest_pending = None;
            j.file = OpenOptions::new().append(true).open(path)?;
            j.file.sync_data()?;
        }
        Ok(())
    }
}

fn flush_locked(j: &mut Journal) -> std::io::Result<()> {
    j.file.write_all(&j.pending)?;
    j.file.flush()?;
    j.pending.clear();
    j.pending_entries = 0;
    j.oldest_pending = None;
    j.flushes += 1;
    Ok(())
}

/// Scan journal `text`: returns the recovered entries, the salvage
/// counts, and `Some(byte_len_to_keep)` when the manifest was
/// compatible (`None` discards the whole file).
fn recover_journal(text: &str) -> (HashMap<String, String>, RecoveryStats, Option<u64>) {
    let mut entries = HashMap::new();
    let mut stats = RecoveryStats::default();
    let total_records = text
        .lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .count() as u64;

    let mut offset = 0u64;
    let mut lines = text.split_inclusive('\n');
    let manifest_ok = lines.next().is_some_and(|line| {
        let ok = line.ends_with('\n')
            && unframe_line(line.trim_end_matches('\n'))
                .and_then(|json| Value::parse(json).ok())
                .is_some_and(|m| {
                    m.get("engine").and_then(Value::as_str) == Some(ENGINE_VERSION)
                        && m.get("format").and_then(Value::as_str) == Some(JOURNAL_FORMAT)
                });
        if ok {
            offset += line.len() as u64;
        }
        ok
    });
    if !manifest_ok {
        stats.discarded = total_records;
        return (HashMap::new(), stats, None);
    }

    for line in lines {
        // A record is intact only if newline-terminated (a torn tail
        // has no newline) and CRC-clean and structurally parseable.
        let intact = line.ends_with('\n');
        let body = line.trim_end_matches('\n');
        if body.trim().is_empty() {
            if intact {
                offset += line.len() as u64;
                continue;
            }
            break;
        }
        let recovered = intact
            .then(|| unframe_line(body))
            .flatten()
            .and_then(|json| {
                let fragment = crate::wire::extract_fragment(json)?;
                let key = Value::parse(json)
                    .ok()?
                    .get("key")
                    .and_then(Value::as_str)
                    .map(String::from)?;
                Some((key, fragment.to_string()))
            });
        match recovered {
            Some((key, fragment)) => {
                entries.insert(key, fragment);
                stats.salvaged += 1;
                offset += line.len() as u64;
            }
            None => break,
        }
    }
    stats.discarded = total_records - stats.salvaged;
    (entries, stats, Some(offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_content_sensitive() {
        let a = job_key("{\"protocol\":\"pure\"}");
        assert_eq!(a, job_key("{\"protocol\":\"pure\"}"));
        assert_eq!(a.len(), 32);
        assert_ne!(a, job_key("{\"protocol\":\"ec\"}"));
        assert_ne!(a, job_key("{\"protocol\":\"pure\"} "));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let store = ResultStore::in_memory();
        assert_eq!(store.lookup("k"), None);
        store.insert("k".into(), "{\"runs\":[]}".into());
        assert_eq!(store.lookup("k").as_deref(), Some("{\"runs\":[]}"));
        assert_eq!(store.stats(), (1, 1, 1));
        // fragment() is counter-neutral.
        assert!(store.fragment("k").is_some());
        assert_eq!(store.stats(), (1, 1, 1));
    }

    #[test]
    fn persistence_round_trips_verbatim() {
        let dir = std::env::temp_dir().join(format!("dtn_store_{}", std::process::id()));
        let path = dir.join("nested").join("cache.jsonl");
        let store = ResultStore::open(&path);
        let fragment = "{\"attempts\":[1,1],\"slow\":0,\"runs\":[[1,2]],\"violations\":[\"rep 0: x \\\"q\\\"\"]}";
        store.insert("deadbeef".into(), fragment.to_string());
        store.persist().unwrap();

        let reloaded = ResultStore::open(&path);
        assert_eq!(reloaded.fragment("deadbeef").as_deref(), Some(fragment));
        assert_eq!(reloaded.recovery().salvaged, 1);
        assert_eq!(reloaded.recovery().discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_appends_survive_without_persist() {
        let dir = std::env::temp_dir().join(format!("dtn_store_j_{}", std::process::id()));
        let path = dir.join("cache.jsonl");
        let store = ResultStore::open_with(
            &path,
            JournalConfig {
                flush_every: 1,
                ..JournalConfig::default()
            },
        );
        store.insert("aa".into(), "{\"runs\":[1]}".into());
        store.insert("bb".into(), "{\"runs\":[2]}".into());
        assert_eq!(store.journal_flushes(), 2);
        // No persist(): the journal alone must carry the entries, as it
        // would across a kill -9.
        drop(store);
        let reloaded = ResultStore::open(&path);
        assert_eq!(reloaded.fragment("aa").as_deref(), Some("{\"runs\":[1]}"));
        assert_eq!(reloaded.fragment("bb").as_deref(), Some("{\"runs\":[2]}"));
        assert_eq!(reloaded.recovery().salvaged, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = std::env::temp_dir().join(format!("dtn_store_torn_{}", std::process::id()));
        let path = dir.join("cache.jsonl");
        let store = ResultStore::open_with(
            &path,
            JournalConfig {
                flush_every: 1,
                ..JournalConfig::default()
            },
        );
        store.insert("aa".into(), "{\"runs\":[1]}".into());
        store.insert("bb".into(), "{\"runs\":[2]}".into());
        drop(store);
        // Simulate a torn write: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"01234567 {\"key\":\"cc\",\"frag").unwrap();
        drop(f);
        let len_before = std::fs::metadata(&path).unwrap().len();

        let reloaded = ResultStore::open(&path);
        assert_eq!(reloaded.recovery().salvaged, 2);
        assert_eq!(reloaded.recovery().discarded, 1);
        assert!(reloaded.fragment("aa").is_some());
        assert!(reloaded.fragment("cc").is_none());
        assert!(
            std::fs::metadata(&path).unwrap().len() < len_before,
            "the torn tail must be truncated away"
        );
        // The truncated journal accepts appends cleanly again.
        reloaded.insert("dd".into(), "{\"runs\":[4]}".into());
        reloaded.flush_journal(true).unwrap();
        drop(reloaded);
        let third = ResultStore::open(&path);
        assert_eq!(third.recovery().salvaged, 3);
        assert_eq!(third.recovery().discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_truncate_at_the_first_bad_record() {
        let dir = std::env::temp_dir().join(format!("dtn_store_flip_{}", std::process::id()));
        let path = dir.join("cache.jsonl");
        let store = ResultStore::open_with(
            &path,
            JournalConfig {
                flush_every: 1,
                ..JournalConfig::default()
            },
        );
        for (k, v) in [("aa", 1), ("bb", 2), ("cc", 3)] {
            store.insert(k.into(), format!("{{\"runs\":[{v}]}}"));
        }
        drop(store);
        // Flip one bit inside the second record's JSON body.
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let second_start = text.match_indices('\n').nth(1).map(|(i, _)| i + 1).unwrap();
        bytes[second_start + 20] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let reloaded = ResultStore::open(&path);
        assert_eq!(reloaded.recovery().salvaged, 1, "only the first record");
        assert_eq!(reloaded.recovery().discarded, 2, "bad record + the rest");
        assert!(reloaded.fragment("aa").is_some());
        assert!(reloaded.fragment("bb").is_none());
        assert!(reloaded.fragment("cc").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_removed_and_counted() {
        let dir = std::env::temp_dir().join(format!("dtn_store_tmp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, "half-written snapshot from a dead daemon").unwrap();
        let store = ResultStore::open(&path);
        assert!(!tmp.exists(), "the orphan must be cleaned up");
        assert_eq!(store.recovery().stale_tmp_removed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let store = ResultStore::in_memory();
        // Three entries of 2 + 10 = 12 bytes each.
        for k in ["aa", "bb", "cc"] {
            store.insert(k.into(), "{\"runs\":1}".into());
        }
        assert_eq!(store.cache_bytes(), 36);
        // Touch "aa" so "bb" becomes the coldest entry.
        assert!(store.lookup("aa").is_some());
        let pass = store.evict(None, Some(24));
        assert_eq!(pass.evicted, 1);
        assert_eq!(pass.expired, 0);
        assert_eq!(pass.bytes, 24);
        assert!(store.fragment("bb").is_none(), "LRU entry must go first");
        assert!(store.fragment("aa").is_some());
        assert!(store.fragment("cc").is_some());
        assert_eq!(store.eviction_counters(), (0, 1));
        // Under budget: a second pass is a no-op.
        assert!(!store.evict(None, Some(64)).removed_any());
    }

    #[test]
    fn ttl_expires_old_entries() {
        let store = ResultStore::in_memory();
        store.insert("aa".into(), "{\"runs\":1}".into());
        std::thread::sleep(Duration::from_millis(30));
        store.insert("bb".into(), "{\"runs\":2}".into());
        let pass = store.evict(Some(Duration::from_millis(15)), None);
        assert_eq!(pass.expired, 1);
        assert!(store.fragment("aa").is_none());
        assert!(store.fragment("bb").is_some());
        assert_eq!(store.eviction_counters(), (1, 0));
    }

    #[test]
    fn eviction_then_persist_compacts_and_survivors_replay_verbatim() {
        let dir = std::env::temp_dir().join(format!("dtn_store_evict_{}", std::process::id()));
        let path = dir.join("cache.jsonl");
        let store = ResultStore::open_with(
            &path,
            JournalConfig {
                flush_every: 1,
                ..JournalConfig::default()
            },
        );
        let fat = format!("{{\"runs\":[{}]}}", "7,".repeat(200) + "7");
        for k in ["aa", "bb", "cc", "dd"] {
            store.insert(k.into(), fat.clone());
        }
        let lines_before = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines_before, 5, "manifest + 4 records");
        // Keep the two hottest entries' worth of bytes.
        assert!(store.lookup("cc").is_some());
        assert!(store.lookup("dd").is_some());
        let budget = 2 * (2 + fat.len() as u64);
        let pass = store.evict(None, Some(budget));
        assert_eq!(pass.evicted, 2);
        assert!(pass.bytes <= budget);
        store.persist().unwrap();
        let lines_after = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines_after, 3, "compaction must drop evicted records");
        // Cold restart: survivors replay verbatim, evictees are gone.
        let reloaded = ResultStore::open(&path);
        assert_eq!(reloaded.fragment("cc").as_deref(), Some(fat.as_str()));
        assert_eq!(reloaded.fragment("dd").as_deref(), Some(fat.as_str()));
        assert!(reloaded.fragment("aa").is_none());
        assert_eq!(reloaded.cache_bytes(), pass.bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_mismatch_discards_the_file() {
        let dir = std::env::temp_dir().join(format!("dtn_store_ver_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let manifest =
            "{\"store\":\"dtn-service\",\"engine\":\"0.0.0+ancient\",\"format\":\"journal-v1\"}";
        let record = "{\"key\":\"aa\",\"fragment\":{\"runs\":[]}}";
        std::fs::write(
            &path,
            format!("{}\n{}\n", frame_line(manifest), frame_line(record)),
        )
        .unwrap();
        let store = ResultStore::open(&path);
        assert_eq!(store.stats().2, 0, "stale engine entries must be dropped");
        assert_eq!(store.recovery().discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
