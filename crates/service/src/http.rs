//! The telemetry sidecar: `GET /metrics` (Prometheus text) and
//! `GET /healthz` for liveness probes, plus the periodic JSONL snapshot
//! writer behind `--telemetry-jsonl`.
//!
//! Both are thin compositions over the crate's shared machinery — the
//! listener is a [`crate::httpd::HttpServer`] with a two-route handler
//! (so the workspace has exactly one HTTP implementation), and the
//! snapshot writer is a [`crate::cron`] task (so the daemon has exactly
//! one periodic-work thread discipline). The sidecar still binds its
//! own port: it can be dropped, firewalled, or omitted without touching
//! the job path, and scrapers polling with plain HTTP/1.0 requests keep
//! working — the shared parser accepts both versions and every response
//! carries `Connection: close`.

use crate::cron::{Cron, CronBuilder};
use crate::httpd::{Handler, HttpLimits, HttpServer};
use dtn_sim::telemetry;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A running metrics HTTP listener.
pub struct MetricsServer {
    server: HttpServer,
}

impl MetricsServer {
    /// Bind `127.0.0.1:port` (port 0 picks a free port) and serve the
    /// global registry until [`MetricsServer::shutdown`].
    pub fn spawn(port: u16) -> std::io::Result<MetricsServer> {
        let handler: Arc<Handler> = Arc::new(|request, responder| {
            if request.method != "GET" {
                let _ = responder.send("405 Method Not Allowed", "text/plain", &[], b"");
                return;
            }
            let _ = match request.path.as_str() {
                "/metrics" => responder.send(
                    "200 OK",
                    "text/plain; version=0.0.4",
                    &[],
                    telemetry::global().render_prometheus().as_bytes(),
                ),
                "/healthz" => responder.send("200 OK", "text/plain", &[], b"ok\n"),
                _ => responder.send("404 Not Found", "text/plain", &[], b""),
            };
        });
        let server = HttpServer::spawn(port, "dtnsimd-http", HttpLimits::default(), handler)?;
        Ok(MetricsServer { server })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(self) {
        self.server.shutdown()
    }
}

/// A periodic task appending one [`telemetry`] JSONL snapshot line to a
/// file every `interval` until shut down (a final line is written on
/// shutdown so short-lived daemons still leave a snapshot).
pub struct TelemetrySnapshotter {
    cron: Option<Cron>,
}

impl TelemetrySnapshotter {
    /// Start appending snapshots of the global registry to `path`.
    pub fn spawn(path: PathBuf, interval: Duration) -> TelemetrySnapshotter {
        let write_line = move || {
            let millis = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            let line = telemetry::global().render_jsonl(millis, false);
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(f, "{line}");
            }
        };
        let cron = CronBuilder::new(0)
            .every_final("telemetry-jsonl", interval, write_line)
            .spawn("dtnsimd-telemetry-jsonl")
            .expect("spawn telemetry snapshotter");
        TelemetrySnapshotter { cron: Some(cron) }
    }

    /// Stop the writer, flushing one final snapshot line.
    pub fn shutdown(mut self) {
        if let Some(cron) = self.cron.take() {
            cron.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpStream;

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Old scrapers speak HTTP/1.0; the shared parser must keep
        // accepting them.
        let request = format!("GET {path} HTTP/1.0\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let reg = dtn_sim::telemetry::global();
        reg.counter("test_http_total", "visible over http", &[])
            .add(9);
        let server = MetricsServer::spawn(0).unwrap();
        let addr = server.local_addr();
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("# TYPE test_http_total counter"));
        assert!(response.contains("test_http_total 9"));
        assert!(http_get(addr, "/healthz").contains("ok"));
        assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn snapshotter_writes_parseable_final_line_on_shutdown() {
        // A labeled counter in the global registry: its series key must
        // not smuggle raw quotes into the JSON object keys.
        dtn_sim::telemetry::global()
            .counter("test_snap_total", "labeled", &[("kind", "x")])
            .add(1);
        let dir = std::env::temp_dir().join(format!("dtn_tel_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tel.jsonl");
        let snap = TelemetrySnapshotter::spawn(path.clone(), Duration::from_secs(3600));
        snap.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().last().unwrap();
        assert!(line.starts_with("{\"ts_unix_millis\":"), "{line}");
        let doc = crate::json::Value::parse(line).expect("snapshot line must be valid JSON");
        for section in ["counters", "gauges", "histograms"] {
            assert!(
                !doc.get(section).expect(section).is_null(),
                "{section} missing in {line}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
