//! The `dtnsimd` HTTP sidecar: a hand-rolled, std-only listener serving
//! the process-global telemetry registry as Prometheus text on
//! `GET /metrics` (plus `GET /healthz` for liveness probes), and a
//! periodic JSONL snapshot writer for `--telemetry-jsonl`.
//!
//! Deliberately tiny: one thread, one connection at a time, HTTP/1.0
//! semantics (`Connection: close` on every response). Scrapers poll on
//! the order of seconds; a concurrent server would be complexity spent
//! on a non-problem. The main wire protocol stays on its own port —
//! this sidecar can be dropped, firewalled, or omitted without touching
//! the job path.

use dtn_sim::telemetry;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A running metrics HTTP listener.
pub struct MetricsServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `127.0.0.1:port` (port 0 picks a free port) and serve the
    /// global registry until [`MetricsServer::shutdown`].
    pub fn spawn(port: u16) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dtnsimd-http".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = serve_one(stream);
                }
            })?;
        Ok(MetricsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Read the request head (just enough to route), answer, close.
fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Read until the blank line ending the head — clients may legally
    // dribble the request across several writes.
    let mut head_bytes = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head_bytes.extend_from_slice(&buf[..n]);
        if head_bytes.windows(4).any(|w| w == b"\r\n\r\n") || head_bytes.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head_bytes);
    let target = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let method_ok = head.starts_with("GET ");
    let (status, content_type, body) = match target {
        _ if !method_ok => ("405 Method Not Allowed", "text/plain", String::new()),
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            telemetry::global().render_prometheus(),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => ("404 Not Found", "text/plain", String::new()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// A background thread appending one [`telemetry`] JSONL snapshot line
/// to a file every `interval` until shut down (a final line is written
/// on shutdown so short-lived daemons still leave a snapshot).
pub struct TelemetrySnapshotter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetrySnapshotter {
    /// Start appending snapshots of the global registry to `path`.
    pub fn spawn(path: PathBuf, interval: Duration) -> TelemetrySnapshotter {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dtnsimd-telemetry-jsonl".to_string())
            .spawn(move || {
                let write_line = |path: &PathBuf| {
                    let millis = SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0);
                    let line = telemetry::global().render_jsonl(millis, false);
                    if let Ok(mut f) = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)
                    {
                        let _ = writeln!(f, "{line}");
                    }
                };
                // Coarse 50 ms poll of the stop flag keeps shutdown
                // prompt without a condvar.
                let tick = Duration::from_millis(50);
                let mut elapsed = Duration::ZERO;
                while !thread_stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        write_line(&path);
                    }
                }
                write_line(&path);
            })
            .expect("spawn telemetry snapshotter");
        TelemetrySnapshotter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the writer, flushing one final snapshot line.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {path} HTTP/1.0\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let reg = dtn_sim::telemetry::global();
        reg.counter("test_http_total", "visible over http", &[])
            .add(9);
        let server = MetricsServer::spawn(0).unwrap();
        let addr = server.local_addr();
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("# TYPE test_http_total counter"));
        assert!(response.contains("test_http_total 9"));
        assert!(http_get(addr, "/healthz").contains("ok"));
        assert!(http_get(addr, "/nope").starts_with("HTTP/1.0 404"));
        server.shutdown();
    }

    #[test]
    fn snapshotter_writes_parseable_final_line_on_shutdown() {
        // A labeled counter in the global registry: its series key must
        // not smuggle raw quotes into the JSON object keys.
        dtn_sim::telemetry::global()
            .counter("test_snap_total", "labeled", &[("kind", "x")])
            .add(1);
        let dir = std::env::temp_dir().join(format!("dtn_tel_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tel.jsonl");
        let snap = TelemetrySnapshotter::spawn(path.clone(), Duration::from_secs(3600));
        snap.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().last().unwrap();
        assert!(line.starts_with("{\"ts_unix_millis\":"), "{line}");
        let doc = crate::json::Value::parse(line).expect("snapshot line must be valid JSON");
        for section in ["counters", "gauges", "histograms"] {
            assert!(
                !doc.get(section).expect(section).is_null(),
                "{section} missing in {line}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
