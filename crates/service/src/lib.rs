//! Simulation-as-a-service for the unified epidemic-routing study.
//!
//! This crate turns the in-process sweep machinery of
//! `dtn-experiments` into a long-running service:
//!
//! * [`daemon`] — the `dtnsimd` daemon: a TCP accept loop, a **bounded**
//!   job queue with explicit reject-and-retry backpressure, and a worker
//!   pool that runs [`dtn_experiments::PointJob`]s under the same
//!   watchdog supervision the local runners use;
//! * [`cache`] — a content-addressed result store: jobs are keyed by a
//!   hash of their canonical description plus the engine version, and
//!   results are stored as verbatim wire bytes so cache hits are
//!   **bit-identical** to fresh computation;
//! * [`wire`] — the length-prefixed JSON framing and the job codec
//!   shared by daemon and client;
//! * [`client`] — the client used by `dtnsim --connect`, which submits
//!   the same per-point jobs a local sweep would run and reassembles an
//!   identical `SweepReport`;
//! * [`http`] — the telemetry sidecar: a std-only HTTP listener serving
//!   the process-global metric registry as Prometheus text on
//!   `GET /metrics`, plus the `--telemetry-jsonl` snapshot writer;
//! * [`json`] — the minimal std-only JSON reader backing the protocol.
//!
//! The load-bearing invariant, checked end to end by `tests/service.rs`:
//! for any sweep, *local run*, *daemon run*, and *daemon re-run served
//! from cache* all produce canonically identical reports, and the cached
//! fragments are byte-identical to the freshly computed ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod http;
pub mod json;
pub mod wire;

pub use cache::{job_key, ResultStore, ENGINE_VERSION};
pub use client::{Client, SubmitTicket};
pub use daemon::{Daemon, DaemonConfig};
pub use http::{MetricsServer, TelemetrySnapshotter};
