//! Simulation-as-a-service for the unified epidemic-routing study.
//!
//! This crate turns the in-process sweep machinery of
//! `dtn-experiments` into a long-running service:
//!
//! * [`daemon`] — the `dtnsimd` daemon: a TCP accept loop, a **bounded**
//!   job queue with explicit reject-and-retry backpressure, and a worker
//!   pool that runs [`dtn_experiments::PointJob`]s under the same
//!   watchdog supervision the local runners use;
//! * [`cache`] — a content-addressed result store: jobs are keyed by a
//!   hash of their canonical description plus the engine version, and
//!   results are stored as verbatim wire bytes so cache hits are
//!   **bit-identical** to fresh computation;
//! * [`wire`] — the length-prefixed JSON framing and the job codec
//!   shared by daemon and client;
//! * [`client`] — the client used by `dtnsim --connect`, which submits
//!   the same per-point jobs a local sweep would run and reassembles an
//!   identical `SweepReport`;
//! * [`resilient`] — the self-healing wrapper around [`client`]:
//!   transparent reconnect, idempotent resubmission (the content-
//!   addressed cache makes redelivery free), and partial-sweep resume;
//! * [`membership`] — the federation's shard table: a consistent-hash
//!   ring over worker daemons plus the per-shard health state machine
//!   (alive → suspect → dead, with revival and operator drain);
//! * [`coordinator`] — the `dtnfedd` coordinator: fronts N `dtnsimd`
//!   workers behind the **same client-facing protocol**, routing jobs
//!   by content address, health-checking shards, failing over the work
//!   of dead ones, and hedging stragglers past a p99-derived deadline;
//! * [`proxy`] — a deterministic fault-injection TCP proxy for chaos
//!   testing the daemon/client pair under drops, delays, mid-frame
//!   truncation, byte corruption, and severed connections;
//! * [`crc`] — the CRC32 shared by wire framing and the cache journal;
//! * [`httpd`] — the crate's one HTTP/1.1 implementation: a bounded
//!   request parser, chunked transfer encoding, a tiny client half, and
//!   the `/v1` gateway that fronts daemon or federation over plain
//!   HTTP/JSON with streaming result delivery;
//! * [`http`] — the telemetry sidecar (`/metrics`, `/healthz`) served
//!   through [`httpd`], plus the `--telemetry-jsonl` snapshot writer;
//! * [`janitor`] — result-cache housekeeping: TTL expiry, byte-budget
//!   LRU eviction, and journal compaction on a periodic sweep;
//! * [`cron`] — the single jittered periodic-task scheduler thread that
//!   drives the janitor, journal flushes, telemetry snapshots, and
//!   stale-`.tmp` sweeps;
//! * [`json`] — the minimal std-only JSON reader backing the protocol.
//!
//! The load-bearing invariant, checked end to end by `tests/service.rs`:
//! for any sweep, *local run*, *daemon run*, and *daemon re-run served
//! from cache* all produce canonically identical reports, and the cached
//! fragments are byte-identical to the freshly computed ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod coordinator;
pub mod crc;
pub mod cron;
pub mod daemon;
pub mod http;
pub mod httpd;
pub mod janitor;
pub mod json;
pub mod membership;
pub mod proxy;
pub mod resilient;
pub mod wire;

pub use cache::{job_key, JournalConfig, RecoveryStats, ResultStore, ENGINE_VERSION};
pub use client::{Client, ClientError, RetryPolicy, SubmitTicket};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use cron::{Cron, CronBuilder};
pub use daemon::{Daemon, DaemonConfig};
pub use http::{MetricsServer, TelemetrySnapshotter};
pub use httpd::{ConnectTarget, Gateway, GatewayConfig, HttpServer};
pub use janitor::{Janitor, JanitorConfig};
pub use membership::{Membership, ShardHealth};
pub use proxy::{FaultProxy, ProxyPlan, UpstreamResolver};
pub use resilient::{HealStats, ResilientClient};
