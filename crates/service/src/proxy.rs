//! A deterministic fault-injection TCP proxy for chaos-testing the
//! daemon/client pair.
//!
//! [`FaultProxy`] sits between a client and `dtnsimd`, forwards the
//! wire protocol **frame by frame** (it understands the length-prefixed
//! framing but deliberately never verifies CRCs — corrupt bytes must
//! reach the peer intact-ly corrupted), and injects faults on a
//! reproducible schedule: every decision is drawn from seeded
//! [`SimRng`] sub-streams, one per connection per fault type, in the
//! same salted-derivation idiom as the simulator's own fault layer
//! (`dtn-core::faults`). Same plan, same seed, same frame sequence →
//! same faults.
//!
//! The fault vocabulary, chosen to exercise every hardening path in the
//! service:
//!
//! * **drop** — swallow a frame and sever both sides (a lost request:
//!   the peer sees a dead connection, never a reply);
//! * **sever** — forward the frame, then cut both sides (the classic
//!   mid-exchange disconnect);
//! * **trunc** — forward a strict prefix of the frame, then cut (a torn
//!   write on the wire: the peer's frame reader must reject, not hang);
//! * **corrupt** — flip a payload byte and forward (the CRC check must
//!   catch it: daemon answers `bad_frame`, client treats it as a dead
//!   connection and heals);
//! * **delay** — sleep before forwarding (exercises deadlines).
//!
//! A plan is parsed from a compact `key=value` comma grammar (see
//! [`ProxyPlan::parse`]); [`FaultProxy::set_upstream`] retargets live —
//! chaos tests use it to point the proxy at a daemon restarted on a new
//! port after a `kill -9`, exactly the "node came back elsewhere"
//! federation story.

use crate::wire::read_raw_frame;
use dtn_sim::SimRng;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Base salt for per-connection fault streams; the connection index is
/// OR-ed into the low bits, then each fault type derives its own
/// sub-stream, so no two decisions share a stream.
const CONN_SALT: u64 = 0xFA01_7000_0002_0000;

/// Upstream dial retries per connection before giving up. Between
/// attempts the resolver (if any) is consulted, so a worker restarted
/// on a new port is picked up mid-dial without a proxy restart.
const DIAL_ATTEMPTS: u32 = 40;

/// Sleep between upstream dial attempts.
const DIAL_RETRY_MS: u64 = 50;

/// Re-resolves the upstream address on demand (e.g. re-reading the
/// `--upstream-file`). Returning `None` keeps the current address.
pub type UpstreamResolver = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// A reproducible fault schedule. Probabilities are per *frame*, both
/// directions; `grace_frames` leading frames of every connection are
/// forwarded untouched so a schedule can let the handshake through.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProxyPlan {
    /// P(swallow the frame and sever both sides).
    pub drop: f64,
    /// P(forward the frame, then sever both sides).
    pub sever: f64,
    /// P(forward a strict prefix of the frame, then sever).
    pub trunc: f64,
    /// P(flip one payload byte, forward the frame).
    pub corrupt: f64,
    /// P(sleep `delay_ms` before forwarding).
    pub delay: f64,
    /// The sleep for a delayed frame.
    pub delay_ms: u64,
    /// Leading frames per connection forwarded fault-free.
    pub grace_frames: u64,
    /// Seed for the fault streams.
    pub seed: u64,
}

impl Default for ProxyPlan {
    fn default() -> ProxyPlan {
        ProxyPlan {
            drop: 0.0,
            sever: 0.0,
            trunc: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_ms: 5,
            grace_frames: 0,
            seed: 0,
        }
    }
}

impl ProxyPlan {
    /// Parse the schedule grammar: a comma-separated `key=value` list
    /// with keys `drop`, `sever`, `trunc`, `corrupt`, `delay`
    /// (probabilities in `[0,1]`), `delay_ms`, `frames` (grace frames),
    /// and `seed` (integers). Unknown keys and malformed values are
    /// errors — a chaos schedule that silently no-ops is worse than one
    /// that fails loudly. The empty string is the fault-free plan.
    ///
    /// Example: `drop=0.05,trunc=0.02,sever=0.1,frames=2,seed=42`.
    pub fn parse(text: &str) -> Result<ProxyPlan, String> {
        let mut plan = ProxyPlan::default();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("plan term `{part}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("plan value `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{v}` outside [0,1]"));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("plan value `{v}` is not an integer"))
            };
            match key.trim() {
                "drop" => plan.drop = prob(value)?,
                "sever" => plan.sever = prob(value)?,
                "trunc" => plan.trunc = prob(value)?,
                "corrupt" => plan.corrupt = prob(value)?,
                "delay" => plan.delay = prob(value)?,
                "delay_ms" => plan.delay_ms = int(value)?,
                "frames" => plan.grace_frames = int(value)?,
                "seed" => plan.seed = int(value)?,
                other => return Err(format!("unknown plan key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Snapshot of what the proxy has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyCounters {
    /// Connections accepted.
    pub connections: u64,
    /// Frames forwarded untouched (including delayed ones).
    pub forwarded: u64,
    /// Frames swallowed (connection severed with them).
    pub dropped: u64,
    /// Connections cut after a forwarded frame.
    pub severed: u64,
    /// Frames truncated mid-frame.
    pub truncated: u64,
    /// Frames forwarded with a flipped byte.
    pub corrupted: u64,
    /// Frames delayed before forwarding.
    pub delayed: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    severed: AtomicU64,
    truncated: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
}

/// The running proxy: an accept loop plus one pump thread per
/// connection. Dropping it does **not** stop it — call
/// [`FaultProxy::shutdown`].
pub struct FaultProxy {
    local_addr: SocketAddr,
    upstream: Arc<Mutex<String>>,
    resolver: Arc<Mutex<Option<UpstreamResolver>>>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Bind `listen` (use port 0 for an ephemeral port), forwarding to
    /// `upstream` under `plan`.
    pub fn spawn(listen: &str, upstream: &str, plan: ProxyPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let upstream = Arc::new(Mutex::new(upstream.to_string()));
        let resolver: Arc<Mutex<Option<UpstreamResolver>>> = Arc::new(Mutex::new(None));
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let upstream = Arc::clone(&upstream);
            let resolver = Arc::clone(&resolver);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut conn_index = 0u64;
                for inbound in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = inbound else { continue };
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let upstream = Arc::clone(&upstream);
                    let resolver = resolver.lock().expect("resolver poisoned").clone();
                    let counters = Arc::clone(&counters);
                    let rng = SimRng::new(plan.seed).derive(CONN_SALT | conn_index);
                    conn_index += 1;
                    std::thread::spawn(move || {
                        pump_connection(client, &upstream, resolver.as_ref(), plan, rng, &counters);
                    });
                }
            })
        };
        Ok(FaultProxy {
            local_addr,
            upstream,
            resolver,
            counters,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Retarget the upstream for *future* connections (live ones keep
    /// their old target until they die — which under a fault plan is
    /// soon). This is how chaos tests follow a daemon restarted on a
    /// new port after `kill -9`.
    pub fn set_upstream(&self, addr: &str) {
        *self.upstream.lock().expect("upstream poisoned") = addr.to_string();
    }

    /// Install an on-demand upstream resolver, consulted when a dial
    /// **fails**: a worker restarted on a new port is picked up by the
    /// very connection that found the old port dead, not only by the
    /// next poll of an address file. The resolved address also updates
    /// the shared upstream, so future connections dial it directly.
    pub fn set_resolver(&self, resolver: UpstreamResolver) {
        *self.resolver.lock().expect("resolver poisoned") = Some(resolver);
    }

    /// Snapshot the fault counters.
    pub fn counters(&self) -> ProxyCounters {
        ProxyCounters {
            connections: self.counters.connections.load(Ordering::Relaxed),
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            severed: self.counters.severed.load(Ordering::Relaxed),
            truncated: self.counters.truncated.load(Ordering::Relaxed),
            corrupted: self.counters.corrupted.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting and join the accept loop. In-flight connection
    /// pumps die with their sockets.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway dial.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Per-connection fault decision streams, one per fault type so
/// enabling one fault never perturbs another's schedule.
struct FaultStreams {
    drop: SimRng,
    sever: SimRng,
    trunc: SimRng,
    corrupt: SimRng,
    delay: SimRng,
}

enum Verdict {
    Forward,
    Delay,
    Corrupt,
    Trunc,
    Drop,
    Sever,
}

/// Decide this frame's fate. Every stream is sampled every frame so the
/// schedule stays aligned regardless of which fault fires first.
fn judge(plan: &ProxyPlan, streams: &mut FaultStreams, frame_index: u64) -> Verdict {
    let drop = streams.drop.bernoulli(plan.drop);
    let sever = streams.sever.bernoulli(plan.sever);
    let trunc = streams.trunc.bernoulli(plan.trunc);
    let corrupt = streams.corrupt.bernoulli(plan.corrupt);
    let delay = streams.delay.bernoulli(plan.delay);
    if frame_index < plan.grace_frames {
        return Verdict::Forward;
    }
    // Most-destructive-first precedence when several fire at once.
    if drop {
        Verdict::Drop
    } else if trunc {
        Verdict::Trunc
    } else if sever {
        Verdict::Sever
    } else if corrupt {
        Verdict::Corrupt
    } else if delay {
        Verdict::Delay
    } else {
        Verdict::Forward
    }
}

/// Forward one frame under the plan. `Ok(true)` keeps the connection,
/// `Ok(false)` (or any error) means both sides must die.
fn relay_frame(
    frame: &[u8],
    out: &mut TcpStream,
    plan: &ProxyPlan,
    streams: &mut FaultStreams,
    frame_index: u64,
    counters: &Counters,
) -> std::io::Result<bool> {
    match judge(plan, streams, frame_index) {
        Verdict::Forward => {
            out.write_all(frame)?;
            counters.forwarded.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        }
        Verdict::Delay => {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
            out.write_all(frame)?;
            counters.delayed.fetch_add(1, Ordering::Relaxed);
            counters.forwarded.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        }
        Verdict::Corrupt => {
            let mut mangled = frame.to_vec();
            // Flip a bit somewhere past the 8-byte header when there is
            // a payload; otherwise mangle the CRC field itself.
            let offset = if mangled.len() > crate::wire::FRAME_HEADER_BYTES {
                let span = (mangled.len() - crate::wire::FRAME_HEADER_BYTES) as u64;
                crate::wire::FRAME_HEADER_BYTES + streams.corrupt.below(span) as usize
            } else {
                4
            };
            mangled[offset] ^= 0x20;
            out.write_all(&mangled)?;
            counters.corrupted.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        }
        Verdict::Trunc => {
            // A strict prefix: at least the first byte, never the whole
            // frame, so the peer always sees a torn frame.
            let keep = 1 + streams.trunc.below(frame.len() as u64 - 1) as usize;
            out.write_all(&frame[..keep])?;
            let _ = out.flush();
            counters.truncated.fetch_add(1, Ordering::Relaxed);
            Ok(false)
        }
        Verdict::Drop => {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            Ok(false)
        }
        Verdict::Sever => {
            out.write_all(frame)?;
            counters.severed.fetch_add(1, Ordering::Relaxed);
            counters.forwarded.fetch_add(1, Ordering::Relaxed);
            Ok(false)
        }
    }
}

/// Pump one client connection: the protocol is strict request/response,
/// so a single thread alternating client→upstream and upstream→client
/// frames is faithful and keeps the fault schedule a pure function of
/// (seed, connection index, frame index).
fn pump_connection(
    mut client: TcpStream,
    upstream_addr: &Arc<Mutex<String>>,
    resolver: Option<&UpstreamResolver>,
    plan: ProxyPlan,
    rng: SimRng,
    counters: &Counters,
) {
    let Some(mut upstream) = dial_upstream(upstream_addr, resolver) else {
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    let mut streams = FaultStreams {
        drop: rng.derive(0),
        sever: rng.derive(1),
        trunc: rng.derive(2),
        corrupt: rng.derive(3),
        delay: rng.derive(4),
    };
    let mut frame_index = 0u64;
    loop {
        // Request leg.
        let Ok(Some(frame)) = read_raw_frame(&mut client) else {
            return;
        };
        let fate = relay_frame(
            &frame,
            &mut upstream,
            &plan,
            &mut streams,
            frame_index,
            counters,
        );
        frame_index += 1;
        if !matches!(fate, Ok(true)) {
            return;
        }
        // Response leg.
        let Ok(Some(reply)) = read_raw_frame(&mut upstream) else {
            return;
        };
        let fate = relay_frame(
            &reply,
            &mut client,
            &plan,
            &mut streams,
            frame_index,
            counters,
        );
        frame_index += 1;
        if !matches!(fate, Ok(true)) {
            return;
        }
    }
}

/// Dial the shared upstream address, re-resolving on connect *failure*
/// (not just on file change): a refused dial is exactly the signal
/// that the worker moved, so ask the resolver for a fresh address
/// before the retry sleep. Bounded by [`DIAL_ATTEMPTS`].
fn dial_upstream(
    upstream_addr: &Arc<Mutex<String>>,
    resolver: Option<&UpstreamResolver>,
) -> Option<TcpStream> {
    for attempt in 0..DIAL_ATTEMPTS {
        let target = upstream_addr.lock().expect("upstream poisoned").clone();
        if let Ok(stream) = TcpStream::connect(&target) {
            return Some(stream);
        }
        if let Some(resolve) = resolver {
            if let Some(fresh) = resolve() {
                if fresh != target {
                    *upstream_addr.lock().expect("upstream poisoned") = fresh;
                    continue; // retry the fresh address immediately
                }
            }
        }
        if attempt + 1 < DIAL_ATTEMPTS {
            std::thread::sleep(Duration::from_millis(DIAL_RETRY_MS));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_grammar_round_trips() {
        let plan = ProxyPlan::parse(
            "drop=0.05, trunc=0.02,sever=0.1,corrupt=0.01,delay=0.5,delay_ms=7,frames=2,seed=42",
        )
        .unwrap();
        assert_eq!(plan.drop, 0.05);
        assert_eq!(plan.trunc, 0.02);
        assert_eq!(plan.sever, 0.1);
        assert_eq!(plan.corrupt, 0.01);
        assert_eq!(plan.delay, 0.5);
        assert_eq!(plan.delay_ms, 7);
        assert_eq!(plan.grace_frames, 2);
        assert_eq!(plan.seed, 42);
        assert_eq!(ProxyPlan::parse("").unwrap(), ProxyPlan::default());
    }

    #[test]
    fn plan_grammar_rejects_garbage() {
        assert!(ProxyPlan::parse("drop").is_err());
        assert!(ProxyPlan::parse("drop=1.5").is_err());
        assert!(ProxyPlan::parse("drop=-0.1").is_err());
        assert!(ProxyPlan::parse("frames=two").is_err());
        assert!(ProxyPlan::parse("chaos=1").is_err());
        assert!(
            ProxyPlan::parse("drop=0.1,,sever=0.2").is_ok(),
            "empty terms are fine"
        );
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = ProxyPlan::parse("drop=0.2,sever=0.2,trunc=0.2,corrupt=0.2,seed=9").unwrap();
        let run = || {
            let rng = SimRng::new(plan.seed).derive(CONN_SALT);
            let mut streams = FaultStreams {
                drop: rng.derive(0),
                sever: rng.derive(1),
                trunc: rng.derive(2),
                corrupt: rng.derive(3),
                delay: rng.derive(4),
            };
            (0..64)
                .map(|i| match judge(&plan, &mut streams, i) {
                    Verdict::Forward => 0u8,
                    Verdict::Delay => 1,
                    Verdict::Corrupt => 2,
                    Verdict::Trunc => 3,
                    Verdict::Drop => 4,
                    Verdict::Sever => 5,
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(
            a.iter().any(|&v| v != 0),
            "a 0.2×4 plan must fire sometimes"
        );
    }

    #[test]
    fn grace_frames_hold_fire() {
        let plan = ProxyPlan::parse("drop=1.0,frames=3,seed=1").unwrap();
        let rng = SimRng::new(plan.seed).derive(CONN_SALT);
        let mut streams = FaultStreams {
            drop: rng.derive(0),
            sever: rng.derive(1),
            trunc: rng.derive(2),
            corrupt: rng.derive(3),
            delay: rng.derive(4),
        };
        for i in 0..3 {
            assert!(matches!(judge(&plan, &mut streams, i), Verdict::Forward));
        }
        assert!(matches!(judge(&plan, &mut streams, 3), Verdict::Drop));
    }
}
