//! The `dtnfedd` coordinator: a fault-tolerant front for N `dtnsimd`
//! worker daemons.
//!
//! The coordinator speaks the **same client-facing wire protocol** as a
//! single daemon — `submit`/`status`/`result`/`cancel`/`stats`/
//! `shutdown` — so `dtnsim --connect`, [`crate::Client`], and
//! [`crate::ResilientClient`] work against a federation unchanged. Jobs
//! route to workers by consistent hashing over their content address
//! ([`crate::job_key`], see [`crate::membership`]), which keeps every
//! job's cache entry shard-local: resubmitting a job lands on the same
//! worker and replays its cached fragment byte-identically.
//!
//! Robustness is the headline, and every mechanism leans on the same
//! invariant the resilient client uses: **submission is idempotent and
//! results are deterministic**, so a job may be dispatched to any
//! number of workers, any number of times, and whichever completion is
//! served first is bit-identical to all the others.
//!
//! * **Health checking** — a prober thread heartbeats every shard on a
//!   jittered interval (seeded [`SimRng`] sub-stream, so schedules are
//!   reproducible), with exponential probe backoff for dead shards.
//!   The state machine lives in [`crate::membership`]; transport
//!   failures on real job traffic feed the same failure counters, so a
//!   dying worker is detected by whichever path touches it first.
//! * **Failover** — when a shard crosses into `Dead`, its unfinished
//!   jobs are re-dispatched to the next live owner on the ring
//!   (eagerly, so queued work resumes before any client asks for it);
//!   a fetch that hits a dead shard re-routes lazily as well. Either
//!   way the re-dispatch is a plain resubmit — duplicated completions
//!   dedupe for free under content addressing.
//! * **Hedging** — a `result wait:true` that outlives a p99-derived
//!   deadline (`hedge_factor` × observed p99 completion latency,
//!   floored at `hedge_min_ms`) dispatches the point to a second shard
//!   and polls both; the first completion wins. Stragglers cost one
//!   redundant computation, never a stalled sweep.
//! * **Graceful degradation** — below `quorum` routable shards the
//!   coordinator stops re-spreading work (a thundering failover onto
//!   the survivors is how one loss becomes an outage): points whose
//!   ring-primary owner is still up drain normally, points owned by
//!   dead shards answer a structured `unreachable` rejection, and the
//!   client reports them missing (`ResilientClient::collect_available`)
//!   instead of hanging — "drain what's reachable, report what's
//!   missing".

use crate::cache::{job_key, ResultStore, ENGINE_VERSION};
use crate::client::{Client, ClientError};
use crate::cron::{Cron, CronBuilder};
use crate::janitor::{Janitor, JanitorConfig};
use crate::json::{escape, Value};
use crate::membership::{Membership, ShardHealth, Transition};
use crate::wire::{
    extract_fragment, is_bad_frame, is_timeout, job_from_value, read_frame_deadline, write_frame,
};
use dtn_sim::telemetry::{self, AtomicHistogram, Clock, Counter, Gauge, MonotonicClock};
use dtn_sim::SimRng;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sub-stream salt for the heartbeat jitter RNG (same address-space
/// convention as the client/proxy fault salts).
const PROBE_SALT: u64 = 0xFA01_7000_0003_0000;

/// Floor on any single blocking wait against a worker, so a hedge
/// deadline already in the past still makes a real request.
const MIN_WAIT_QUANTUM_MS: u64 = 50;

/// Poll quantum per shard once a point is hedged (the loop alternates
/// between the two owners).
const HEDGED_POLL_QUANTUM_MS: u64 = 250;

/// Sleep between re-route attempts while no shard is routable.
const UNROUTABLE_RETRY_MS: u64 = 100;

/// Coordinator tuning knobs.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Initial worker daemon addresses (more can `register` later).
    pub workers: Vec<String>,
    /// Heartbeat probe interval (jittered to `[interval/2, interval]`).
    pub heartbeat_interval_ms: u64,
    /// Per-probe connect/read budget; also bounds worker submits.
    pub probe_timeout_ms: u64,
    /// Consecutive failures before a shard turns Suspect.
    pub suspect_after: u32,
    /// Consecutive failures before a shard turns Dead (fires failover).
    pub dead_after: u32,
    /// Hedge deadline floor.
    pub hedge_min_ms: u64,
    /// Hedge deadline = this × observed p99 completion latency.
    pub hedge_factor: f64,
    /// Routable fraction below which degraded partial-sweep mode kicks
    /// in (no re-spreading; unreachable points answer structured
    /// rejections instead of failing over).
    pub quorum: f64,
    /// Ring points per shard (see [`Membership`]).
    pub virtual_nodes: usize,
    /// Backpressure hint for coordinator-side rejections.
    pub retry_after_ms: u64,
    /// How long a `result wait:true` rides out a total outage (no
    /// routable shard) before answering `unreachable`.
    pub unreachable_grace_ms: u64,
    /// Slowloris guard for client request frames (see [`crate::daemon`]).
    pub frame_deadline_ms: Option<u64>,
    /// Idle client connection timeout.
    pub idle_timeout_secs: Option<u64>,
    /// Client socket write timeout.
    pub write_timeout_secs: Option<u64>,
    /// Seed for the probe-jitter RNG sub-stream.
    pub seed: u64,
    /// Relay-cache TTL: drop memoized result frames older than this
    /// many seconds (`None` disables age-based expiry).
    pub cache_ttl_secs: Option<f64>,
    /// Relay-cache byte budget: evict least-recently-served frames
    /// while the resident set exceeds this (`None` disables).
    pub cache_max_bytes: Option<u64>,
    /// Nominal period between janitor sweeps over the relay cache.
    pub janitor_interval_secs: f64,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: Vec::new(),
            heartbeat_interval_ms: 250,
            probe_timeout_ms: 2_000,
            suspect_after: 2,
            dead_after: 4,
            hedge_min_ms: 2_000,
            hedge_factor: 4.0,
            quorum: 0.5,
            virtual_nodes: 64,
            retry_after_ms: 250,
            unreachable_grace_ms: 60_000,
            frame_deadline_ms: Some(10_000),
            idle_timeout_secs: Some(300),
            write_timeout_secs: Some(30),
            seed: 0,
            cache_ttl_secs: None,
            cache_max_bytes: None,
            janitor_interval_secs: 5.0,
        }
    }
}

/// Telemetry handles for the federation counter families on `/metrics`.
struct FedMetrics {
    connections: Counter,
    submitted: Counter,
    completed: Counter,
    failovers: Counter,
    hedges: Counter,
    redispatches: Counter,
    rejected_no_workers: Counter,
    rejected_unreachable: Counter,
    probes_ok: Counter,
    probes_failed: Counter,
    latency: Arc<AtomicHistogram>,
    inflight: Gauge,
}

impl FedMetrics {
    fn register() -> FedMetrics {
        let reg = telemetry::global();
        let rejections = |reason| {
            reg.counter(
                "dtnfedd_rejections_total",
                "coordinator-side submit rejections",
                reason,
            )
        };
        let probes =
            |result| reg.counter("dtnfedd_probes_total", "heartbeat probe outcomes", result);
        FedMetrics {
            connections: reg.counter(
                "dtnfedd_connections_total",
                "accepted client connections",
                &[],
            ),
            submitted: reg.counter("dtnfedd_submitted_total", "jobs admitted and routed", &[]),
            completed: reg.counter(
                "dtnfedd_completed_total",
                "jobs whose result was served",
                &[],
            ),
            failovers: reg.counter(
                "dtnfedd_failovers_total",
                "jobs moved off a dead/unreachable shard",
                &[],
            ),
            hedges: reg.counter(
                "dtnfedd_hedges_total",
                "straggler points dispatched to a second shard",
                &[],
            ),
            redispatches: reg.counter(
                "dtnfedd_redispatches_total",
                "job re-submissions of any kind (failover + hedge + error retry)",
                &[],
            ),
            rejected_no_workers: rejections(&[("reason", "no_workers")]),
            rejected_unreachable: rejections(&[("reason", "unreachable")]),
            probes_ok: probes(&[("result", "ok")]),
            probes_failed: probes(&[("result", "fail")]),
            latency: reg.histogram(
                "dtnfedd_point_seconds",
                "dispatch-to-served latency per point (the hedge deadline's p99 source)",
                &[],
            ),
            inflight: reg.gauge(
                "dtnfedd_inflight_jobs",
                "jobs dispatched but not yet served",
                &[],
            ),
        }
    }
}

/// Per-shard telemetry handles, registered as shards join. Label values
/// leak (the registry wants `'static`), which is fine for a bounded
/// worker set.
struct ShardSeries {
    completed: Counter,
    healthy: Gauge,
}

fn register_shard_series(addr: &str) -> ShardSeries {
    let reg = telemetry::global();
    let label: &'static str = Box::leak(addr.to_string().into_boxed_str());
    let labels: &'static [(&'static str, &'static str)] =
        Box::leak(vec![("shard", label)].into_boxed_slice());
    ShardSeries {
        completed: reg.counter(
            "dtnfedd_shard_completed_total",
            "results served through this shard",
            labels,
        ),
        healthy: reg.gauge(
            "dtnfedd_shard_routable",
            "1 when this shard accepts new work (alive/suspect), else 0",
            labels,
        ),
    }
}

/// A tracked point: everything needed to re-dispatch it anywhere.
struct FedJob {
    /// Canonical job document (resubmission payload; its hash is the id).
    canonical: String,
    /// Current owner (index into the membership table).
    shard: usize,
    /// Hedge owner while a straggler is raced on two shards.
    hedge: Option<usize>,
    /// Dispatch timestamp (telemetry epoch nanos) for latency + hedging.
    dispatched_nanos: u64,
    /// A result has been served (attribution recorded; refetches are
    /// served without re-counting).
    done: bool,
    /// Worker-side job failures retried on another shard so far.
    error_retries: u32,
}

struct FedShared {
    config: CoordinatorConfig,
    local_addr: std::net::SocketAddr,
    /// Memoized worker `result` frames, keyed by job id and relayed
    /// verbatim — a refetch (healing client, second client, gateway
    /// stream) is served without a worker round-trip. In-memory only:
    /// the workers' own journals are the durable copy.
    relay: Arc<ResultStore>,
    membership: Mutex<Membership>,
    /// Lock order: never acquire `membership` while holding `jobs`.
    jobs: Mutex<HashMap<String, FedJob>>,
    shard_series: Mutex<Vec<ShardSeries>>,
    shutting_down: AtomicBool,
    started: Instant,
    metrics: FedMetrics,
    submitted: AtomicU64,
    completed: AtomicU64,
    failovers: AtomicU64,
    hedges: AtomicU64,
    redispatches: AtomicU64,
    rejected_no_workers: AtomicU64,
    rejected_unreachable: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    inflight: AtomicU64,
}

/// A running coordinator: accept loop, health prober, and the handles
/// to join them.
pub struct Coordinator {
    shared: Arc<FedShared>,
    local_addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    cron: Option<Cron>,
}

impl Coordinator {
    /// Bind, register the initial workers, and start the accept loop
    /// and health prober. Returns as soon as the listener is live.
    pub fn spawn(config: CoordinatorConfig) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let mut membership = Membership::new(
            config.virtual_nodes,
            config.suspect_after,
            config.dead_after,
        );
        let mut series = Vec::new();
        for addr in &config.workers {
            if membership.add(addr).is_some() {
                series.push(register_shard_series(addr));
            }
        }
        let shared = Arc::new(FedShared {
            config: config.clone(),
            local_addr,
            relay: Arc::new(ResultStore::in_memory()),
            membership: Mutex::new(membership),
            jobs: Mutex::new(HashMap::new()),
            shard_series: Mutex::new(series),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            metrics: FedMetrics::register(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            redispatches: AtomicU64::new(0),
            rejected_no_workers: AtomicU64::new(0),
            rejected_unreachable: AtomicU64::new(0),
            probes_ok: AtomicU64::new(0),
            probes_failed: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
        });
        register_fed_gauges(&shared);

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dtnfedd-accept".to_string())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn accept loop")
        };
        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dtnfedd-prober".to_string())
                .spawn(move || health_loop(&shared))
                .expect("spawn health prober")
        };
        // The janitor bounds the relay cache; its telemetry series
        // (including the `dtnfedd_cache_bytes` refresh hook) register
        // even when no bound is configured, so the families always
        // exist on `/metrics`.
        let janitor = Janitor::new(
            Arc::clone(&shared.relay),
            JanitorConfig {
                ttl: config.cache_ttl_secs.map(Duration::from_secs_f64),
                max_bytes: config.cache_max_bytes,
            },
            "dtnfedd",
        );
        let mut cron = CronBuilder::new(config.seed);
        if janitor.config().is_active() {
            cron = cron.every(
                "janitor",
                Duration::from_secs_f64(config.janitor_interval_secs.max(0.05)),
                move || {
                    janitor.sweep();
                },
            );
        }
        let cron = cron.spawn("dtnfedd-cron").expect("spawn cron scheduler");
        Ok(Coordinator {
            shared,
            local_addr,
            accept: Some(accept),
            prober: Some(prober),
            cron: Some(cron),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Wait for shutdown: accept loop gone, prober joined.
    pub fn join(mut self) -> std::io::Result<()> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        if let Some(cron) = self.cron.take() {
            cron.shutdown();
        }
        Ok(())
    }

    /// Request shutdown in-process. Does **not** shut the workers down
    /// (the wire `shutdown` request does, so one `--daemon-shutdown`
    /// against the coordinator stops the whole federation).
    pub fn request_shutdown(&self) {
        begin_shutdown(&self.shared, false);
    }
}

/// Scrape-time hook: per-state worker counts and per-shard routability.
fn register_fed_gauges(shared: &Arc<FedShared>) {
    let reg = telemetry::global();
    let by_state: Vec<(ShardHealth, Gauge)> = [
        ShardHealth::Alive,
        ShardHealth::Suspect,
        ShardHealth::Dead,
        ShardHealth::Draining,
    ]
    .into_iter()
    .map(|health| {
        let labels: &'static [(&'static str, &'static str)] = match health {
            ShardHealth::Alive => &[("state", "alive")],
            ShardHealth::Suspect => &[("state", "suspect")],
            ShardHealth::Dead => &[("state", "dead")],
            ShardHealth::Draining => &[("state", "draining")],
        };
        (
            health,
            reg.gauge(
                "dtnfedd_workers",
                "registered workers by health state",
                labels,
            ),
        )
    })
    .collect();
    let hedge_g = reg.gauge(
        "dtnfedd_hedge_deadline_ms",
        "current p99-derived straggler deadline",
        &[],
    );
    let hook_shared = Arc::clone(shared);
    reg.register_refresh("dtnfedd_derived_gauges", move || {
        let m = hook_shared.membership.lock().expect("membership poisoned");
        for (health, gauge) in &by_state {
            let n = m.shards().iter().filter(|s| s.health == *health).count();
            gauge.set(n as f64);
        }
        let series = hook_shared.shard_series.lock().expect("series poisoned");
        for (shard, handles) in m.shards().iter().zip(series.iter()) {
            handles
                .healthy
                .set(if shard.health.routable() { 1.0 } else { 0.0 });
        }
        drop(series);
        drop(m);
        hedge_g.set(hedge_deadline_ms(&hook_shared) as f64);
    });
}

/// Trip the shutdown flag and poke the accept loop; with `fan_out`,
/// also forward `shutdown` to every registered worker (best-effort).
fn begin_shutdown(shared: &Arc<FedShared>, fan_out: bool) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.local_addr);
    if !fan_out {
        return;
    }
    let addrs: Vec<String> = {
        let m = shared.membership.lock().expect("membership poisoned");
        m.shards().iter().map(|s| s.addr.clone()).collect()
    };
    for addr in addrs {
        if let Ok(mut client) = Client::connect(&addr) {
            let _ = client.shutdown();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<FedShared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.connections.inc();
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("dtnfedd-conn".to_string())
            .spawn(move || serve_connection(stream, &shared));
    }
}

/// Lazily-dialed worker connections, one pool per client connection
/// thread (the protocol is strict request/response, so a pool per
/// thread never interleaves frames). A request that times out poisons
/// its connection — the worker's reply may still arrive — so timed-out
/// connections are dropped, never reused.
struct ShardConns {
    conns: HashMap<String, Client>,
}

impl ShardConns {
    fn new() -> ShardConns {
        ShardConns {
            conns: HashMap::new(),
        }
    }

    fn get(&mut self, addr: &str) -> std::io::Result<&mut Client> {
        if !self.conns.contains_key(addr) {
            let client = Client::connect(addr)?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }

    fn drop_conn(&mut self, addr: &str) {
        self.conns.remove(addr);
    }
}

/// One worker round-trip with a read deadline. Any error drops the
/// connection (transport failures obviously; timeouts because the
/// frame stream is desynchronized).
fn worker_request(
    conns: &mut ShardConns,
    addr: &str,
    payload: &str,
    timeout: Duration,
) -> Result<String, std::io::Error> {
    let client = conns.get(addr)?;
    client.set_read_timeout(Some(timeout))?;
    match client.request_raw(payload) {
        Ok(raw) => Ok(raw),
        Err(ClientError::Transport(e)) => {
            conns.drop_conn(addr);
            Err(e)
        }
        Err(other) => {
            conns.drop_conn(addr);
            Err(std::io::Error::other(other.to_string()))
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<FedShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(shared.config.write_timeout_secs.map(Duration::from_secs));
    let idle = shared.config.idle_timeout_secs.map(Duration::from_secs);
    let frame_deadline = shared.config.frame_deadline_ms.map(Duration::from_millis);
    let mut conns = ShardConns::new();
    loop {
        let raw = match read_frame_deadline(&mut stream, idle, frame_deadline) {
            Ok(Some(raw)) => raw,
            Ok(None) => return,
            Err(e) if is_bad_frame(&e) => {
                let reject = format!(
                    "{{\"type\":\"error\",\"code\":\"bad_frame\",\"message\":\"{}\"}}",
                    escape(&e.to_string())
                );
                let _ = write_frame(&mut stream, &reject);
                return;
            }
            Err(_) => return,
        };
        let response = match Value::parse(&raw) {
            Ok(request) => {
                if request.get("type").and_then(Value::as_str) == Some("shutdown") {
                    // Ack before tripping the flag, exactly like the
                    // daemon: the requester must see its answer.
                    let ack = format!(
                        "{{\"type\":\"shutdown\",\"draining\":{}}}",
                        shared.inflight.load(Ordering::Relaxed)
                    );
                    if write_frame(&mut stream, &ack).is_err() {
                        return;
                    }
                    begin_shutdown(shared, true);
                    continue;
                }
                handle_request(shared, &mut conns, &request)
            }
            Err(e) => error_response(&format!("bad request: {e}")),
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn error_response(message: &str) -> String {
    format!("{{\"type\":\"error\",\"message\":\"{}\"}}", escape(message))
}

fn handle_request(shared: &Arc<FedShared>, conns: &mut ShardConns, request: &Value) -> String {
    match request.get("type").and_then(Value::as_str) {
        Some("submit") => handle_submit(shared, conns, request),
        Some("status") => handle_status(shared, conns, request),
        Some("result") => handle_result(shared, conns, request),
        Some("cancel") => handle_cancel(shared, conns, request),
        Some("stats") => handle_stats(shared),
        Some("register") => handle_register(shared, request),
        Some("drain") => handle_drain(shared, conns, request),
        other => error_response(&format!("unknown request type {other:?}")),
    }
}

fn probe_timeout(shared: &FedShared) -> Duration {
    Duration::from_millis(shared.config.probe_timeout_ms.max(100))
}

/// The straggler deadline: `hedge_factor` × observed p99 completion
/// latency once enough points have landed, floored at `hedge_min_ms`.
fn hedge_deadline_ms(shared: &FedShared) -> u64 {
    let floor = shared.config.hedge_min_ms.max(MIN_WAIT_QUANTUM_MS);
    let snap = shared.metrics.latency.snapshot();
    if snap.count < 16 {
        return floor;
    }
    match snap.quantile(0.99) {
        Some(p99) if p99.is_finite() && p99 > 0.0 => {
            ((p99 * 1000.0 * shared.config.hedge_factor) as u64).max(floor)
        }
        _ => floor,
    }
}

/// Record a transport-level failure against shard `index`; on the
/// Died edge, eagerly re-dispatch its unfinished jobs.
fn note_shard_failure(shared: &Arc<FedShared>, conns: &mut ShardConns, index: usize) {
    let (transition, addr) = {
        let mut m = shared.membership.lock().expect("membership poisoned");
        (m.mark_failure(index), m.shards()[index].addr.clone())
    };
    if transition == Transition::Died {
        eprintln!("dtnfedd: shard {addr} declared dead; re-dispatching its jobs");
        redispatch_dead(shared, conns, index);
    }
}

/// Move every unfinished job owned by `dead` to the next live owner on
/// the ring and resubmit it there (best-effort — a failed resubmit is
/// healed by the fetch loop's `unknown_job` path). Jobs already hedged
/// onto a live shard are promoted instead of re-spread.
fn redispatch_dead(shared: &Arc<FedShared>, conns: &mut ShardConns, dead: usize) {
    struct Move {
        id: String,
        canonical: String,
        addr: String,
        resubmit: bool,
    }
    let moves: Vec<Move> = {
        let m = shared.membership.lock().expect("membership poisoned");
        if m.quorum_lost(shared.config.quorum) {
            // Degraded mode: no re-spreading onto the survivors — the
            // affected points answer `unreachable` until quorum
            // returns (or their shard revives).
            return;
        }
        let mut jobs = shared.jobs.lock().expect("jobs poisoned");
        jobs.iter_mut()
            .filter(|(_, job)| !job.done && (job.shard == dead || job.hedge == Some(dead)))
            .filter_map(|(id, job)| {
                if job.hedge == Some(dead) {
                    job.hedge = None;
                    return None;
                }
                // Promote a live hedge rather than picking a new owner:
                // the hedge shard is already computing this point.
                if let Some(hedge) = job.hedge.take() {
                    if m.shards()[hedge].health.routable() {
                        job.shard = hedge;
                        return Some(Move {
                            id: id.clone(),
                            canonical: String::new(),
                            addr: String::new(),
                            resubmit: false,
                        });
                    }
                }
                let target = m.route_excluding(id, dead)?;
                job.shard = target;
                Some(Move {
                    id: id.clone(),
                    canonical: job.canonical.clone(),
                    addr: m.shards()[target].addr.clone(),
                    resubmit: true,
                })
            })
            .collect()
    };
    if moves.is_empty() {
        return;
    }
    let n = moves.len() as u64;
    shared.failovers.fetch_add(n, Ordering::Relaxed);
    shared.metrics.failovers.add(n);
    let timeout = probe_timeout(shared);
    for mv in &moves {
        if !mv.resubmit {
            continue;
        }
        shared.redispatches.fetch_add(1, Ordering::Relaxed);
        shared.metrics.redispatches.inc();
        let payload = format!("{{\"type\":\"submit\",\"job\":{}}}", mv.canonical);
        let _ = worker_request(conns, &mv.addr, &payload, timeout);
        let _ = mv.id;
    }
}

fn handle_submit(shared: &Arc<FedShared>, conns: &mut ShardConns, request: &Value) -> String {
    let Some(job_doc) = request.get("job") else {
        return error_response("submit without a job document");
    };
    let job = match job_from_value(job_doc) {
        Ok(job) => job,
        Err(e) => return error_response(&format!("invalid job: {e}")),
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        return format!(
            "{{\"type\":\"rejected\",\"reason\":\"shutting_down\",\
             \"retry_after_ms\":{},\"queue_depth\":0}}",
            shared.config.retry_after_ms
        );
    }
    let canonical = job.to_canonical_json();
    let key = job_key(&canonical);

    let mut attempts = 0usize;
    loop {
        // Pick the owner: a tracked job keeps its (routable) assignee so
        // failover decisions stick; otherwise the ring decides. Under
        // quorum loss only ring-primary owners are used — no spreading.
        let routed = {
            let m = shared.membership.lock().expect("membership poisoned");
            if m.routable_count() == 0 {
                None
            } else if m.quorum_lost(shared.config.quorum) {
                match m.route(&key) {
                    // In degraded mode route() still finds a live shard,
                    // but only accept keys whose *healthy-ring* owner
                    // is the same shard the key would hash to anyway —
                    // approximated by: accept only if the first ring
                    // owner overall is routable.
                    Some(owner) => {
                        let jobs = shared.jobs.lock().expect("jobs poisoned");
                        let assigned = jobs.get(&key).map(|j| j.shard);
                        drop(jobs);
                        match assigned {
                            Some(s) if m.shards()[s].health.routable() => {
                                Some((s, m.shards()[s].addr.clone()))
                            }
                            Some(_) => {
                                // Its owner is down and we will not
                                // re-spread: report it missing.
                                return reject_unreachable(shared, &key);
                            }
                            None => Some((owner, m.shards()[owner].addr.clone())),
                        }
                    }
                    None => None,
                }
            } else {
                let jobs = shared.jobs.lock().expect("jobs poisoned");
                let assigned = jobs.get(&key).map(|j| j.shard);
                drop(jobs);
                match assigned {
                    Some(s) if m.shards()[s].health.routable() => {
                        Some((s, m.shards()[s].addr.clone()))
                    }
                    _ => m
                        .route(&key)
                        .map(|owner| (owner, m.shards()[owner].addr.clone())),
                }
            }
        };
        let Some((target, addr)) = routed else {
            shared.rejected_no_workers.fetch_add(1, Ordering::Relaxed);
            shared.metrics.rejected_no_workers.inc();
            return format!(
                "{{\"type\":\"rejected\",\"reason\":\"no_workers\",\
                 \"retry_after_ms\":{},\"queue_depth\":0}}",
                shared.config.retry_after_ms
            );
        };

        let payload = format!("{{\"type\":\"submit\",\"job\":{canonical}}}");
        match worker_request(conns, &addr, &payload, probe_timeout(shared)) {
            Ok(raw) => {
                let accepted = Value::parse(&raw)
                    .ok()
                    .map(|v| v.get("type").and_then(Value::as_str) == Some("accepted"))
                    .unwrap_or(false);
                if accepted {
                    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                    let entry = jobs.entry(key.clone()).or_insert_with(|| {
                        shared.submitted.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.submitted.inc();
                        shared.inflight.fetch_add(1, Ordering::Relaxed);
                        FedJob {
                            canonical: canonical.clone(),
                            shard: target,
                            hedge: None,
                            dispatched_nanos: MonotonicClock::now_nanos(),
                            done: false,
                            error_retries: 0,
                        }
                    });
                    entry.shard = target;
                    shared
                        .metrics
                        .inflight
                        .set(shared.inflight.load(Ordering::Relaxed) as f64);
                }
                // Relay the worker's answer verbatim: accepted carries
                // the identical content-addressed job_id (both sides
                // re-render the same canonical document), and rejected
                // carries the worker's own backpressure hint.
                return raw;
            }
            Err(_) => {
                note_shard_failure(shared, conns, target);
                attempts += 1;
                let shard_count = { shared.membership.lock().expect("membership poisoned").len() };
                if attempts >= shard_count.max(1) {
                    shared.rejected_no_workers.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.rejected_no_workers.inc();
                    return format!(
                        "{{\"type\":\"rejected\",\"reason\":\"no_workers\",\
                         \"retry_after_ms\":{},\"queue_depth\":0}}",
                        shared.config.retry_after_ms
                    );
                }
            }
        }
    }
}

fn reject_unreachable(shared: &Arc<FedShared>, key: &str) -> String {
    shared.rejected_unreachable.fetch_add(1, Ordering::Relaxed);
    shared.metrics.rejected_unreachable.inc();
    format!(
        "{{\"type\":\"rejected\",\"reason\":\"unreachable\",\
         \"job_id\":\"{}\",\"retry_after_ms\":0,\"queue_depth\":0}}",
        escape(key)
    )
}

fn unreachable_error(id: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"code\":\"unreachable\",\"message\":\
         \"point {} is owned by an unreachable shard (quorum lost; partial sweep)\"}}",
        escape(id)
    )
}

fn job_id_of(request: &Value) -> Result<String, String> {
    request
        .get("job_id")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing job_id".to_string())
}

fn handle_status(shared: &Arc<FedShared>, conns: &mut ShardConns, request: &Value) -> String {
    let id = match job_id_of(request) {
        Ok(id) => id,
        Err(e) => return error_response(&e),
    };
    let addr = {
        let jobs = shared.jobs.lock().expect("jobs poisoned");
        let Some(job) = jobs.get(&id) else {
            return format!(
                "{{\"type\":\"status\",\"job_id\":\"{}\",\"state\":\"unknown\"}}",
                escape(&id)
            );
        };
        let shard = job.shard;
        drop(jobs);
        let m = shared.membership.lock().expect("membership poisoned");
        m.shards()[shard].addr.clone()
    };
    let payload = format!("{{\"type\":\"status\",\"job_id\":\"{}\"}}", escape(&id));
    match worker_request(conns, &addr, &payload, probe_timeout(shared)) {
        Ok(raw) => raw,
        // The owner is unreachable right now; the job is effectively
        // queued again (failover will re-dispatch it).
        Err(_) => format!(
            "{{\"type\":\"status\",\"job_id\":\"{}\",\"state\":\"queued\"}}",
            escape(&id)
        ),
    }
}

fn handle_cancel(shared: &Arc<FedShared>, conns: &mut ShardConns, request: &Value) -> String {
    let id = match job_id_of(request) {
        Ok(id) => id,
        Err(e) => return error_response(&e),
    };
    let addr = {
        let jobs = shared.jobs.lock().expect("jobs poisoned");
        let Some(job) = jobs.get(&id) else {
            return format!(
                "{{\"type\":\"cancelled\",\"job_id\":\"{}\",\"cancelled\":false}}",
                escape(&id)
            );
        };
        let shard = job.shard;
        drop(jobs);
        let m = shared.membership.lock().expect("membership poisoned");
        m.shards()[shard].addr.clone()
    };
    let payload = format!("{{\"type\":\"cancel\",\"job_id\":\"{}\"}}", escape(&id));
    match worker_request(conns, &addr, &payload, probe_timeout(shared)) {
        Ok(raw) => raw,
        Err(_) => format!(
            "{{\"type\":\"cancelled\",\"job_id\":\"{}\",\"cancelled\":false}}",
            escape(&id)
        ),
    }
}

/// What one blocking fetch against a worker produced.
enum FetchStep {
    /// The worker's verbatim `result` frame (relay as-is).
    Done(String),
    /// The worker lost its job table (restart) — resubmit, idempotent.
    Unknown,
    /// The worker reports the job itself failed.
    Failed(String),
    /// The read deadline expired — the worker is alive but the point
    /// is a straggler (or still queued behind others).
    TimedOut,
    /// The connection died — the worker is gone.
    Transport,
}

fn fetch_step(conns: &mut ShardConns, addr: &str, id: &str, timeout: Duration) -> FetchStep {
    let payload = format!(
        "{{\"type\":\"result\",\"job_id\":\"{}\",\"wait\":true}}",
        escape(id)
    );
    match worker_request(conns, addr, &payload, timeout) {
        Ok(raw) => {
            if extract_fragment(&raw).is_some() {
                return FetchStep::Done(raw);
            }
            let Ok(parsed) = Value::parse(&raw) else {
                return FetchStep::Failed(format!("unparseable worker response: {raw}"));
            };
            if parsed.get("type").and_then(Value::as_str) == Some("error") {
                if parsed.get("code").and_then(Value::as_str) == Some("unknown_job") {
                    return FetchStep::Unknown;
                }
                return FetchStep::Failed(
                    parsed
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified worker error")
                        .to_string(),
                );
            }
            FetchStep::Failed(format!("unexpected worker response: {raw}"))
        }
        Err(e) if is_timeout(&e) => FetchStep::TimedOut,
        Err(_) => FetchStep::Transport,
    }
}

/// Resubmit a tracked job to `addr` (idempotent; used after
/// `unknown_job` and when arming a hedge).
fn resubmit(shared: &Arc<FedShared>, conns: &mut ShardConns, addr: &str, canonical: &str) -> bool {
    shared.redispatches.fetch_add(1, Ordering::Relaxed);
    shared.metrics.redispatches.inc();
    let payload = format!("{{\"type\":\"submit\",\"job\":{canonical}}}");
    worker_request(conns, addr, &payload, probe_timeout(shared)).is_ok()
}

fn handle_result(shared: &Arc<FedShared>, conns: &mut ShardConns, request: &Value) -> String {
    let id = match job_id_of(request) {
        Ok(id) => id,
        Err(e) => return error_response(&e),
    };
    let wait = request
        .get("wait")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    // Relay-cache hit: a frame already fetched from a worker is served
    // verbatim, with no worker round-trip (healing clients and gateway
    // streams refetch aggressively; the workers shouldn't pay for it).
    if let Some(raw) = shared.relay.fragment(&id) {
        return raw;
    }
    // Unknown points answer `unknown_job` exactly like a restarted
    // daemon: the resilient client resubmits (idempotent) and heals.
    let tracked = {
        let jobs = shared.jobs.lock().expect("jobs poisoned");
        jobs.contains_key(&id)
    };
    if !tracked {
        return format!(
            "{{\"type\":\"error\",\"code\":\"unknown_job\",\"message\":\"unknown job {}\"}}",
            escape(&id)
        );
    }
    let mut unroutable_since: Option<Instant> = None;
    let mut flip = 0u64;
    loop {
        // Snapshot the assignment fresh every pass: the prober's eager
        // failover may have moved the job while we were blocked.
        let (shard, hedge, dispatched_nanos, canonical) = {
            let jobs = shared.jobs.lock().expect("jobs poisoned");
            let job = jobs.get(&id).expect("tracked above; never removed");
            (
                job.shard,
                job.hedge,
                job.dispatched_nanos,
                job.canonical.clone(),
            )
        };
        let (addr, routable, degraded, hedge_addr) = {
            let m = shared.membership.lock().expect("membership poisoned");
            (
                m.shards()[shard].addr.clone(),
                m.shards()[shard].health.routable(),
                m.quorum_lost(shared.config.quorum),
                hedge.map(|h| m.shards()[h].addr.clone()),
            )
        };

        if !routable {
            if degraded {
                // Partial-sweep mode: report the point missing instead
                // of piling it onto the survivors.
                return unreachable_error(&id);
            }
            // Quorum holds: fail over now (the prober's eager pass may
            // not have seen this job yet, or raced our snapshot).
            let target = {
                let m = shared.membership.lock().expect("membership poisoned");
                m.route_excluding(&id, shard)
                    .map(|t| (t, m.shards()[t].addr.clone()))
            };
            match target {
                Some((t, taddr)) => {
                    let moved = {
                        let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                        let job = jobs.get_mut(&id).expect("tracked");
                        if job.shard == shard {
                            job.shard = t;
                            job.hedge = None;
                            true
                        } else {
                            false // someone else already moved it
                        }
                    };
                    if moved {
                        shared.failovers.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.failovers.inc();
                        resubmit(shared, conns, &taddr, &canonical);
                    }
                    continue;
                }
                None => {
                    let since = *unroutable_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= Duration::from_millis(shared.config.unreachable_grace_ms)
                    {
                        return unreachable_error(&id);
                    }
                    std::thread::sleep(Duration::from_millis(UNROUTABLE_RETRY_MS));
                    continue;
                }
            }
        }
        unroutable_since = None;

        if !wait {
            let payload = format!(
                "{{\"type\":\"result\",\"job_id\":\"{}\",\"wait\":false}}",
                escape(&id)
            );
            return match worker_request(conns, &addr, &payload, probe_timeout(shared)) {
                Ok(raw) => raw,
                Err(_) => {
                    note_shard_failure(shared, conns, shard);
                    format!(
                        "{{\"type\":\"status\",\"job_id\":\"{}\",\"state\":\"queued\"}}",
                        escape(&id)
                    )
                }
            };
        }

        // Pick this pass's target and wait quantum. Unhedged: block on
        // the owner until the hedge deadline. Hedged: alternate short
        // polls between the two owners; first completion wins.
        let elapsed_ms = (MonotonicClock::now_nanos().saturating_sub(dispatched_nanos)) / 1_000_000;
        let deadline_ms = hedge_deadline_ms(shared);
        if hedge.is_none() && elapsed_ms >= deadline_ms {
            // Straggler: arm a hedge on the next live owner.
            let target = {
                let m = shared.membership.lock().expect("membership poisoned");
                m.route_excluding(&id, shard)
                    .map(|t| (t, m.shards()[t].addr.clone()))
            };
            if let Some((t, taddr)) = target {
                let armed = {
                    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                    let job = jobs.get_mut(&id).expect("tracked");
                    if job.hedge.is_none() && job.shard == shard {
                        job.hedge = Some(t);
                        true
                    } else {
                        false
                    }
                };
                if armed {
                    shared.hedges.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.hedges.inc();
                    resubmit(shared, conns, &taddr, &canonical);
                }
                continue;
            }
            // No second owner available: keep waiting on the only one.
        }
        let (step_shard, step_addr, quantum_ms) = match &hedge_addr {
            None => {
                let remaining = deadline_ms.saturating_sub(elapsed_ms);
                (shard, addr.clone(), remaining.max(MIN_WAIT_QUANTUM_MS))
            }
            Some(haddr) => {
                flip += 1;
                if flip % 2 == 1 {
                    (shard, addr.clone(), HEDGED_POLL_QUANTUM_MS)
                } else {
                    (
                        hedge.expect("addr implies index"),
                        haddr.clone(),
                        HEDGED_POLL_QUANTUM_MS,
                    )
                }
            }
        };

        match fetch_step(conns, &step_addr, &id, Duration::from_millis(quantum_ms)) {
            FetchStep::Done(raw) => {
                // A relay serve IS a cache hit from the refetcher's
                // point of view, even when this first fetch computed
                // fresh. The envelope's `cached` member precedes the
                // fragment (job ids are hex), so the first match is
                // always the envelope and the fragment bytes stay
                // verbatim.
                let memo = raw.replacen("\"cached\":false", "\"cached\":true", 1);
                shared.relay.insert(id.clone(), memo);
                let first = {
                    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                    let job = jobs.get_mut(&id).expect("tracked");
                    let first = !job.done;
                    job.done = true;
                    job.hedge = None;
                    job.shard = step_shard;
                    first
                };
                if first {
                    let latency_secs =
                        (MonotonicClock::now_nanos().saturating_sub(dispatched_nanos)) as f64
                            * 1e-9;
                    shared.metrics.latency.record(latency_secs);
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.completed.inc();
                    let inflight = shared
                        .inflight
                        .fetch_sub(1, Ordering::Relaxed)
                        .saturating_sub(1);
                    shared.metrics.inflight.set(inflight as f64);
                    {
                        let mut m = shared.membership.lock().expect("membership poisoned");
                        m.shard_mut(step_shard).completed += 1;
                        m.mark_ok(step_shard);
                    }
                    let series = shared.shard_series.lock().expect("series poisoned");
                    if let Some(handles) = series.get(step_shard) {
                        handles.completed.inc();
                    }
                }
                return raw;
            }
            FetchStep::Unknown => {
                // The worker restarted (or a best-effort re-dispatch
                // never landed): resubmit there and keep waiting.
                resubmit(shared, conns, &step_addr, &canonical);
            }
            FetchStep::Failed(message) => {
                // A failure can be load-local (shed under a queue
                // deadline): give the point one run on a different
                // shard before relaying the failure.
                let retryable = {
                    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                    let job = jobs.get_mut(&id).expect("tracked");
                    if job.error_retries == 0 {
                        job.error_retries = 1;
                        true
                    } else {
                        false
                    }
                };
                let target = {
                    let m = shared.membership.lock().expect("membership poisoned");
                    m.route_excluding(&id, step_shard)
                        .map(|t| (t, m.shards()[t].addr.clone()))
                };
                match (retryable, target) {
                    (true, Some((t, taddr))) => {
                        {
                            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                            let job = jobs.get_mut(&id).expect("tracked");
                            job.shard = t;
                            job.hedge = None;
                        }
                        resubmit(shared, conns, &taddr, &canonical);
                    }
                    _ => return error_response(&format!("job {id} failed: {message}")),
                }
            }
            FetchStep::TimedOut => {
                // Straggler (or deep queue): the next pass arms the
                // hedge / keeps polling.
            }
            FetchStep::Transport => {
                note_shard_failure(shared, conns, step_shard);
                if Some(step_shard) == hedge {
                    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                    if let Some(job) = jobs.get_mut(&id) {
                        if job.hedge == Some(step_shard) {
                            job.hedge = None;
                        }
                    }
                } else if let Some(h) = hedge {
                    // Primary died mid-race: promote the hedge.
                    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                    if let Some(job) = jobs.get_mut(&id) {
                        if job.shard == step_shard {
                            job.shard = h;
                            job.hedge = None;
                            shared.failovers.fetch_add(1, Ordering::Relaxed);
                            shared.metrics.failovers.inc();
                        }
                    }
                }
                // Unhedged primary death re-routes at the top of the
                // loop via the routable check / lazy failover.
            }
        }
    }
}

fn handle_register(shared: &Arc<FedShared>, request: &Value) -> String {
    let Some(addr) = request.get("addr").and_then(Value::as_str) else {
        return error_response("register without an addr");
    };
    let known = {
        let mut m = shared.membership.lock().expect("membership poisoned");
        match m.add(addr) {
            Some(_) => {
                let mut series = shared.shard_series.lock().expect("series poisoned");
                series.push(register_shard_series(addr));
                false
            }
            None => true,
        }
    };
    if !known {
        eprintln!("dtnfedd: worker {addr} registered");
    }
    let workers = shared.membership.lock().expect("membership poisoned").len();
    format!(
        "{{\"type\":\"registered\",\"addr\":\"{}\",\"known\":{known},\"workers\":{workers}}}",
        escape(addr)
    )
}

/// Operator drain via the coordinator: stop routing to `addr` and tell
/// the worker itself to bounce direct submits. `resume:true` reverses
/// both.
fn handle_drain(shared: &Arc<FedShared>, conns: &mut ShardConns, request: &Value) -> String {
    let Some(addr) = request.get("addr").and_then(Value::as_str) else {
        return error_response("drain without an addr (which worker?)");
    };
    let resume = request
        .get("resume")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let index = {
        let mut m = shared.membership.lock().expect("membership poisoned");
        let Some(index) = m.shards().iter().position(|s| s.addr == addr) else {
            return error_response(&format!("unknown worker {addr}"));
        };
        m.set_draining(index, !resume);
        index
    };
    let _ = index;
    let payload = format!("{{\"type\":\"drain\",\"resume\":{resume}}}");
    match worker_request(conns, addr, &payload, probe_timeout(shared)) {
        Ok(raw) => raw,
        Err(e) => error_response(&format!("worker {addr} unreachable for drain: {e}")),
    }
}

fn handle_stats(shared: &Arc<FedShared>) -> String {
    let uptime = shared.started.elapsed().as_secs_f64();
    let (shards_json, routable, total) = {
        let m = shared.membership.lock().expect("membership poisoned");
        let mut out = String::from("[");
        for (i, shard) in m.shards().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"addr\":\"{}\",\"state\":\"{}\",\"completed\":{},\
                 \"probes_ok\":{},\"probes_failed\":{}}}",
                escape(&shard.addr),
                shard.health.as_str(),
                shard.completed,
                shard.probes_ok,
                shard.probes_failed,
            ));
        }
        out.push(']');
        (out, m.routable_count(), m.len())
    };
    let degraded = {
        let m = shared.membership.lock().expect("membership poisoned");
        m.quorum_lost(shared.config.quorum)
    };
    format!(
        "{{\"type\":\"stats\",\"engine\":\"{}\",\"role\":\"coordinator\",\
         \"workers\":{total},\"routable_workers\":{routable},\"degraded\":{degraded},\
         \"submitted\":{},\"completed\":{},\"inflight\":{},\
         \"failovers\":{},\"hedges\":{},\"redispatches\":{},\
         \"rejected_no_workers\":{},\"rejected_unreachable\":{},\
         \"probes_ok\":{},\"probes_failed\":{},\
         \"relay_hits\":{},\"relay_misses\":{},\"relay_entries\":{},\
         \"cache_expired\":{},\"cache_evictions\":{},\"cache_bytes\":{},\
         \"hedge_deadline_ms\":{},\"uptime_secs\":{uptime},\
         \"shards\":{shards_json}}}",
        escape(ENGINE_VERSION),
        shared.submitted.load(Ordering::Relaxed),
        shared.completed.load(Ordering::Relaxed),
        shared.inflight.load(Ordering::Relaxed),
        shared.failovers.load(Ordering::Relaxed),
        shared.hedges.load(Ordering::Relaxed),
        shared.redispatches.load(Ordering::Relaxed),
        shared.rejected_no_workers.load(Ordering::Relaxed),
        shared.rejected_unreachable.load(Ordering::Relaxed),
        shared.probes_ok.load(Ordering::Relaxed),
        shared.probes_failed.load(Ordering::Relaxed),
        shared.relay.stats().0,
        shared.relay.stats().1,
        shared.relay.stats().2,
        shared.relay.eviction_counters().0,
        shared.relay.eviction_counters().1,
        shared.relay.cache_bytes(),
        hedge_deadline_ms(shared),
    )
}

/// One heartbeat probe: fresh connection, bounded connect/read, parse
/// the ack's `draining` flag.
fn probe_worker(addr: &str, timeout: Duration) -> std::io::Result<bool> {
    let sockaddr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, "{\"type\":\"heartbeat\"}")?;
    let raw = crate::wire::read_frame(&mut stream)?
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no ack"))?;
    let parsed =
        Value::parse(&raw).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    if parsed.get("type").and_then(Value::as_str) != Some("heartbeat_ack") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected heartbeat answer: {raw}"),
        ));
    }
    Ok(parsed
        .get("draining")
        .and_then(Value::as_bool)
        .unwrap_or(false))
}

/// The prober: heartbeat every shard on a jittered interval, walking
/// the membership state machine and firing eager failover on death.
/// Dead shards are probed with exponential backoff ([`Membership`]
/// tracks the skip counter) so a long-gone worker is not hammered —
/// and a revived one is re-admitted within a few intervals.
fn health_loop(shared: &Arc<FedShared>) {
    let mut rng = SimRng::new(shared.config.seed).derive(PROBE_SALT);
    let mut conns = ShardConns::new();
    let timeout = probe_timeout(shared);
    while !shared.shutting_down.load(Ordering::SeqCst) {
        let count = shared.membership.lock().expect("membership poisoned").len();
        for index in 0..count {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            let addr = {
                let mut m = shared.membership.lock().expect("membership poisoned");
                let shard = m.shard_mut(index);
                if shard.skip_ticks > 0 {
                    shard.skip_ticks -= 1;
                    None
                } else {
                    Some(shard.addr.clone())
                }
            };
            let Some(addr) = addr else { continue };
            match probe_worker(&addr, timeout) {
                Ok(draining) => {
                    shared.probes_ok.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.probes_ok.inc();
                    let mut m = shared.membership.lock().expect("membership poisoned");
                    let was = m.shards()[index].health;
                    let transition = m.mark_ok(index);
                    if draining {
                        m.set_draining(index, true);
                    }
                    drop(m);
                    if transition == Transition::Revived && was == ShardHealth::Dead {
                        eprintln!("dtnfedd: shard {addr} revived");
                    }
                }
                Err(_) => {
                    shared.probes_failed.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.probes_failed.inc();
                    let transition = {
                        let mut m = shared.membership.lock().expect("membership poisoned");
                        m.mark_failure(index)
                    };
                    if transition == Transition::Died {
                        eprintln!(
                            "dtnfedd: shard {addr} declared dead (missed probes); \
                             re-dispatching its jobs"
                        );
                        redispatch_dead(shared, &mut conns, index);
                    }
                }
            }
        }
        // Jittered interval in [interval/2, interval], slept in short
        // chunks so shutdown stays prompt.
        let interval = shared.config.heartbeat_interval_ms.max(20);
        let mut remaining = rng.range_inclusive(interval / 2, interval);
        while remaining > 0 && !shared.shutting_down.load(Ordering::SeqCst) {
            let chunk = remaining.min(25);
            std::thread::sleep(Duration::from_millis(chunk));
            remaining -= chunk;
        }
    }
}
