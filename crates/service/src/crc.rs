//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
//! framing both the wire protocol and the cache journal use to detect
//! corrupted frames and torn or bit-flipped journal records.
//!
//! The table is built in a `const` context so the whole module is
//! allocation-free and costs nothing at startup. This is the same CRC
//! variant as zlib/`cksum -o 3`, which makes journal records checkable
//! with standard tooling when debugging a corrupted cache file by hand.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_byte_corruption() {
        let original = b"{\"key\":\"deadbeef\",\"fragment\":{\"runs\":[1,2,3]}}";
        let reference = crc32(original);
        let mut copy = original.to_vec();
        for i in 0..copy.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                copy[i] ^= flip;
                assert_ne!(crc32(&copy), reference, "flip {flip:#x} at byte {i}");
                copy[i] ^= flip;
            }
        }
    }
}
