//! Property-based tests for the mobility substrate.

use dtn_mobility::rwp::merge_intervals;
use dtn_mobility::trace_io::{parse_trace_str, write_trace_string};
use dtn_mobility::{
    Contact, ContactTrace, HaggleParams, IntervalScenario, NodeId, SubscriberParams,
};
use dtn_sim::{SimRng, SimTime};
use proptest::prelude::*;

/// Strategy: a structurally valid contact list over `nodes` nodes.
fn arb_contacts(nodes: u16, max_len: usize) -> impl Strategy<Value = Vec<Contact>> {
    prop::collection::vec(
        (0..nodes, 0..nodes, 0u64..100_000, 1u64..10_000).prop_filter_map(
            "self contacts are invalid",
            |(a, b, start, len)| {
                (a != b).then(|| {
                    Contact::new(
                        NodeId(a),
                        NodeId(b),
                        SimTime::from_secs(start),
                        SimTime::from_secs(start + len),
                    )
                })
            },
        ),
        0..max_len,
    )
}

proptest! {
    /// Any valid contact list round-trips exactly through the text format.
    #[test]
    fn trace_io_round_trip(contacts in arb_contacts(12, 60)) {
        let trace = ContactTrace::new(12, SimTime::from_secs(200_000), contacts).unwrap();
        let text = write_trace_string(&trace);
        let back = parse_trace_str(&text).unwrap();
        prop_assert_eq!(back.node_count(), trace.node_count());
        prop_assert_eq!(back.horizon(), trace.horizon());
        prop_assert_eq!(back.contacts(), trace.contacts());
    }

    /// Millisecond-resolution times survive the text format exactly: the
    /// writer prints fractional seconds and the parser must recover the
    /// same `SimTime` down to the millisecond (the service layer's
    /// bit-identical cache contract leans on this for trace-backed runs).
    #[test]
    fn trace_io_round_trips_millisecond_times(
        raw in prop::collection::vec(
            (0u16..12, 1u16..12, 0u64..100_000_000, 1u64..10_000_000),
            1..40,
        ),
    ) {
        let contacts: Vec<Contact> = raw
            .into_iter()
            .map(|(a, delta, start_ms, len_ms)| {
                // b = a + delta mod 12 with delta in 1..12: never a self
                // contact, so no filtering can empty the list.
                Contact::new(
                    NodeId(a),
                    NodeId((a + delta) % 12),
                    SimTime::from_millis(start_ms),
                    SimTime::from_millis(start_ms + len_ms),
                )
            })
            .collect();
        let trace =
            ContactTrace::new(12, SimTime::from_millis(200_000_000), contacts).unwrap();
        let text = write_trace_string(&trace);
        let back = parse_trace_str(&text).unwrap();
        prop_assert_eq!(back.horizon(), trace.horizon());
        prop_assert_eq!(back.contacts(), trace.contacts());
        // And the round trip is a fixed point: re-serializing the parsed
        // trace reproduces the file byte for byte.
        prop_assert_eq!(write_trace_string(&back), text);
    }

    /// The trace constructor sorts without losing or inventing contacts.
    #[test]
    fn trace_is_sorted_permutation(contacts in arb_contacts(8, 60)) {
        let n = contacts.len();
        let trace = ContactTrace::new(8, SimTime::from_secs(200_000), contacts.clone()).unwrap();
        prop_assert_eq!(trace.len(), n);
        for w in trace.contacts().windows(2) {
            prop_assert!((w[0].start, w[0].a, w[0].b) <= (w[1].start, w[1].a, w[1].b));
        }
        let mut expected = contacts;
        expected.sort_by_key(|c| (c.start, c.a, c.b));
        prop_assert_eq!(trace.contacts(), &expected[..]);
    }

    /// Inter-contact gaps are consistent with encounter counts: a node
    /// with k encounters has at most k-1 gaps.
    #[test]
    fn gaps_bounded_by_encounters(contacts in arb_contacts(8, 60)) {
        let trace = ContactTrace::new(8, SimTime::from_secs(200_000), contacts).unwrap();
        let counts = trace.encounter_counts();
        let gaps = trace.intercontact_gaps();
        for (node, node_gaps) in gaps.iter().enumerate() {
            prop_assert!(node_gaps.len() == counts[node].saturating_sub(1));
        }
    }

    /// Temporal reachability is monotone in the start time: starting later
    /// can never reach MORE nodes.
    #[test]
    fn reachability_monotone_in_start(contacts in arb_contacts(8, 40), from in 0u64..50_000) {
        let trace = ContactTrace::new(8, SimTime::from_secs(200_000), contacts).unwrap();
        let early = trace.temporal_reachability(NodeId(0), SimTime::ZERO);
        let late = trace.temporal_reachability(NodeId(0), SimTime::from_secs(from));
        for (e, l) in early.iter().zip(late.iter()) {
            prop_assert!(*e || !*l, "late reach must be a subset of early reach");
        }
    }

    /// merge_intervals output is sorted, disjoint (beyond the 1 ms join
    /// epsilon) and covers exactly the union of the input.
    #[test]
    fn merge_intervals_is_a_union(
        raw in prop::collection::vec((0.0f64..1_000.0, 0.01f64..100.0), 0..40),
    ) {
        let intervals: Vec<(f64, f64)> = raw.iter().map(|&(s, l)| (s, s + l)).collect();
        let merged = merge_intervals(intervals.clone());
        // Sorted and disjoint.
        for w in merged.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "overlap after merge: {:?}", w);
        }
        // Every input point stays covered; sample each input interval.
        for &(s, e) in &intervals {
            for p in [s, (s + e) / 2.0, e - 1e-9] {
                prop_assert!(
                    merged.iter().any(|&(ms, me)| ms <= p && p <= me),
                    "point {p} lost"
                );
            }
        }
        // Total measure never grows beyond the sum of inputs.
        let merged_len: f64 = merged.iter().map(|&(s, e)| e - s).sum();
        let input_len: f64 = intervals.iter().map(|&(s, e)| e - s).sum();
        prop_assert!(merged_len <= input_len + 1e-3 * intervals.len() as f64);
    }

    /// The synthetic Haggle generator always yields well-formed traces
    /// across its parameter space.
    #[test]
    fn haggle_generator_is_well_formed(
        seed in any::<u64>(),
        nodes in 2usize..8,
        gap_min in 100.0f64..5_000.0,
        alpha in 0.2f64..1.5,
    ) {
        let params = HaggleParams {
            nodes,
            horizon: SimTime::from_secs(100_000),
            gap_min_s: gap_min,
            gap_max_s: gap_min * 50.0,
            gap_alpha: alpha,
            ..HaggleParams::default()
        };
        let trace = params.generate(&mut SimRng::new(seed));
        prop_assert_eq!(trace.node_count(), nodes);
        for c in trace.contacts() {
            prop_assert!(c.a < c.b);
            prop_assert!(c.start < c.end);
            prop_assert!(c.end <= trace.horizon());
        }
    }

    /// The subscriber-point model respects its contact cap and universe
    /// for any seed.
    #[test]
    fn subscriber_generator_is_well_formed(seed in any::<u64>(), points in 2usize..40) {
        let params = SubscriberParams {
            points,
            horizon: SimTime::from_secs(50_000),
            ..SubscriberParams::default()
        };
        let trace = params.generate(&mut SimRng::new(seed));
        for c in trace.contacts() {
            prop_assert!(c.duration() <= params.contact_cap);
            prop_assert!(c.a.index() < params.nodes && c.b.index() < params.nodes);
        }
    }

    /// The trace parser never panics: arbitrary byte soup either parses
    /// or yields a structured error.
    #[test]
    fn parser_never_panics_on_garbage(input in "\\PC{0,400}") {
        let _ = parse_trace_str(&input);
    }

    /// Near-miss inputs (valid-looking lines with one field corrupted)
    /// yield `Malformed` errors carrying the right line number.
    #[test]
    fn parser_reports_the_corrupted_line(
        good_lines in 0usize..5,
        corruption in prop_oneof![
            Just("x 1 0 5"),
            Just("0 0 0 5"),
            Just("0 1 9 3"),
            Just("0 1"),
            Just("% bogus 7"),
        ],
    ) {
        let mut text = String::new();
        for i in 0..good_lines {
            text.push_str(&format!("0 1 {} {}\n", i * 100, i * 100 + 50));
        }
        text.push_str(corruption);
        text.push('\n');
        match parse_trace_str(&text) {
            Err(dtn_mobility::TraceError::Malformed { line, .. }) => {
                prop_assert_eq!(line, good_lines + 1);
            }
            other => prop_assert!(false, "expected Malformed, got {:?}", other.is_ok()),
        }
    }

    /// The interval scenario respects every node's encounter budget for
    /// any seed and interval bound.
    #[test]
    fn interval_scenario_respects_budget(seed in any::<u64>(), max_gap in 100u64..5_000) {
        let scenario = IntervalScenario::with_max_interval(max_gap);
        let trace = scenario.generate(&mut SimRng::new(seed));
        for count in trace.encounter_counts() {
            prop_assert!(count <= scenario.encounters_per_node);
        }
        // Per-pair intervals do not overlap for the same node: checked via
        // validity of the trace itself (sorted, positive durations).
        for c in trace.contacts() {
            prop_assert!(c.start < c.end);
        }
    }
}
