//! Controlled-interval scenarios (Fig. 14) and scenario plumbing.
//!
//! Section V-B1 of the paper isolates the effect of the encounter interval
//! on fixed-TTL epidemic routing with two purpose-built scenarios:
//!
//! > "Both scenarios include 20 nodes, each of which has at most 20
//! > encounters with other nodes. The only difference between these two
//! > scenarios is that the interval time between two successive encounters
//! > is set to a maximum of 400 and 2000 seconds respectively."
//!
//! [`IntervalScenario`] builds exactly that: every node participates in a
//! bounded number of encounters, and the gap between a node's successive
//! encounters is drawn uniformly from `[interval_min, interval_max]`.
//! Encounters are paired up greedily on a per-node clock; when the two
//! participants' clocks disagree the encounter starts at the later of the
//! two, so a node's realized gap can exceed its drawn gap by the
//! synchronization slack — the drawn bound is what the paper's "maximum"
//! refers to, and the test suite checks the realized distribution tracks
//! the configured bound (median well under it, and scaling with it).

use crate::contact::{Contact, ContactTrace, NodeId};
use dtn_sim::{SimDuration, SimRng, SimTime};

/// Parameters for the Fig. 14 controlled-interval scenario.
#[derive(Clone, Debug)]
pub struct IntervalScenario {
    /// Number of nodes (paper: 20).
    pub nodes: usize,
    /// Per-node encounter budget (paper: at most 20).
    pub encounters_per_node: usize,
    /// Smallest inter-encounter gap.
    pub interval_min: SimDuration,
    /// Largest inter-encounter gap — the scenario's headline knob
    /// (paper: 400 s vs 2000 s).
    pub interval_max: SimDuration,
    /// Encounter duration range (long enough to carry a few 100 s bundles).
    pub duration_min: SimDuration,
    /// Upper end of the encounter duration range.
    pub duration_max: SimDuration,
}

impl IntervalScenario {
    /// The paper's scenario with the given maximum interval (400 or 2000 s).
    pub fn with_max_interval(interval_max_s: u64) -> Self {
        IntervalScenario {
            nodes: 20,
            encounters_per_node: 20,
            interval_min: SimDuration::from_secs(50),
            interval_max: SimDuration::from_secs(interval_max_s),
            duration_min: SimDuration::from_secs(100),
            duration_max: SimDuration::from_secs(300),
        }
    }

    fn validate(&self) {
        assert!(self.nodes >= 2);
        assert!(self.encounters_per_node >= 1);
        assert!(self.interval_min <= self.interval_max);
        assert!(!self.duration_min.is_zero());
        assert!(self.duration_min <= self.duration_max);
    }

    /// Generate the contact trace.
    pub fn generate(&self, rng: &mut SimRng) -> ContactTrace {
        self.validate();
        let n = self.nodes;
        // Per-node state: time at which the node becomes ready for its next
        // encounter (its previous encounter's end plus its drawn gap), and
        // its remaining encounter budget.
        let mut ready: Vec<SimTime> = (0..n)
            .map(|_| SimTime::ZERO + rng.duration_in(self.interval_min, self.interval_max))
            .collect();
        let mut budget = vec![self.encounters_per_node; n];
        let mut contacts = Vec::new();

        // The node that has waited longest goes next (deterministic
        // tie-break by id).
        while let Some(a) = (0..n)
            .filter(|&i| budget[i] > 0)
            .min_by_key(|&i| (ready[i], i))
        {
            // Partner: among the three nodes whose ready times are closest
            // to `a`'s, pick one at random. Choosing near-ready partners
            // keeps the synchronization slack small, so realized gaps
            // track the configured `[interval_min, interval_max]` bound —
            // the knob Fig. 14 turns — while the random pick among the
            // nearest few still mixes pairings.
            let mut peers: Vec<usize> = (0..n).filter(|&i| i != a && budget[i] > 0).collect();
            if peers.is_empty() {
                break;
            }
            peers.sort_by_key(|&i| (ready[i], i));
            peers.truncate(3);
            let b = *rng.choose(&peers);
            let start = ready[a].max(ready[b]);
            let dur = rng.duration_in(self.duration_min, self.duration_max);
            let end = start + dur;
            contacts.push(Contact::new(NodeId(a as u16), NodeId(b as u16), start, end));
            budget[a] -= 1;
            budget[b] -= 1;
            // "The interval time between two successive encounters" is the
            // start-to-start spacing; the next encounter cannot begin
            // before this one ends.
            ready[a] = end.max(start + rng.duration_in(self.interval_min, self.interval_max));
            ready[b] = end.max(start + rng.duration_in(self.interval_min, self.interval_max));
        }

        let horizon = contacts
            .iter()
            .map(|c| c.end)
            .max()
            .unwrap_or(SimTime::from_secs(1));
        ContactTrace::new(n, horizon, contacts).expect("generator upholds trace invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_per_node_encounter_budget() {
        let scenario = IntervalScenario::with_max_interval(400);
        let trace = scenario.generate(&mut SimRng::new(1));
        for (node, count) in trace.encounter_counts().iter().enumerate() {
            assert!(
                *count <= scenario.encounters_per_node,
                "node {node} has {count} encounters"
            );
        }
        // Budgets should be mostly used: at least half the theoretical
        // total (20 nodes × 20 encounters / 2 per contact = 200 contacts).
        assert!(trace.len() >= 100, "only {} contacts", trace.len());
    }

    #[test]
    fn durations_in_configured_range() {
        let scenario = IntervalScenario::with_max_interval(2000);
        let trace = scenario.generate(&mut SimRng::new(2));
        for c in trace.contacts() {
            assert!(c.duration() >= scenario.duration_min);
            assert!(c.duration() <= scenario.duration_max);
        }
    }

    #[test]
    fn larger_max_interval_stretches_gaps() {
        let short = IntervalScenario::with_max_interval(400)
            .generate(&mut SimRng::new(3))
            .mean_intercontact_gap();
        let long = IntervalScenario::with_max_interval(2000)
            .generate(&mut SimRng::new(3))
            .mean_intercontact_gap();
        assert!(
            long.as_secs_f64() > 2.0 * short.as_secs_f64(),
            "short {short}, long {long}"
        );
    }

    #[test]
    fn interval_2000_gaps_commonly_exceed_ttl_300() {
        // The whole point of Fig. 14: with a 2000 s max interval, typical
        // gaps dwarf the 300 s TTL.
        let trace = IntervalScenario::with_max_interval(2000).generate(&mut SimRng::new(4));
        let gaps: Vec<f64> = trace
            .intercontact_gaps()
            .into_iter()
            .flatten()
            .map(|g| g.as_secs_f64())
            .collect();
        let over = gaps.iter().filter(|&&g| g > 300.0).count() as f64 / gaps.len() as f64;
        assert!(over > 0.5, "share of gaps > 300 s: {over}");
    }

    #[test]
    fn interval_400_gaps_mostly_within_2x_bound() {
        // Synchronization slack can stretch a realized gap past the drawn
        // bound, but the bulk of the distribution must track the knob.
        let trace = IntervalScenario::with_max_interval(400).generate(&mut SimRng::new(5));
        let gaps: Vec<f64> = trace
            .intercontact_gaps()
            .into_iter()
            .flatten()
            .map(|g| g.as_secs_f64())
            .collect();
        assert!(!gaps.is_empty());
        let within = gaps.iter().filter(|&&g| g <= 800.0).count() as f64 / gaps.len() as f64;
        assert!(within > 0.7, "share of gaps ≤ 2×max: {within}");
    }

    #[test]
    fn deterministic_per_seed() {
        let scenario = IntervalScenario::with_max_interval(400);
        let a = scenario.generate(&mut SimRng::new(6));
        let b = scenario.generate(&mut SimRng::new(6));
        assert_eq!(a.contacts(), b.contacts());
    }

    #[test]
    fn twenty_nodes_as_in_paper() {
        let trace = IntervalScenario::with_max_interval(400).generate(&mut SimRng::new(7));
        assert_eq!(trace.node_count(), 20);
    }
}
