//! # dtn-mobility — mobility models, contact traces and trace IO
//!
//! The paper's unified framework evaluates every protocol over two mobility
//! sources: a real contact trace (CRAWDAD Cambridge Haggle iMote) and a
//! Random-Way-Point variant. This crate provides both, plus the purpose-
//! built scenarios the paper's enhancement study uses, all funnelled into a
//! single artifact — [`ContactTrace`] — which is the only thing the
//! protocol layer (`dtn-epidemic`) ever sees:
//!
//! * [`contact`] — [`NodeId`], [`Contact`], [`ContactTrace`] with
//!   invariant checking, per-node encounter statistics and a temporal-
//!   reachability oracle;
//! * [`trace_io`] — a plain-text trace format that published CRAWDAD
//!   exports map onto line-for-line, with precise, line-numbered errors;
//! * [`synthetic`] — statistically matched stand-in for the (non-
//!   redistributable) Cambridge dataset: heavy-tailed inter-contact gaps,
//!   short contacts, pair heterogeneity;
//! * [`rwp`] — classic geometric RWP with exact (analytic) range-crossing
//!   contact detection;
//! * [`subscriber`] — the paper's modified RWP, where nodes hop between
//!   subscriber points and meet while co-located;
//! * [`scenario`] — the Fig. 14 controlled-interval scenarios (20 nodes,
//!   bounded encounter count, max gap 400 vs 2000 s).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod association;
pub mod cache;
pub mod contact;
pub mod rwp;
pub mod scenario;
pub mod subscriber;
pub mod synthetic;
pub mod trace_io;

pub use analysis::{Ccdf, TraceSummary};
pub use association::{parse_association_log, parse_association_str};
pub use cache::{TraceCache, TraceKey};
pub use contact::{Contact, ContactTrace, NodeId, TraceInvariantError};
pub use rwp::RwpParams;
pub use scenario::IntervalScenario;
pub use subscriber::SubscriberParams;
pub use synthetic::HaggleParams;
pub use trace_io::{parse_trace, parse_trace_str, read_trace_file, write_trace, TraceError};
