//! Cross-sweep contact-trace cache.
//!
//! A figure compares several protocols under *identical* mobility: the
//! same (scenario, seed, replication) trace is consumed by every
//! protocol sweep, and within the trace scenario by every load level and
//! replication too. Regenerating it each time made trace synthesis a
//! fixed tax on every simulation run. [`TraceCache`] builds each
//! distinct trace once and hands out read-only [`Arc`] clones; worker
//! threads share it freely (`&TraceCache` is `Sync`).
//!
//! Generation is deterministic and pure, so the cache never changes
//! *what* is simulated — only how often it is rebuilt. Builds run
//! outside the lock: two threads racing on the same key may both build,
//! but they build identical traces and the first insert wins, so results
//! are scheduling-independent.

use crate::ContactTrace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one generated trace: a scenario discriminant (packed by
/// the caller — e.g. mobility kind + parameters), the scenario seed, and
/// the replication index (0 for scenarios whose dataset is fixed across
/// replications).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Scenario discriminant, including any scenario parameters.
    pub scenario: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Replication index (callers collapse this to 0 when the scenario
    /// ignores it).
    pub replication: u64,
}

/// A concurrent build-once store of generated [`ContactTrace`]s.
#[derive(Debug, Default)]
pub struct TraceCache {
    traces: Mutex<HashMap<TraceKey, Arc<ContactTrace>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// Return the trace for `key`, building it with `build` on first use.
    ///
    /// `build` must be a pure function of `key` — the cache hands the
    /// same `Arc` to every caller of the key.
    pub fn get_or_build<F>(&self, key: TraceKey, build: F) -> Arc<ContactTrace>
    where
        F: FnOnce() -> ContactTrace,
    {
        if let Some(trace) = self.traces.lock().expect("trace cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(trace);
        }
        // Build outside the lock: generation can take milliseconds and
        // must not serialize unrelated keys. A concurrent builder of the
        // same key produces an identical trace; first insert wins.
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut traces = self.traces.lock().expect("trace cache poisoned");
        Arc::clone(traces.entry(key).or_insert(built))
    }

    /// `(hits, misses)` so far — the bench harness reports these.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct traces held.
    pub fn len(&self) -> usize {
        self.traces.lock().expect("trace cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HaggleParams;
    use dtn_sim::SimRng;

    fn key(scenario: u64, seed: u64, replication: u64) -> TraceKey {
        TraceKey {
            scenario,
            seed,
            replication,
        }
    }

    fn build(seed: u64) -> ContactTrace {
        HaggleParams::default().generate(&mut SimRng::new(seed))
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_arc() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(key(1, 7, 0), || build(7));
        let b = cache.get_or_build(key(1, 7, 0), || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_traces() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(key(1, 7, 0), || build(7));
        let b = cache.get_or_build(key(1, 8, 0), || build(8));
        let c = cache.get_or_build(key(2, 7, 0), || build(7));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.contacts(), b.contacts());
        // Same generator output under a different scenario id: cached
        // separately, equal contents.
        assert_eq!(a.contacts(), c.contacts());
        assert_eq!(cache.stats(), (0, 3));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = TraceCache::new();
        let traces: Vec<Arc<ContactTrace>> = dtn_sim::par_map_indexed(
            dtn_sim::Threads::Fixed(std::num::NonZeroUsize::new(4).unwrap()),
            16,
            |i| cache.get_or_build(key(1, 7, (i % 2) as u64), || build(7)),
        );
        for pair in traces.chunks(2) {
            assert!(Arc::ptr_eq(&pair[0], &traces[0]));
            assert!(Arc::ptr_eq(&pair[1], &traces[1]));
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 16);
        assert_eq!(cache.len(), 2);
    }
}
