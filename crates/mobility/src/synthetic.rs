//! Synthetic Haggle-like contact traces.
//!
//! The paper replays the CRAWDAD `cambridge/haggle/imote/intel` dataset:
//! 12 iMote devices carried by students over five days (maximum recorded
//! time 524 162 s). The raw file cannot be redistributed here, so this
//! module generates traces with the same *statistical anatomy*, which is
//! the part the protocols actually respond to:
//!
//! * **heavy-tailed inter-contact gaps** — Chaintreau et al.'s analysis of
//!   the same dataset (the paper's reference \[4\]) found the inter-contact
//!   CCDF follows a power law with exponent ≈ 0.4 over the range of minutes
//!   to days; gaps routinely dwarf any fixed TTL, which is what breaks
//!   epidemic-with-TTL in Fig. 13/14;
//! * **short-but-usable contact durations** — typically a few hundred
//!   seconds (the paper's worked example is a 314 s encounter carrying
//!   three 100 s bundles);
//! * **pair heterogeneity** — some pairs meet far more often than others.
//!
//! Each unordered pair of nodes is an independent alternating renewal
//! process: `gap → contact → gap → …`, gaps drawn from a truncated Pareto
//! with `alpha = 0.4`, durations from a truncated Pareto with a steeper
//! tail, and a per-pair sociability factor scaling the gap distribution.

use crate::contact::{Contact, ContactTrace, NodeId};
use dtn_sim::{SimRng, SimTime};

/// Parameters of the synthetic Haggle-like generator.
///
/// Defaults mirror the dataset the paper replays: 12 nodes and a 524 162 s
/// horizon.
#[derive(Clone, Debug)]
pub struct HaggleParams {
    /// Number of devices (the dataset has 12).
    pub nodes: usize,
    /// Observation horizon (the dataset's maximum recorded time).
    pub horizon: SimTime,
    /// Smallest inter-contact gap (Pareto scale), seconds.
    pub gap_min_s: f64,
    /// Truncation point of the gap distribution, seconds. Near the
    /// five-day horizon: a gap this long means the pair effectively never
    /// meets again within the observation window.
    pub gap_max_s: f64,
    /// Power-law exponent of the gap CCDF (≈ 0.4 for the Cambridge data).
    pub gap_alpha: f64,
    /// Smallest contact duration, seconds.
    pub dur_min_s: f64,
    /// Longest contact duration, seconds.
    pub dur_max_s: f64,
    /// Power-law exponent of the duration CCDF (steeper: long contacts are
    /// much rarer than long gaps).
    pub dur_alpha: f64,
    /// Range of the per-pair sociability multiplier applied to gap draws;
    /// `(0.5, 2.0)` means the most social pair meets ~4× as often as the
    /// least social.
    pub sociability: (f64, f64),
}

impl Default for HaggleParams {
    fn default() -> Self {
        // Calibrated for the sparsity the paper's results imply: delivery
        // delays there are a large fraction of the 524 162 s window
        // (Fig. 7), meaning each pair meets only a handful of times over
        // the five days. These defaults give ~8–12 contacts per pair on
        // average, with the sociability spread making the rarest pairs
        // meet only once or twice — the regime in which the protocols'
        // differences (EC churn, TTL expiry, immunity propagation lag)
        // actually show.
        HaggleParams {
            nodes: 12,
            horizon: SimTime::from_secs(524_162),
            gap_min_s: 2_000.0,
            gap_max_s: 450_000.0,
            gap_alpha: 0.35,
            dur_min_s: 60.0,
            dur_max_s: 1_000.0,
            dur_alpha: 1.2,
            sociability: (0.4, 4.0),
        }
    }
}

impl HaggleParams {
    /// Validate parameter sanity; panics on nonsense (these are programmer
    /// inputs, not user data).
    fn validate(&self) {
        assert!(self.nodes >= 2, "need at least 2 nodes");
        assert!(
            self.nodes <= u16::MAX as usize + 1,
            "node id space overflow"
        );
        assert!(self.gap_min_s > 0.0 && self.gap_max_s > self.gap_min_s);
        assert!(self.dur_min_s > 0.0 && self.dur_max_s > self.dur_min_s);
        assert!(self.gap_alpha > 0.0 && self.dur_alpha > 0.0);
        assert!(self.sociability.0 > 0.0 && self.sociability.1 >= self.sociability.0);
    }

    /// Generate a trace. The same `(params, rng seed)` always yields the
    /// same trace.
    pub fn generate(&self, rng: &mut SimRng) -> ContactTrace {
        self.validate();
        let mut contacts = Vec::new();
        let horizon_s = self.horizon.as_secs_f64();
        for a in 0..self.nodes as u16 {
            for b in (a + 1)..self.nodes as u16 {
                let social = rng.range_f64(self.sociability.0, self.sociability.1);
                // Random phase: the first gap starts from a uniformly random
                // point of a gap interval, so pairs don't all rendezvous
                // near t = 0.
                let mut t = rng.pareto_truncated(self.gap_min_s, self.gap_max_s, self.gap_alpha)
                    * social
                    * rng.f64();
                loop {
                    let dur = rng.pareto_truncated(self.dur_min_s, self.dur_max_s, self.dur_alpha);
                    let end = t + dur;
                    if end >= horizon_s {
                        break;
                    }
                    contacts.push(Contact::new(
                        NodeId(a),
                        NodeId(b),
                        SimTime::from_secs_f64(t),
                        SimTime::from_secs_f64(end),
                    ));
                    let gap = rng.pareto_truncated(self.gap_min_s, self.gap_max_s, self.gap_alpha)
                        * social;
                    t = end + gap;
                }
            }
        }
        ContactTrace::new(self.nodes, self.horizon, contacts)
            .expect("generator upholds trace invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_trace(seed: u64) -> ContactTrace {
        HaggleParams::default().generate(&mut SimRng::new(seed))
    }

    #[test]
    fn generates_a_nonempty_well_formed_trace() {
        let trace = default_trace(1);
        assert_eq!(trace.node_count(), 12);
        assert!(trace.len() > 100, "only {} contacts", trace.len());
        for c in trace.contacts() {
            assert!(c.a < c.b);
            assert!(c.start < c.end);
            assert!(c.end <= trace.horizon());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t1 = default_trace(7);
        let t2 = default_trace(7);
        assert_eq!(t1.contacts(), t2.contacts());
        let t3 = default_trace(8);
        assert_ne!(t1.contacts(), t3.contacts());
    }

    #[test]
    fn per_pair_contacts_never_overlap() {
        let trace = default_trace(3);
        let mut last_end = std::collections::HashMap::new();
        for c in trace.contacts() {
            let key = (c.a, c.b);
            if let Some(prev) = last_end.get(&key) {
                assert!(c.start >= *prev, "pair {key:?} overlaps itself");
            }
            last_end.insert(key, c.end);
        }
    }

    #[test]
    fn durations_and_gaps_within_configured_bounds() {
        let params = HaggleParams::default();
        let trace = params.generate(&mut SimRng::new(11));
        for c in trace.contacts() {
            let d = c.duration().as_secs_f64();
            assert!(
                d >= params.dur_min_s - 0.01 && d <= params.dur_max_s + 0.01,
                "duration {d}"
            );
        }
    }

    #[test]
    fn gaps_are_heavy_tailed() {
        // A defining feature of the Cambridge data (Chaintreau et al.):
        // *pair-level* inter-contact times follow a power law, so a large
        // share of gaps exceed an hour; and at the node level a sizeable
        // share of gaps still exceed 300 s (the fixed TTL the paper tests).
        let trace = default_trace(5);

        // Pair-level gaps: time between successive contacts of a pair.
        let mut pair_gaps: Vec<f64> = Vec::new();
        let mut last_end: std::collections::HashMap<(NodeId, NodeId), SimTime> =
            std::collections::HashMap::new();
        for c in trace.contacts() {
            if let Some(prev) = last_end.get(&(c.a, c.b)) {
                pair_gaps.push(c.start.saturating_since(*prev).as_secs_f64());
            }
            last_end.insert((c.a, c.b), c.end);
        }
        assert!(pair_gaps.len() > 100);
        let over_hour =
            pair_gaps.iter().filter(|&&g| g > 3_600.0).count() as f64 / pair_gaps.len() as f64;
        assert!(over_hour > 0.1, "share of pair gaps > 1 h: {over_hour}");

        // Node-level gaps: time between a node's successive encounters.
        let node_gaps: Vec<f64> = trace
            .intercontact_gaps()
            .into_iter()
            .flatten()
            .map(|g| g.as_secs_f64())
            .collect();
        let over_ttl =
            node_gaps.iter().filter(|&&g| g > 300.0).count() as f64 / node_gaps.len() as f64;
        assert!(over_ttl > 0.2, "share of node gaps > 300 s: {over_ttl}");
    }

    #[test]
    fn typical_contact_carries_a_few_bundles() {
        // Paper: 100 s per bundle; a typical contact should carry at least
        // one bundle and the mean should be in the single digits.
        let trace = default_trace(9);
        let mean_dur = trace.mean_contact_duration().as_secs_f64();
        assert!(
            (60.0..2_000.0).contains(&mean_dur),
            "mean contact duration {mean_dur}"
        );
    }

    #[test]
    fn trace_is_usually_temporally_connected_from_t0() {
        // With five days of contacts over 12 nodes, epidemic flooding from
        // t = 0 should reach everyone — the paper's baseline protocols have
        // 100 % delivery on the trace.
        let connected = (0..5)
            .filter(|&s| default_trace(s).is_temporally_connected(SimTime::ZERO))
            .count();
        assert!(connected >= 4, "only {connected}/5 seeds fully connected");
    }

    #[test]
    fn sociability_spreads_pair_frequencies() {
        let trace = default_trace(13);
        let counts = trace.pair_contact_counts();
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap();
        assert!(max >= min * 2, "pair heterogeneity too flat: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_single_node() {
        let params = HaggleParams {
            nodes: 1,
            ..HaggleParams::default()
        };
        params.generate(&mut SimRng::new(0));
    }
}
