//! Classic geometric Random Way Point (RWP) mobility with analytic contact
//! detection.
//!
//! The paper's second evaluation scenario moves nodes by RWP (Bai et al.,
//! its reference \[9\]). This module implements the textbook model: each node
//! repeatedly (i) picks a uniform waypoint in a square area, (ii) travels to
//! it in a straight line at a uniformly drawn speed, and (iii) pauses for a
//! uniformly drawn time. Two nodes are in contact while their distance is
//! at most the transmission range.
//!
//! Trajectories are piecewise linear, so the squared pairwise distance on
//! any pair of overlapping legs is a quadratic in time: range crossings are
//! found by solving `|Δp + Δv·τ|² = R²` exactly rather than by time
//! stepping — no missed short contacts, no tunable step size, and the
//! output is bit-deterministic for a given seed.
//!
//! The paper also notes two classic RWP pathologies (speed decay to zero,
//! odd movement patterns) and works around them with a "subscriber point"
//! variant; that variant lives in [`crate::subscriber`]. The classic model
//! here avoids speed decay by drawing speeds with a strictly positive lower
//! bound (Resta & Santi's fix, the paper's reference \[19\]).

use crate::contact::{Contact, ContactTrace, NodeId};
use dtn_sim::{SimRng, SimTime};

/// A 2-D vector/point in meters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vec2 {
    /// x-coordinate (m).
    pub x: f64,
    /// y-coordinate (m).
    pub y: f64,
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - o.x,
            y: self.y - o.y,
        }
    }
}

impl Vec2 {
    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }
}

/// One constant-velocity leg of a trajectory: position at time `t` (seconds,
/// within `[t0, t1]`) is `p0 + v·(t − t0)`. A pause is a leg with `v = 0`.
#[derive(Clone, Copy, Debug)]
pub struct Leg {
    /// Leg start time (s).
    pub t0: f64,
    /// Leg end time (s).
    pub t1: f64,
    /// Position at `t0`.
    pub p0: Vec2,
    /// Constant velocity (m/s).
    pub v: Vec2,
}

impl Leg {
    /// Position at absolute time `t` (clamped to the leg's interval).
    pub fn position(&self, t: f64) -> Vec2 {
        let tau = (t.clamp(self.t0, self.t1)) - self.t0;
        Vec2 {
            x: self.p0.x + self.v.x * tau,
            y: self.p0.y + self.v.y * tau,
        }
    }
}

/// Parameters of the classic RWP model.
#[derive(Clone, Debug)]
pub struct RwpParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Side length of the square area (m).
    pub area_side_m: f64,
    /// Transmission range (m); the unified parameter table bounds this by
    /// 300 m.
    pub range_m: f64,
    /// Minimum travel speed (m/s); strictly positive to avoid the
    /// speed-decay pathology.
    pub speed_min_mps: f64,
    /// Maximum travel speed (m/s).
    pub speed_max_mps: f64,
    /// Maximum pause at a waypoint (s); pauses are uniform in `[0, max]`.
    pub pause_max_s: f64,
}

impl Default for RwpParams {
    fn default() -> Self {
        RwpParams {
            nodes: 12,
            horizon: SimTime::from_secs(600_000),
            area_side_m: 1_000.0,
            range_m: 100.0,
            speed_min_mps: 1.0,
            speed_max_mps: 10.0,
            pause_max_s: 1_000.0,
        }
    }
}

impl RwpParams {
    fn validate(&self) {
        assert!(self.nodes >= 2);
        assert!(self.area_side_m > 0.0);
        assert!(self.range_m > 0.0 && self.range_m < self.area_side_m);
        assert!(
            self.speed_min_mps > 0.0,
            "zero min speed causes RWP speed decay"
        );
        assert!(self.speed_max_mps >= self.speed_min_mps);
        assert!(self.pause_max_s >= 0.0);
    }

    /// Generate one node's trajectory out to the horizon.
    fn trajectory(&self, rng: &mut SimRng, horizon_s: f64) -> Vec<Leg> {
        let mut legs = Vec::new();
        let mut t = 0.0;
        let mut pos = Vec2 {
            x: rng.range_f64(0.0, self.area_side_m),
            y: rng.range_f64(0.0, self.area_side_m),
        };
        while t < horizon_s {
            // Pause phase (possibly zero-length).
            if self.pause_max_s > 0.0 {
                let pause = rng.range_f64(0.0, self.pause_max_s);
                if pause > 0.0 {
                    legs.push(Leg {
                        t0: t,
                        t1: (t + pause).min(horizon_s),
                        p0: pos,
                        v: Vec2 { x: 0.0, y: 0.0 },
                    });
                    t += pause;
                    if t >= horizon_s {
                        break;
                    }
                }
            }
            // Travel phase.
            let target = Vec2 {
                x: rng.range_f64(0.0, self.area_side_m),
                y: rng.range_f64(0.0, self.area_side_m),
            };
            let delta = target - pos;
            let dist = delta.norm();
            if dist < 1e-9 {
                continue; // degenerate waypoint; redraw
            }
            let speed = rng.range_f64(self.speed_min_mps, self.speed_max_mps);
            let travel = dist / speed;
            legs.push(Leg {
                t0: t,
                t1: (t + travel).min(horizon_s),
                p0: pos,
                v: Vec2 {
                    x: delta.x / travel,
                    y: delta.y / travel,
                },
            });
            t += travel;
            pos = target;
        }
        legs
    }

    /// Generate the full contact trace.
    pub fn generate(&self, rng: &mut SimRng) -> ContactTrace {
        self.validate();
        let horizon_s = self.horizon.as_secs_f64();
        let trajectories: Vec<Vec<Leg>> = (0..self.nodes)
            .map(|_| self.trajectory(rng, horizon_s))
            .collect();

        let mut contacts = Vec::new();
        for a in 0..self.nodes {
            for b in (a + 1)..self.nodes {
                let intervals =
                    contact_intervals(&trajectories[a], &trajectories[b], self.range_m, horizon_s);
                for (start, end) in intervals {
                    // Sub-millisecond grazes round to empty; skip them.
                    let s = SimTime::from_secs_f64(start);
                    let e = SimTime::from_secs_f64(end.min(horizon_s));
                    if e > s {
                        contacts.push(Contact::new(NodeId(a as u16), NodeId(b as u16), s, e));
                    }
                }
            }
        }
        ContactTrace::new(self.nodes, self.horizon, contacts)
            .expect("generator upholds trace invariants")
    }
}

/// Sub-intervals of `[0, horizon]` during which two piecewise-linear
/// trajectories stay within `range` of each other, found analytically and
/// merged.
pub fn contact_intervals(ta: &[Leg], tb: &[Leg], range: f64, horizon_s: f64) -> Vec<(f64, f64)> {
    let mut raw: Vec<(f64, f64)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ta.len() && j < tb.len() {
        let la = &ta[i];
        let lb = &tb[j];
        let lo = la.t0.max(lb.t0);
        let hi = la.t1.min(lb.t1).min(horizon_s);
        if hi > lo {
            if let Some((s, e)) = in_range_window(la, lb, range, lo, hi) {
                raw.push((s, e));
            }
        }
        // Advance whichever leg ends first.
        if la.t1 <= lb.t1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    merge_intervals(raw)
}

/// Solve for the in-range sub-interval of `[lo, hi]` on a single pair of
/// legs. Within one window the in-range set of a quadratic `≤ 0` condition
/// is a single interval (possibly empty).
fn in_range_window(la: &Leg, lb: &Leg, range: f64, lo: f64, hi: f64) -> Option<(f64, f64)> {
    // Relative state at `lo`.
    let dp = la.position(lo) - lb.position(lo);
    let dv = la.v - lb.v;
    let a = dv.dot(dv);
    let b = 2.0 * dp.dot(dv);
    let c = dp.dot(dp) - range * range;

    if a < 1e-12 {
        // Constant relative distance over the window.
        return if c <= 0.0 { Some((lo, hi)) } else { None };
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        // Never within range (the parabola in τ stays positive).
        return None;
    }
    let sqrt_disc = disc.sqrt();
    let tau_in = (-b - sqrt_disc) / (2.0 * a);
    let tau_out = (-b + sqrt_disc) / (2.0 * a);
    let s = (lo + tau_in.max(0.0)).min(hi);
    let e = (lo + tau_out).min(hi);
    if e > s {
        Some((s, e))
    } else {
        None
    }
}

/// Merge touching/overlapping `(start, end)` intervals (input need not be
/// sorted). Intervals separated by less than 1 ms are joined — that is the
/// clock's resolution, so the simulator could not distinguish them anyway.
pub fn merge_intervals(mut xs: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    const JOIN_EPS: f64 = 1e-3;
    xs.sort_by(|p, q| p.0.total_cmp(&q.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(xs.len());
    for (s, e) in xs {
        match out.last_mut() {
            Some(last) if s <= last.1 + JOIN_EPS => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(t0: f64, t1: f64, p0: (f64, f64), v: (f64, f64)) -> Leg {
        Leg {
            t0,
            t1,
            p0: Vec2 { x: p0.0, y: p0.1 },
            v: Vec2 { x: v.0, y: v.1 },
        }
    }

    #[test]
    fn head_on_pass_creates_one_contact() {
        // A at x=0 moving +1 m/s; B at x=1000 moving −1 m/s; range 100 m.
        // Distance 1000−2t ≤ 100 ⟺ t ∈ [450, 550].
        let ta = vec![leg(0.0, 1_000.0, (0.0, 0.0), (1.0, 0.0))];
        let tb = vec![leg(0.0, 1_000.0, (1_000.0, 0.0), (-1.0, 0.0))];
        let iv = contact_intervals(&ta, &tb, 100.0, 1_000.0);
        assert_eq!(iv.len(), 1);
        assert!((iv[0].0 - 450.0).abs() < 1e-6, "{iv:?}");
        assert!((iv[0].1 - 550.0).abs() < 1e-6, "{iv:?}");
    }

    #[test]
    fn parallel_distant_nodes_never_meet() {
        let ta = vec![leg(0.0, 1_000.0, (0.0, 0.0), (1.0, 0.0))];
        let tb = vec![leg(0.0, 1_000.0, (0.0, 500.0), (1.0, 0.0))];
        assert!(contact_intervals(&ta, &tb, 100.0, 1_000.0).is_empty());
    }

    #[test]
    fn stationary_nodes_in_range_contact_for_whole_window() {
        let ta = vec![leg(0.0, 300.0, (0.0, 0.0), (0.0, 0.0))];
        let tb = vec![leg(100.0, 200.0, (50.0, 0.0), (0.0, 0.0))];
        let iv = contact_intervals(&ta, &tb, 100.0, 1_000.0);
        assert_eq!(iv, vec![(100.0, 200.0)]);
    }

    #[test]
    fn contact_spanning_leg_boundary_is_merged() {
        // B stationary at origin. A walks through: its path is split into
        // two legs at t=500 mid-approach; the contact must come out as one
        // interval, not two.
        let ta = vec![
            leg(0.0, 500.0, (-600.0, 0.0), (1.0, 0.0)),
            leg(500.0, 1_200.0, (-100.0, 0.0), (1.0, 0.0)),
        ];
        let tb = vec![leg(0.0, 1_200.0, (0.0, 0.0), (0.0, 0.0))];
        let iv = contact_intervals(&ta, &tb, 100.0, 2_000.0);
        assert_eq!(iv.len(), 1, "{iv:?}");
        assert!((iv[0].0 - 500.0).abs() < 1e-6);
        assert!((iv[0].1 - 700.0).abs() < 1e-6);
    }

    #[test]
    fn grazing_pass_outside_range_is_empty() {
        // Closest approach 150 m > 100 m range.
        let ta = vec![leg(0.0, 1_000.0, (0.0, 150.0), (1.0, 0.0))];
        let tb = vec![leg(0.0, 1_000.0, (1_000.0, 0.0), (-1.0, 0.0))];
        assert!(contact_intervals(&ta, &tb, 100.0, 1_000.0).is_empty());
    }

    #[test]
    fn merge_intervals_joins_and_sorts() {
        let merged = merge_intervals(vec![(10.0, 20.0), (5.0, 8.0), (19.9999, 30.0)]);
        assert_eq!(merged, vec![(5.0, 8.0), (10.0, 30.0)]);
    }

    #[test]
    fn rwp_generates_valid_trace() {
        let params = RwpParams {
            horizon: SimTime::from_secs(50_000),
            ..RwpParams::default()
        };
        let trace = params.generate(&mut SimRng::new(2));
        assert_eq!(trace.node_count(), 12);
        assert!(
            !trace.is_empty(),
            "12 nodes in 1 km² for 50 000 s must meet"
        );
        for c in trace.contacts() {
            assert!(c.start < c.end && c.end <= trace.horizon());
        }
    }

    #[test]
    fn rwp_is_deterministic() {
        let params = RwpParams {
            horizon: SimTime::from_secs(20_000),
            ..RwpParams::default()
        };
        let t1 = params.generate(&mut SimRng::new(4));
        let t2 = params.generate(&mut SimRng::new(4));
        assert_eq!(t1.contacts(), t2.contacts());
    }

    #[test]
    fn trajectory_covers_horizon_without_gaps() {
        let params = RwpParams::default();
        let mut rng = SimRng::new(6);
        let legs = params.trajectory(&mut rng, 10_000.0);
        assert!(!legs.is_empty());
        assert!(legs[0].t0 == 0.0);
        for w in legs.windows(2) {
            assert!(
                (w[0].t1 - w[1].t0).abs() < 1e-9,
                "gap between legs: {} vs {}",
                w[0].t1,
                w[1].t0
            );
        }
        assert!(legs.last().unwrap().t1 >= 10_000.0 - 1e-9);
    }

    #[test]
    fn trajectory_stays_inside_area() {
        let params = RwpParams::default();
        let mut rng = SimRng::new(8);
        let legs = params.trajectory(&mut rng, 20_000.0);
        for l in &legs {
            for t in [l.t0, (l.t0 + l.t1) / 2.0, l.t1] {
                let p = l.position(t);
                assert!((-1e-6..=params.area_side_m + 1e-6).contains(&p.x));
                assert!((-1e-6..=params.area_side_m + 1e-6).contains(&p.y));
            }
        }
    }

    #[test]
    #[should_panic(expected = "speed decay")]
    fn zero_min_speed_is_rejected() {
        let params = RwpParams {
            speed_min_mps: 0.0,
            ..RwpParams::default()
        };
        params.generate(&mut SimRng::new(0));
    }

    #[test]
    fn denser_network_means_more_contacts() {
        let base = RwpParams {
            horizon: SimTime::from_secs(30_000),
            ..RwpParams::default()
        };
        let sparse = RwpParams {
            area_side_m: 3_000.0,
            ..base.clone()
        };
        let dense_n = base.generate(&mut SimRng::new(10)).len();
        let sparse_n = sparse.generate(&mut SimRng::new(10)).len();
        assert!(
            dense_n > sparse_n,
            "dense {dense_n} should exceed sparse {sparse_n}"
        );
    }
}
