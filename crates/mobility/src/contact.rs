//! The contact model.
//!
//! Every mobility source in this repository — the CRAWDAD-style trace
//! parser, the synthetic Haggle generator, both random-waypoint models and
//! the controlled-interval scenarios — reduces to the same artifact: a
//! [`ContactTrace`], a validated, start-time-sorted sequence of
//! [`Contact`]s. The epidemic simulator consumes only this artifact, which
//! is precisely the paper's "unified framework" premise: identical protocol
//! code runs over every mobility model.

use dtn_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a mobile node (an iMote device, a zebra collar, a student's
/// phone…). Dense small integers; the paper's scenarios use 12–20 nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One rendezvous: nodes `a` and `b` are within transmission range from
/// `start` until `end` (exclusive of `end`). Stored with `a < b`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Contact {
    /// The lower-numbered endpoint (the paper's collision-avoidance rule
    /// gives this node the first transmission slot).
    pub a: NodeId,
    /// The higher-numbered endpoint.
    pub b: NodeId,
    /// When the nodes come into range.
    pub start: SimTime,
    /// When the nodes move apart.
    pub end: SimTime,
}

impl Contact {
    /// Construct a contact, normalizing endpoint order. Panics if the
    /// endpoints coincide or the interval is empty/inverted — every
    /// generator in this crate upholds these invariants, so violating them
    /// is a bug, not an input error (the trace *parser* reports such lines
    /// as [`super::trace_io::TraceError`]s instead of panicking).
    pub fn new(x: NodeId, y: NodeId, start: SimTime, end: SimTime) -> Contact {
        assert!(x != y, "self-contact {x}");
        assert!(start < end, "empty contact interval: {start}..{end}");
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        Contact { a, b, start, end }
    }

    /// The rendezvous duration — the quantity that bounds how many bundles
    /// the pair can exchange.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// True if `n` participates in this contact.
    #[inline]
    pub fn involves(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }

    /// The other endpoint of the contact (panics if `n` is not an endpoint).
    pub fn peer_of(&self, n: NodeId) -> NodeId {
        if self.a == n {
            self.b
        } else if self.b == n {
            self.a
        } else {
            panic!("{n} is not part of contact {self:?}")
        }
    }
}

/// A validated contact sequence plus the node universe it ranges over.
///
/// Invariants (checked at construction):
/// * contacts are sorted by `(start, a, b)`;
/// * every endpoint is `< node_count`;
/// * no contact extends past `horizon`.
#[derive(Clone, Debug)]
pub struct ContactTrace {
    node_count: usize,
    horizon: SimTime,
    contacts: Vec<Contact>,
}

/// Violations detected by [`ContactTrace::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceInvariantError {
    /// A contact references a node id outside `0..node_count`.
    NodeOutOfRange {
        /// The offending contact index.
        index: usize,
        /// The offending node id.
        node: NodeId,
        /// The configured universe size.
        node_count: usize,
    },
    /// A contact ends after the declared horizon.
    PastHorizon {
        /// The offending contact index.
        index: usize,
        /// The contact's end time.
        end: SimTime,
        /// The declared horizon.
        horizon: SimTime,
    },
    /// Fewer than two nodes — no contact is possible.
    TooFewNodes,
}

impl fmt::Display for TraceInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceInvariantError::NodeOutOfRange {
                index,
                node,
                node_count,
            } => write!(
                f,
                "contact #{index} references {node} outside universe of {node_count} nodes"
            ),
            TraceInvariantError::PastHorizon {
                index,
                end,
                horizon,
            } => {
                write!(f, "contact #{index} ends at {end}, past horizon {horizon}")
            }
            TraceInvariantError::TooFewNodes => write!(f, "a trace needs at least two nodes"),
        }
    }
}

impl std::error::Error for TraceInvariantError {}

impl ContactTrace {
    /// Validate and canonicalize (sort) a contact list.
    pub fn new(
        node_count: usize,
        horizon: SimTime,
        mut contacts: Vec<Contact>,
    ) -> Result<ContactTrace, TraceInvariantError> {
        if node_count < 2 {
            return Err(TraceInvariantError::TooFewNodes);
        }
        for (index, c) in contacts.iter().enumerate() {
            for node in [c.a, c.b] {
                if node.index() >= node_count {
                    return Err(TraceInvariantError::NodeOutOfRange {
                        index,
                        node,
                        node_count,
                    });
                }
            }
            if c.end > horizon {
                return Err(TraceInvariantError::PastHorizon {
                    index,
                    end: c.end,
                    horizon,
                });
            }
        }
        contacts.sort_by_key(|c| (c.start, c.a, c.b));
        Ok(ContactTrace {
            node_count,
            horizon,
            contacts,
        })
    }

    /// Number of nodes in the universe.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All node ids, `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count as u16).map(NodeId)
    }

    /// The observation horizon (the paper's trace ends at 524 162 s; a run
    /// that has not delivered by then is recorded as a failure).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// The sorted contact sequence.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Number of contacts.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// True when there are no contacts at all.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// How many contacts each node participates in.
    pub fn encounter_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.node_count];
        for c in &self.contacts {
            counts[c.a.index()] += 1;
            counts[c.b.index()] += 1;
        }
        counts
    }

    /// Per-node inter-contact gaps: for each node, the spans between the
    /// start of one of its contacts and the end of its previous one. This is
    /// the "encounter interval" driving the dynamic-TTL enhancement
    /// (Algorithm 1) and Fig. 14's sensitivity study.
    pub fn intercontact_gaps(&self) -> Vec<Vec<SimDuration>> {
        let mut last_end: Vec<Option<SimTime>> = vec![None; self.node_count];
        let mut gaps: Vec<Vec<SimDuration>> = vec![Vec::new(); self.node_count];
        for c in &self.contacts {
            for n in [c.a, c.b] {
                if let Some(prev) = last_end[n.index()] {
                    gaps[n.index()].push(c.start.saturating_since(prev));
                }
                let e = &mut last_end[n.index()];
                *e = Some(match *e {
                    Some(prev) => prev.max(c.end),
                    None => c.end,
                });
            }
        }
        gaps
    }

    /// Mean inter-contact gap across all nodes (0 when no node meets twice).
    pub fn mean_intercontact_gap(&self) -> SimDuration {
        let gaps = self.intercontact_gaps();
        let mut sum: u128 = 0;
        let mut n: u64 = 0;
        for g in gaps.iter().flatten() {
            sum += g.as_millis() as u128;
            n += 1;
        }
        if n == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis((sum / n as u128) as u64)
        }
    }

    /// Mean contact duration (0 for an empty trace).
    pub fn mean_contact_duration(&self) -> SimDuration {
        if self.contacts.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self
            .contacts
            .iter()
            .map(|c| c.duration().as_millis() as u128)
            .sum();
        SimDuration::from_millis((sum / self.contacts.len() as u128) as u64)
    }

    /// True when every pair of nodes is joined by some multi-hop space-time
    /// path starting at or after `from` — i.e. a bundle created at `from`
    /// *could* reach any destination from any source given infinite
    /// resources. Used by scenario generators to avoid degenerate
    /// replications and by tests as an upper-bound oracle.
    pub fn is_temporally_connected(&self, from: SimTime) -> bool {
        (0..self.node_count).all(|src| {
            let reached = self.temporal_reachability(NodeId(src as u16), from);
            reached.iter().all(|&r| r)
        })
    }

    /// The set of nodes reachable from `src` via space-time paths whose
    /// contacts start at or after `from` (a node relays a bundle on any
    /// contact that *starts* after the contact on which it received it;
    /// within one contact's interval both directions count — matching the
    /// simulator's within-contact exchange semantics).
    pub fn temporal_reachability(&self, src: NodeId, from: SimTime) -> Vec<bool> {
        let mut infected_at: Vec<Option<SimTime>> = vec![None; self.node_count];
        infected_at[src.index()] = Some(from);
        // Contacts are start-sorted; one forward pass suffices because a
        // relay can only use contacts starting no earlier than when it got
        // the bundle.
        for c in &self.contacts {
            if c.start < from {
                continue;
            }
            let ia = infected_at[c.a.index()];
            let ib = infected_at[c.b.index()];
            let a_can_send = matches!(ia, Some(t) if t <= c.start);
            let b_can_send = matches!(ib, Some(t) if t <= c.start);
            if a_can_send && infected_at[c.b.index()].is_none() {
                infected_at[c.b.index()] = Some(c.start);
            }
            if b_can_send && infected_at[c.a.index()].is_none() {
                infected_at[c.a.index()] = Some(c.start);
            }
        }
        infected_at.iter().map(|t| t.is_some()).collect()
    }

    /// Contact-count histogram per unordered pair — the raw material for
    /// comparing a synthetic trace against the real dataset's statistics.
    pub fn pair_contact_counts(&self) -> BTreeMap<(NodeId, NodeId), usize> {
        let mut map = BTreeMap::new();
        for c in &self.contacts {
            *map.entry((c.a, c.b)).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn contact(a: u16, b: u16, start: u64, end: u64) -> Contact {
        Contact::new(NodeId(a), NodeId(b), t(start), t(end))
    }

    #[test]
    fn contact_normalizes_order() {
        let c = contact(5, 2, 10, 20);
        assert_eq!(c.a, NodeId(2));
        assert_eq!(c.b, NodeId(5));
        assert_eq!(c.duration(), SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "self-contact")]
    fn self_contact_panics() {
        contact(3, 3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "empty contact interval")]
    fn inverted_interval_panics() {
        contact(0, 1, 10, 10);
    }

    #[test]
    fn peer_of_and_involves() {
        let c = contact(1, 4, 0, 5);
        assert!(c.involves(NodeId(1)));
        assert!(c.involves(NodeId(4)));
        assert!(!c.involves(NodeId(2)));
        assert_eq!(c.peer_of(NodeId(1)), NodeId(4));
        assert_eq!(c.peer_of(NodeId(4)), NodeId(1));
    }

    #[test]
    fn trace_sorts_contacts() {
        let trace = ContactTrace::new(
            3,
            t(100),
            vec![
                contact(0, 1, 50, 60),
                contact(1, 2, 10, 20),
                contact(0, 2, 10, 15),
            ],
        )
        .unwrap();
        let starts: Vec<u64> = trace.contacts().iter().map(|c| c.start.as_secs()).collect();
        assert_eq!(starts, vec![10, 10, 50]);
        // Equal starts tie-break by (a, b).
        assert_eq!(trace.contacts()[0].b, NodeId(2));
    }

    #[test]
    fn trace_rejects_out_of_range_nodes() {
        let err = ContactTrace::new(2, t(100), vec![contact(0, 5, 0, 1)]).unwrap_err();
        assert!(matches!(
            err,
            TraceInvariantError::NodeOutOfRange {
                node: NodeId(5),
                ..
            }
        ));
    }

    #[test]
    fn trace_rejects_past_horizon() {
        let err = ContactTrace::new(2, t(100), vec![contact(0, 1, 90, 110)]).unwrap_err();
        assert!(matches!(err, TraceInvariantError::PastHorizon { .. }));
    }

    #[test]
    fn trace_rejects_tiny_universe() {
        assert_eq!(
            ContactTrace::new(1, t(10), vec![]).unwrap_err(),
            TraceInvariantError::TooFewNodes
        );
    }

    #[test]
    fn encounter_counts() {
        let trace = ContactTrace::new(
            4,
            t(100),
            vec![
                contact(0, 1, 0, 5),
                contact(0, 2, 10, 15),
                contact(0, 3, 20, 25),
            ],
        )
        .unwrap();
        assert_eq!(trace.encounter_counts(), vec![3, 1, 1, 1]);
    }

    #[test]
    fn intercontact_gaps_per_node() {
        let trace = ContactTrace::new(
            3,
            t(1_000),
            vec![
                contact(0, 1, 0, 10),
                contact(0, 2, 110, 120),
                contact(0, 1, 620, 640),
            ],
        )
        .unwrap();
        let gaps = trace.intercontact_gaps();
        // Node 0: end 10 -> start 110 (gap 100), end 120 -> start 620 (gap 500).
        assert_eq!(
            gaps[0],
            vec![SimDuration::from_secs(100), SimDuration::from_secs(500)]
        );
        // Node 1: end 10 -> start 620.
        assert_eq!(gaps[1], vec![SimDuration::from_secs(610)]);
        assert!(gaps[2].is_empty());
        // Mean over {100, 500, 610}.
        assert_eq!(
            trace.mean_intercontact_gap(),
            SimDuration::from_millis(403_333)
        );
    }

    #[test]
    fn mean_contact_duration() {
        let trace = ContactTrace::new(
            2,
            t(1_000),
            vec![contact(0, 1, 0, 100), contact(0, 1, 200, 500)],
        )
        .unwrap();
        assert_eq!(trace.mean_contact_duration(), SimDuration::from_secs(200));
        let empty = ContactTrace::new(2, t(10), vec![]).unwrap();
        assert_eq!(empty.mean_contact_duration(), SimDuration::ZERO);
    }

    #[test]
    fn temporal_reachability_respects_time_order() {
        // 0 meets 1 at t=100, 1 meets 2 at t=50: a bundle born at t=0 on
        // node 0 reaches 1 but NOT 2 (the 1-2 contact predates 1's copy).
        let trace = ContactTrace::new(
            3,
            t(1_000),
            vec![contact(1, 2, 50, 60), contact(0, 1, 100, 110)],
        )
        .unwrap();
        let reach = trace.temporal_reachability(NodeId(0), SimTime::ZERO);
        assert_eq!(reach, vec![true, true, false]);
        assert!(!trace.is_temporally_connected(SimTime::ZERO));
    }

    #[test]
    fn temporal_reachability_chains_forward() {
        let trace = ContactTrace::new(
            4,
            t(1_000),
            vec![
                contact(0, 1, 10, 20),
                contact(1, 2, 30, 40),
                contact(2, 3, 50, 60),
            ],
        )
        .unwrap();
        let reach = trace.temporal_reachability(NodeId(0), SimTime::ZERO);
        assert_eq!(reach, vec![true, true, true, true]);
    }

    #[test]
    fn temporal_reachability_ignores_contacts_before_from() {
        let trace = ContactTrace::new(2, t(1_000), vec![contact(0, 1, 10, 20)]).unwrap();
        let reach = trace.temporal_reachability(NodeId(0), t(30));
        assert_eq!(reach, vec![true, false]);
    }

    #[test]
    fn pair_counts() {
        let trace = ContactTrace::new(
            3,
            t(1_000),
            vec![
                contact(0, 1, 0, 5),
                contact(1, 0, 10, 15),
                contact(1, 2, 20, 25),
            ],
        )
        .unwrap();
        let counts = trace.pair_contact_counts();
        assert_eq!(counts[&(NodeId(0), NodeId(1))], 2);
        assert_eq!(counts[&(NodeId(1), NodeId(2))], 1);
    }
}
