//! The paper's modified RWP: the "subscriber point" model.
//!
//! Section IV of the paper notes two RWP pathologies (odd zig-zag motion
//! and speed decay) and sidesteps them by generating an RWP *trace* in
//! which nodes hop between fixed rendezvous ("subscriber") points:
//!
//! > "there are less than 100 subscriber points in a one square kilometre
//! > area, and nodes encounter and exchange bundles at each point. When
//! > nodes reach one subscriber point, they will randomly stop for less
//! > than 1000 seconds and move to the next subscriber point … the distance
//! > between any two subscriber points is less than 1,000 meters … the
//! > velocity of nodes in our experiments ranges from 0 to 10 m/s …
//! > Nodes may be in contact … for a maximum 500 seconds."
//!
//! We model exactly that: `K < 100` points placed uniformly in a
//! 1 km × 1 km area, each node alternating `pause at point → travel to a
//! random other point`. Travel time is `distance / speed` with speed drawn
//! uniformly from `(0, 10]` m/s (bounded away from zero so travel
//! terminates). Two nodes are in contact while simultaneously paused at the
//! same point, clamped to the 500 s maximum the paper imposes.

use crate::contact::{Contact, ContactTrace, NodeId};
use dtn_sim::{SimDuration, SimRng, SimTime};

/// Parameters of the subscriber-point RWP variant. Defaults are the paper's
/// RWP scenario: 12 nodes, 600 000 s horizon, < 100 points in 1 km².
#[derive(Clone, Debug)]
pub struct SubscriberParams {
    /// Number of mobile nodes.
    pub nodes: usize,
    /// Simulation horizon (paper: 600 000 s).
    pub horizon: SimTime,
    /// Number of subscriber points (paper: < 100 per km²).
    pub points: usize,
    /// Side of the square deployment area in meters (paper: 1 km).
    pub area_side_m: f64,
    /// Upper bound on the pause at a point (paper: < 1000 s).
    pub pause_max: SimDuration,
    /// Slowest travel speed (m/s); must be positive so travel terminates.
    pub speed_min_mps: f64,
    /// Fastest travel speed (paper: 10 m/s).
    pub speed_max_mps: f64,
    /// Longest allowed single contact (paper: 500 s).
    pub contact_cap: SimDuration,
}

impl Default for SubscriberParams {
    fn default() -> Self {
        // Calibrated toward frequent-but-brief co-location: nodes pause
        // briefly at many points and walk quickly between them, so a node
        // meets someone every ~10–20 minutes (far beyond a 300 s TTL) and
        // each meeting carries only a bundle or two — the combination the
        // paper's RWP results imply (fixed-TTL delivery far below 100 %,
        // delays of 1–6 × 10⁴ s). All values stay inside the paper's
        // stated envelopes (< 100 points/km², pauses < 1000 s, speeds in
        // (0, 10] m/s, contacts ≤ 500 s).
        SubscriberParams {
            nodes: 12,
            horizon: SimTime::from_secs(600_000),
            points: 30,
            area_side_m: 1_000.0,
            pause_max: SimDuration::from_secs(300),
            speed_min_mps: 2.0,
            speed_max_mps: 10.0,
            contact_cap: SimDuration::from_secs(500),
        }
    }
}

/// One stay of one node at a rendezvous location (a subscriber point, or
/// an access point in association-log replays).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Visit {
    pub(crate) node: NodeId,
    pub(crate) point: usize,
    pub(crate) arrive: SimTime,
    pub(crate) depart: SimTime,
}

impl SubscriberParams {
    fn validate(&self) {
        assert!(self.nodes >= 2);
        assert!(self.points >= 2, "need at least two subscriber points");
        assert!(
            self.points < 100,
            "paper bounds subscriber points below 100/km²"
        );
        assert!(self.area_side_m > 0.0);
        assert!(self.speed_min_mps > 0.0 && self.speed_max_mps >= self.speed_min_mps);
        assert!(
            !self.pause_max.is_zero(),
            "zero pause makes contacts impossible"
        );
    }

    /// Generate the contact trace.
    pub fn generate(&self, rng: &mut SimRng) -> ContactTrace {
        self.validate();
        // Place the points.
        let points: Vec<(f64, f64)> = (0..self.points)
            .map(|_| {
                (
                    rng.range_f64(0.0, self.area_side_m),
                    rng.range_f64(0.0, self.area_side_m),
                )
            })
            .collect();

        // Walk each node through pause/travel cycles, recording visits.
        let mut visits: Vec<Visit> = Vec::new();
        for n in 0..self.nodes as u16 {
            let mut t = SimTime::ZERO;
            let mut here = rng.below(self.points as u64) as usize;
            while t < self.horizon {
                let pause = rng.duration_in(SimDuration::from_secs(1), self.pause_max);
                let depart = (t + pause).min(self.horizon);
                visits.push(Visit {
                    node: NodeId(n),
                    point: here,
                    arrive: t,
                    depart,
                });
                if depart >= self.horizon {
                    break;
                }
                let next = if self.points == 1 {
                    here
                } else {
                    // Random *other* point.
                    let r = rng.below(self.points as u64 - 1) as usize;
                    if r >= here {
                        r + 1
                    } else {
                        r
                    }
                };
                let (x0, y0) = points[here];
                let (x1, y1) = points[next];
                let dist = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt().max(1.0);
                let speed = rng.range_f64(self.speed_min_mps, self.speed_max_mps);
                let travel = SimDuration::from_secs_f64(dist / speed);
                t = depart + travel;
                here = next;
            }
        }

        // Contacts: pairwise presence overlaps at the same point.
        let contacts = co_location_contacts(&mut visits, self.contact_cap, self.horizon);
        ContactTrace::new(self.nodes, self.horizon, contacts)
            .expect("generator upholds trace invariants")
    }
}

/// Convert point visits into pairwise contacts: every overlap of two
/// different nodes' stays at the same point, clamped to `cap`.
pub(crate) fn co_location_contacts(
    visits: &mut [Visit],
    cap: SimDuration,
    horizon: SimTime,
) -> Vec<Contact> {
    // Group by point, then sweep each group's visits sorted by arrival.
    visits.sort_by_key(|v| (v.point, v.arrive, v.node));
    let mut contacts = Vec::new();
    let mut group_start = 0usize;
    while group_start < visits.len() {
        let point = visits[group_start].point;
        let mut group_end = group_start;
        while group_end < visits.len() && visits[group_end].point == point {
            group_end += 1;
        }
        let group = &visits[group_start..group_end];
        for (i, va) in group.iter().enumerate() {
            for vb in &group[i + 1..] {
                if vb.arrive >= va.depart {
                    break; // arrivals are sorted; nothing later overlaps va
                }
                if va.node == vb.node {
                    continue;
                }
                let start = va.arrive.max(vb.arrive);
                let end = va.depart.min(vb.depart).min(start + cap).min(horizon);
                if end > start {
                    contacts.push(Contact::new(va.node, vb.node, start, end));
                }
            }
        }
        group_start = group_end;
    }
    contacts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_nonempty_trace() {
        let params = SubscriberParams::default();
        let trace = params.generate(&mut SimRng::new(1));
        assert_eq!(trace.node_count(), 12);
        assert!(trace.len() > 50, "only {} contacts", trace.len());
        for c in trace.contacts() {
            assert!(c.start < c.end && c.end <= trace.horizon());
        }
    }

    #[test]
    fn respects_contact_cap() {
        let params = SubscriberParams::default();
        let trace = params.generate(&mut SimRng::new(3));
        for c in trace.contacts() {
            assert!(
                c.duration() <= params.contact_cap,
                "contact of {} exceeds 500 s cap",
                c.duration()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let params = SubscriberParams::default();
        let a = params.generate(&mut SimRng::new(9));
        let b = params.generate(&mut SimRng::new(9));
        assert_eq!(a.contacts(), b.contacts());
    }

    #[test]
    fn co_location_requires_same_point_and_overlap() {
        let mk = |node: u16, point: usize, arrive: u64, depart: u64| Visit {
            node: NodeId(node),
            point,
            arrive: SimTime::from_secs(arrive),
            depart: SimTime::from_secs(depart),
        };
        let mut visits = vec![
            mk(0, 0, 0, 100),
            mk(1, 0, 50, 150),  // overlaps node 0 at point 0: [50, 100]
            mk(2, 1, 50, 150),  // different point: no contact
            mk(3, 0, 200, 300), // same point, later: no overlap
        ];
        let contacts = co_location_contacts(
            &mut visits,
            SimDuration::from_secs(500),
            SimTime::from_secs(10_000),
        );
        assert_eq!(contacts.len(), 1);
        assert_eq!(contacts[0].a, NodeId(0));
        assert_eq!(contacts[0].b, NodeId(1));
        assert_eq!(contacts[0].start, SimTime::from_secs(50));
        assert_eq!(contacts[0].end, SimTime::from_secs(100));
    }

    #[test]
    fn co_location_cap_clamps_long_overlaps() {
        let mk = |node: u16, arrive: u64, depart: u64| Visit {
            node: NodeId(node),
            point: 0,
            arrive: SimTime::from_secs(arrive),
            depart: SimTime::from_secs(depart),
        };
        let mut visits = vec![mk(0, 0, 900), mk(1, 0, 900)];
        let contacts = co_location_contacts(
            &mut visits,
            SimDuration::from_secs(500),
            SimTime::from_secs(10_000),
        );
        assert_eq!(contacts[0].duration(), SimDuration::from_secs(500));
    }

    #[test]
    fn same_node_repeat_visits_do_not_self_contact() {
        let mk = |point: usize, arrive: u64, depart: u64| Visit {
            node: NodeId(0),
            point,
            arrive: SimTime::from_secs(arrive),
            depart: SimTime::from_secs(depart),
        };
        // Artificial overlap of the same node with itself must be ignored.
        let mut visits = vec![mk(0, 0, 100), mk(0, 0, 50)];
        let contacts = co_location_contacts(
            &mut visits,
            SimDuration::from_secs(500),
            SimTime::from_secs(10_000),
        );
        assert!(contacts.is_empty());
    }

    #[test]
    fn sparser_points_mean_fewer_contacts_per_node() {
        // More subscriber points spread the same nodes thinner, so pairwise
        // co-location becomes rarer.
        let few = SubscriberParams {
            points: 5,
            horizon: SimTime::from_secs(100_000),
            ..SubscriberParams::default()
        };
        let many = SubscriberParams {
            points: 80,
            horizon: SimTime::from_secs(100_000),
            ..SubscriberParams::default()
        };
        let n_few = few.generate(&mut SimRng::new(5)).len();
        let n_many = many.generate(&mut SimRng::new(5)).len();
        assert!(
            n_few > n_many,
            "5 points: {n_few} contacts; 80 points: {n_many}"
        );
    }

    #[test]
    #[should_panic(expected = "below 100")]
    fn rejects_too_many_points() {
        let params = SubscriberParams {
            points: 150,
            ..SubscriberParams::default()
        };
        params.generate(&mut SimRng::new(0));
    }
}
