//! Access-point association logs → contact traces.
//!
//! Besides the Haggle encounter records, the paper points at CRAWDAD's
//! Dartmouth campus dataset (its reference \[17\]) as a mobility source its
//! simulator can consume. That dataset is not pairwise encounters but
//! *AP association logs*: per-device records of which wireless access
//! point the device was attached to, over time. The standard reduction —
//! which this module implements — treats two devices as "in contact"
//! while they are simultaneously associated to the same AP, exactly the
//! co-location semantics of the subscriber-point model.
//!
//! ## Format
//!
//! ```text
//! # comments and blank lines are ignored
//! % horizon 100000        (optional; default: the last event time)
//! % cap 500               (optional: clamp each contact to this many seconds)
//! <time_s> <node_id> <ap_name>
//! <time_s> <node_id> OFF
//! ```
//!
//! Each record says: at `time_s`, `node_id` associated to `ap_name`
//! (implicitly leaving its previous AP), or went offline (`OFF`). Events
//! per node must be time-ordered; AP names are arbitrary tokens.

use crate::contact::ContactTrace;
use crate::subscriber::{co_location_contacts, Visit};
use crate::trace_io::TraceError;
use dtn_sim::{SimDuration, SimTime};
use std::collections::HashMap;
use std::io::BufRead;

fn malformed(line: usize, reason: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Parse an association log into a contact trace.
pub fn parse_association_log<R: BufRead>(reader: R) -> Result<ContactTrace, TraceError> {
    let mut ap_ids: HashMap<String, usize> = HashMap::new();
    // Per node: currently-open association (ap index, since).
    let mut open: HashMap<u16, (usize, SimTime)> = HashMap::new();
    let mut last_event: HashMap<u16, SimTime> = HashMap::new();
    let mut visits: Vec<Visit> = Vec::new();
    let mut declared_horizon: Option<SimTime> = None;
    let mut cap: Option<SimDuration> = None;
    let mut max_node: u16 = 0;
    let mut max_time = SimTime::ZERO;

    let close = |node: u16,
                 at: SimTime,
                 open: &mut HashMap<u16, (usize, SimTime)>,
                 visits: &mut Vec<Visit>| {
        if let Some((ap, since)) = open.remove(&node) {
            if at > since {
                visits.push(Visit {
                    node: crate::NodeId(node),
                    point: ap,
                    arrive: since,
                    depart: at,
                });
            }
        }
    };

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let body = line.trim();
        if body.is_empty() || body.starts_with('#') {
            continue;
        }
        if let Some(directive) = body.strip_prefix('%') {
            let mut parts = directive.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("horizon"), Some(v)) => {
                    let secs: f64 = v
                        .parse()
                        .map_err(|_| malformed(line_no, format!("bad horizon {v:?}")))?;
                    declared_horizon = Some(SimTime::from_secs_f64(secs));
                }
                (Some("cap"), Some(v)) => {
                    let secs: u64 = v
                        .parse()
                        .map_err(|_| malformed(line_no, format!("bad cap {v:?}")))?;
                    cap = Some(SimDuration::from_secs(secs));
                }
                (Some(other), _) => {
                    return Err(malformed(line_no, format!("unknown directive %{other}")))
                }
                (None, _) => return Err(malformed(line_no, "empty directive")),
            }
            continue;
        }

        let mut fields = body.split_whitespace();
        let time_raw = fields
            .next()
            .ok_or_else(|| malformed(line_no, "missing <time>"))?;
        let node_raw = fields
            .next()
            .ok_or_else(|| malformed(line_no, "missing <node_id>"))?;
        let ap_raw = fields
            .next()
            .ok_or_else(|| malformed(line_no, "missing <ap_name>"))?;

        let secs: f64 = time_raw
            .parse()
            .map_err(|_| malformed(line_no, format!("bad time {time_raw:?}")))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(malformed(line_no, format!("bad time {time_raw:?}")));
        }
        let t = SimTime::from_secs_f64(secs);
        let node: u16 = node_raw
            .parse()
            .map_err(|_| malformed(line_no, format!("bad node id {node_raw:?}")))?;
        if let Some(&prev) = last_event.get(&node) {
            if t < prev {
                return Err(malformed(
                    line_no,
                    format!("events for node {node} out of order ({t} after {prev})"),
                ));
            }
        }
        last_event.insert(node, t);
        max_node = max_node.max(node);
        max_time = max_time.max(t);

        // Any event terminates the node's previous association.
        close(node, t, &mut open, &mut visits);
        if ap_raw != "OFF" {
            let next_id = ap_ids.len();
            let ap = *ap_ids.entry(ap_raw.to_string()).or_insert(next_id);
            open.insert(node, (ap, t));
        }
    }

    let horizon = declared_horizon.unwrap_or(max_time);
    // Close every association still open at the horizon.
    let still_open: Vec<u16> = open.keys().copied().collect();
    for node in still_open {
        close(node, horizon, &mut open, &mut visits);
    }

    let node_count = (max_node as usize + 1).max(2);
    let contacts = co_location_contacts(&mut visits, cap.unwrap_or(SimDuration::MAX), horizon);
    ContactTrace::new(node_count, horizon, contacts).map_err(TraceError::Invariant)
}

/// Parse from an in-memory string.
pub fn parse_association_str(text: &str) -> Result<ContactTrace, TraceError> {
    parse_association_log(std::io::Cursor::new(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn co_location_becomes_a_contact() {
        // Nodes 0 and 1 overlap at AP "lib" during [100, 250].
        let text = "0 0 lib\n100 1 lib\n250 0 OFF\n400 1 OFF\n";
        let trace = parse_association_str(text).unwrap();
        assert_eq!(trace.len(), 1);
        let c = trace.contacts()[0];
        assert_eq!((c.a, c.b), (NodeId(0), NodeId(1)));
        assert_eq!(c.start, SimTime::from_secs(100));
        assert_eq!(c.end, SimTime::from_secs(250));
    }

    #[test]
    fn different_aps_never_meet() {
        let text = "0 0 lib\n0 1 cafe\n500 0 OFF\n500 1 OFF\n";
        let trace = parse_association_str(text).unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn reassociation_moves_the_node() {
        // Node 1 hops lib -> cafe at t=200; node 0 stays at lib, node 2
        // sits at cafe the whole time.
        let text = "0 0 lib\n0 1 lib\n0 2 cafe\n200 1 cafe\n600 0 OFF\n600 1 OFF\n600 2 OFF\n";
        let trace = parse_association_str(text).unwrap();
        assert_eq!(trace.len(), 2);
        // lib: 0 with 1 during [0, 200); cafe: 1 with 2 during [200, 600).
        let lib = trace.contacts()[0];
        assert_eq!((lib.a, lib.b), (NodeId(0), NodeId(1)));
        assert_eq!(lib.end, SimTime::from_secs(200));
        let cafe = trace.contacts()[1];
        assert_eq!((cafe.a, cafe.b), (NodeId(1), NodeId(2)));
        assert_eq!(cafe.start, SimTime::from_secs(200));
    }

    #[test]
    fn open_associations_close_at_the_horizon() {
        let text = "% horizon 1000\n0 0 lib\n0 1 lib\n";
        let trace = parse_association_str(text).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.contacts()[0].end, SimTime::from_secs(1_000));
    }

    #[test]
    fn cap_clamps_long_colocations() {
        let text = "% horizon 2000\n% cap 300\n0 0 lib\n0 1 lib\n";
        let trace = parse_association_str(text).unwrap();
        assert_eq!(trace.contacts()[0].duration(), SimDuration::from_secs(300));
    }

    #[test]
    fn out_of_order_events_are_rejected_with_line_number() {
        let text = "100 0 lib\n50 0 cafe\n";
        match parse_association_str(text).unwrap_err() {
            TraceError::Malformed { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("out of order"), "{reason}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn garbage_fields_are_rejected() {
        assert!(matches!(
            parse_association_str("zero 0 lib\n").unwrap_err(),
            TraceError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_association_str("0 0\n").unwrap_err(),
            TraceError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_association_str("% speed 3\n").unwrap_err(),
            TraceError::Malformed { line: 1, .. }
        ));
    }

    #[test]
    fn replay_through_the_simulator_interface() {
        // The association reduction yields a normal ContactTrace usable
        // by everything downstream.
        let text = "0 0 a\n0 1 a\n300 1 b\n300 2 b\n700 0 OFF\n700 1 OFF\n700 2 OFF\n";
        let trace = parse_association_str(text).unwrap();
        assert_eq!(trace.node_count(), 3);
        assert!(trace.temporal_reachability(NodeId(0), SimTime::ZERO)[2]);
    }
}
