//! Contact-trace file IO.
//!
//! The paper replays the CRAWDAD `cambridge/haggle/imote/intel` dataset
//! (Scott et al.): 12 short-range devices carried by students for five days,
//! each record giving the pair of devices, the rendezvous begin time and the
//! duration/end time. The raw dataset is distributed under a CRAWDAD
//! agreement and cannot be vendored, so this module defines a plain-text
//! interchange format that the published records map onto line-for-line,
//! and [`crate::synthetic`] generates statistically matched stand-ins.
//!
//! ## Format
//!
//! ```text
//! # comment lines and blank lines are ignored
//! % nodes 12
//! % horizon 524162
//! <node_a> <node_b> <start_seconds> <end_seconds> [ignored extra columns...]
//! ```
//!
//! * header directives (`% nodes`, `% horizon`) are optional; when absent,
//!   the node count is `max id + 1` and the horizon is the latest end time;
//! * node ids are non-negative integers; times are integer seconds (matching
//!   the dataset's resolution) or decimal seconds;
//! * extra trailing columns (the dataset carries an encounter sequence
//!   number) are ignored, so real exports drop in unchanged;
//! * zero-length or inverted records and self-contacts are reported as
//!   errors with their line number rather than silently dropped.

use crate::contact::{Contact, ContactTrace, NodeId, TraceInvariantError};
use dtn_sim::SimTime;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from [`parse_trace`].
#[derive(Debug)]
pub enum TraceError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A malformed line (wrong arity, unparsable field, self-contact,
    /// inverted interval…), with its 1-based line number.
    Malformed {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The parsed records violate trace-level invariants.
    Invariant(TraceInvariantError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace IO error: {e}"),
            TraceError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            TraceError::Invariant(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceInvariantError> for TraceError {
    fn from(e: TraceInvariantError) -> Self {
        TraceError::Invariant(e)
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Parse seconds (integer or decimal) into a [`SimTime`].
fn parse_time(field: &str, line: usize) -> Result<SimTime, TraceError> {
    if let Ok(secs) = field.parse::<u64>() {
        return Ok(SimTime::from_secs(secs));
    }
    match field.parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs >= 0.0 => Ok(SimTime::from_secs_f64(secs)),
        _ => Err(malformed(line, format!("unparsable time {field:?}"))),
    }
}

/// Parse a contact trace from any buffered reader.
pub fn parse_trace<R: BufRead>(reader: R) -> Result<ContactTrace, TraceError> {
    let mut contacts = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    let mut declared_horizon: Option<SimTime> = None;
    let mut max_node: u16 = 0;
    let mut max_end = SimTime::ZERO;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let body = line.trim();
        if body.is_empty() || body.starts_with('#') {
            continue;
        }
        if let Some(directive) = body.strip_prefix('%') {
            let mut parts = directive.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("nodes"), Some(v)) => {
                    declared_nodes = Some(
                        v.parse::<usize>()
                            .map_err(|_| malformed(line_no, format!("bad node count {v:?}")))?,
                    );
                }
                (Some("horizon"), Some(v)) => {
                    declared_horizon = Some(parse_time(v, line_no)?);
                }
                (Some(other), _) => {
                    return Err(malformed(line_no, format!("unknown directive %{other}")))
                }
                (None, _) => return Err(malformed(line_no, "empty directive")),
            }
            continue;
        }

        let mut fields = body.split_whitespace();
        let mut next_field = |name: &str| {
            fields
                .next()
                .ok_or_else(|| malformed(line_no, format!("missing field <{name}>")))
        };
        let a_raw = next_field("node_a")?;
        let b_raw = next_field("node_b")?;
        let start_raw = next_field("start")?;
        let end_raw = next_field("end")?;

        let a: u16 = a_raw
            .parse()
            .map_err(|_| malformed(line_no, format!("bad node id {a_raw:?}")))?;
        let b: u16 = b_raw
            .parse()
            .map_err(|_| malformed(line_no, format!("bad node id {b_raw:?}")))?;
        if a == b {
            return Err(malformed(line_no, format!("self-contact on node {a}")));
        }
        let start = parse_time(start_raw, line_no)?;
        let end = parse_time(end_raw, line_no)?;
        if end <= start {
            return Err(malformed(
                line_no,
                format!(
                    "contact interval is empty or inverted ({}..{})",
                    start.as_secs_f64(),
                    end.as_secs_f64()
                ),
            ));
        }

        max_node = max_node.max(a).max(b);
        max_end = max_end.max(end);
        contacts.push(Contact::new(NodeId(a), NodeId(b), start, end));
    }

    let node_count = declared_nodes.unwrap_or(max_node as usize + 1);
    let horizon = declared_horizon.unwrap_or(max_end);
    Ok(ContactTrace::new(node_count, horizon, contacts)?)
}

/// Parse a trace from an in-memory string (convenience for tests and
/// embedded scenarios).
pub fn parse_trace_str(text: &str) -> Result<ContactTrace, TraceError> {
    parse_trace(std::io::Cursor::new(text))
}

/// Read a trace from a file path.
pub fn read_trace_file(path: &std::path::Path) -> Result<ContactTrace, TraceError> {
    let file = std::fs::File::open(path)?;
    parse_trace(std::io::BufReader::new(file))
}

/// Serialize a trace in the format [`parse_trace`] accepts (header
/// directives included, so node count and horizon round-trip exactly).
pub fn write_trace<W: Write>(trace: &ContactTrace, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# contact trace: {} contacts", trace.len())?;
    writeln!(out, "% nodes {}", trace.node_count())?;
    writeln!(out, "% horizon {}", trace.horizon().as_secs_f64())?;
    for c in trace.contacts() {
        writeln!(
            out,
            "{} {} {} {}",
            c.a.0,
            c.b.0,
            c.start.as_secs_f64(),
            c.end.as_secs_f64()
        )?;
    }
    Ok(())
}

/// Serialize a trace to a string.
pub fn write_trace_string(trace: &ContactTrace) -> String {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("trace text is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::SimDuration;

    #[test]
    fn parses_minimal_trace() {
        let trace = parse_trace_str("0 1 100 200\n1 2 300 450\n").unwrap();
        assert_eq!(trace.node_count(), 3);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.horizon(), SimTime::from_secs(450));
        assert_eq!(trace.contacts()[0].duration(), SimDuration::from_secs(100));
    }

    #[test]
    fn honors_header_directives() {
        let trace = parse_trace_str("% nodes 12\n% horizon 524162\n3 9 3568 3882\n").unwrap();
        assert_eq!(trace.node_count(), 12);
        assert_eq!(trace.horizon(), SimTime::from_secs(524_162));
        // The paper's worked example: nodes 3 and 9, 314 s encounter.
        assert_eq!(trace.contacts()[0].duration(), SimDuration::from_secs(314));
    }

    #[test]
    fn skips_comments_blank_lines_and_extra_columns() {
        let text = "# a comment\n\n0 1 10 20 7 extra junk\n   \n# another\n1 0 30 40\n";
        let trace = parse_trace_str(text).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn accepts_decimal_times() {
        let trace = parse_trace_str("0 1 10.5 20.25\n").unwrap();
        assert_eq!(trace.contacts()[0].start, SimTime::from_millis(10_500));
        assert_eq!(trace.contacts()[0].end, SimTime::from_millis(20_250));
    }

    #[test]
    fn rejects_self_contact_with_line_number() {
        let err = parse_trace_str("0 1 0 5\n3 3 10 20\n").unwrap_err();
        match err {
            TraceError::Malformed { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("self-contact"), "{reason}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_inverted_interval() {
        let err = parse_trace_str("0 1 50 50\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_missing_fields() {
        let err = parse_trace_str("0 1 50\n").unwrap_err();
        match err {
            TraceError::Malformed { reason, .. } => assert!(reason.contains("<end>")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_bad_node_id() {
        let err = parse_trace_str("zero 1 0 5\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = parse_trace_str("% speed 12\n").unwrap_err();
        match err {
            TraceError::Malformed { reason, .. } => assert!(reason.contains("speed")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_contact_past_declared_horizon() {
        let err = parse_trace_str("% horizon 100\n0 1 90 150\n").unwrap_err();
        assert!(matches!(err, TraceError::Invariant(_)));
    }

    #[test]
    fn round_trips_exactly() {
        let original =
            parse_trace_str("% nodes 5\n% horizon 1000\n0 4 1 99\n2 3 50.5 60.75\n").unwrap();
        let text = write_trace_string(&original);
        let reparsed = parse_trace_str(&text).unwrap();
        assert_eq!(reparsed.node_count(), original.node_count());
        assert_eq!(reparsed.horizon(), original.horizon());
        assert_eq!(reparsed.contacts(), original.contacts());
    }

    #[test]
    fn file_round_trip() {
        let trace = parse_trace_str("0 1 5 10\n").unwrap();
        let dir = std::env::temp_dir().join("dtn_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        std::fs::write(&path, write_trace_string(&trace)).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back.contacts(), trace.contacts());
        std::fs::remove_file(&path).ok();
    }
}
