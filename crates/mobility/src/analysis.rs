//! Contact-trace analysis.
//!
//! The paper's methodology rests on the statistical anatomy of its
//! mobility inputs — heavy-tailed inter-contact times most of all. This
//! module provides the estimators needed to *verify* that a trace
//! (synthetic or real) has the right anatomy:
//!
//! * empirical CCDFs of inter-contact gaps and contact durations;
//! * the Hill estimator for the power-law (Pareto) tail exponent, the
//!   quantity Chaintreau et al. report as ≈ 0.4 for the Cambridge data;
//! * a [`TraceSummary`] one-stop report used by the `trace_stats` example
//!   and the calibration tests.
//!
//! All estimators are deterministic pure functions of the trace.

use crate::contact::{ContactTrace, NodeId};
use dtn_sim::SimTime;
use std::collections::HashMap;

/// An empirical complementary CDF: for each sample value `x`,
/// `P(X > x)` estimated from the data.
#[derive(Clone, Debug)]
pub struct Ccdf {
    /// Sorted sample values.
    sorted: Vec<f64>,
}

impl Ccdf {
    /// Build from raw samples (non-finite values are dropped).
    pub fn new(mut samples: Vec<f64>) -> Ccdf {
        samples.retain(|x| x.is_finite());
        samples.sort_by(f64::total_cmp);
        Ccdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples survived.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X > x)`.
    pub fn tail(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Index of the first element > x.
        let above = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - above) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`, nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        self.sorted[rank]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Evenly spaced `(x, P(X > x))` points in log-x space, suitable for
    /// plotting a power-law tail.
    pub fn log_spaced_points(&self, count: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || count == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0].max(1e-9);
        let hi = *self.sorted.last().expect("non-empty");
        if hi <= lo {
            return vec![(lo, self.tail(lo))];
        }
        let (ln_lo, ln_hi) = (lo.ln(), hi.ln());
        (0..count)
            .map(|i| {
                let x = (ln_lo + (ln_hi - ln_lo) * i as f64 / (count - 1).max(1) as f64).exp();
                (x, self.tail(x))
            })
            .collect()
    }
}

/// Hill estimator of the tail exponent α of `P(X > x) ~ x^{-α}`, using
/// the top `k` order statistics. Returns `None` with insufficient data.
///
/// The estimator is `α̂ = k / Σ_{i=1..k} ln(x_(n-i+1) / x_(n-k))` — the
/// standard MLE for a Pareto tail.
pub fn hill_estimator(samples: &[f64], k: usize) -> Option<f64> {
    let mut xs: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .collect();
    if k < 2 || xs.len() <= k {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let threshold = xs[xs.len() - k - 1];
    if threshold <= 0.0 {
        return None;
    }
    let sum: f64 = xs[xs.len() - k..]
        .iter()
        .map(|&x| (x / threshold).ln())
        .sum();
    if sum <= 0.0 {
        None
    } else {
        Some(k as f64 / sum)
    }
}

/// Degree of a node in the contact graph: how many distinct peers it
/// ever meets.
pub fn contact_degrees(trace: &ContactTrace) -> Vec<usize> {
    let mut peers: Vec<std::collections::BTreeSet<NodeId>> =
        vec![Default::default(); trace.node_count()];
    for c in trace.contacts() {
        peers[c.a.index()].insert(c.b);
        peers[c.b.index()].insert(c.a);
    }
    peers.into_iter().map(|s| s.len()).collect()
}

/// Pair-level inter-contact gaps in seconds (time from the end of one
/// contact of a pair to the start of its next).
pub fn pair_intercontact_gaps(trace: &ContactTrace) -> Vec<f64> {
    let mut last_end: HashMap<(NodeId, NodeId), SimTime> = HashMap::new();
    let mut gaps = Vec::new();
    for c in trace.contacts() {
        if let Some(prev) = last_end.get(&(c.a, c.b)) {
            gaps.push(c.start.saturating_since(*prev).as_secs_f64());
        }
        last_end.insert((c.a, c.b), c.end);
    }
    gaps
}

/// Contact durations in seconds.
pub fn contact_durations(trace: &ContactTrace) -> Vec<f64> {
    trace
        .contacts()
        .iter()
        .map(|c| c.duration().as_secs_f64())
        .collect()
}

/// A one-stop statistical report over a trace.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Node count.
    pub nodes: usize,
    /// Contact count.
    pub contacts: usize,
    /// Observation horizon in seconds.
    pub horizon_s: f64,
    /// Mean contact duration (s).
    pub mean_duration_s: f64,
    /// Median contact duration (s).
    pub median_duration_s: f64,
    /// Mean pair-level inter-contact gap (s).
    pub mean_pair_gap_s: f64,
    /// Median pair-level inter-contact gap (s).
    pub median_pair_gap_s: f64,
    /// Share of pair gaps exceeding one hour.
    pub pair_gaps_over_1h: f64,
    /// Hill tail-exponent estimate of the pair-gap distribution (the
    /// Cambridge dataset's is ≈ 0.4), when estimable.
    pub gap_tail_exponent: Option<f64>,
    /// Mean contacts per unordered node pair.
    pub contacts_per_pair: f64,
    /// Smallest contact-graph degree (a 0 means an isolated node).
    pub min_degree: usize,
    /// True when every pair is joined by a space-time path from t = 0.
    pub temporally_connected: bool,
}

impl TraceSummary {
    /// Compute the report.
    pub fn of(trace: &ContactTrace) -> TraceSummary {
        let durations = Ccdf::new(contact_durations(trace));
        let gaps_raw = pair_intercontact_gaps(trace);
        let gaps = Ccdf::new(gaps_raw.clone());
        let pairs = trace.node_count() * (trace.node_count() - 1) / 2;
        let degrees = contact_degrees(trace);
        TraceSummary {
            nodes: trace.node_count(),
            contacts: trace.len(),
            horizon_s: trace.horizon().as_secs_f64(),
            mean_duration_s: durations.mean(),
            median_duration_s: durations.quantile(0.5),
            mean_pair_gap_s: gaps.mean(),
            median_pair_gap_s: gaps.quantile(0.5),
            pair_gaps_over_1h: gaps.tail(3_600.0),
            gap_tail_exponent: hill_estimator(&gaps_raw, gaps_raw.len() / 4),
            contacts_per_pair: trace.len() as f64 / pairs.max(1) as f64,
            min_degree: degrees.into_iter().min().unwrap_or(0),
            temporally_connected: trace.is_temporally_connected(SimTime::ZERO),
        }
    }

    /// Render as an aligned key/value block.
    pub fn to_text(&self) -> String {
        format!(
            "nodes                     {}\n\
             contacts                  {}\n\
             horizon                   {:.0} s\n\
             contact duration          mean {:.0} s, median {:.0} s\n\
             pair inter-contact gap    mean {:.0} s, median {:.0} s\n\
             pair gaps > 1 h           {:.1} %\n\
             gap tail exponent (Hill)  {}\n\
             contacts per pair         {:.1}\n\
             min contact-graph degree  {}\n\
             temporally connected      {}\n",
            self.nodes,
            self.contacts,
            self.horizon_s,
            self.mean_duration_s,
            self.median_duration_s,
            self.mean_pair_gap_s,
            self.median_pair_gap_s,
            100.0 * self.pair_gaps_over_1h,
            self.gap_tail_exponent
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            self.contacts_per_pair,
            self.min_degree,
            self.temporally_connected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use crate::synthetic::HaggleParams;
    use dtn_sim::SimRng;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn ccdf_basics() {
        let ccdf = Ccdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ccdf.len(), 4);
        assert_eq!(ccdf.tail(0.0), 1.0);
        assert_eq!(ccdf.tail(2.0), 0.5);
        assert_eq!(ccdf.tail(4.0), 0.0);
        assert_eq!(ccdf.quantile(0.0), 1.0);
        assert_eq!(ccdf.quantile(1.0), 4.0);
        assert_eq!(ccdf.mean(), 2.5);
    }

    #[test]
    fn ccdf_handles_empty_and_nan() {
        let ccdf = Ccdf::new(vec![f64::NAN, f64::INFINITY]);
        // Infinity is finite? No: retained only finite; INFINITY dropped.
        assert!(ccdf.is_empty());
        assert_eq!(ccdf.tail(1.0), 0.0);
        assert_eq!(ccdf.quantile(0.5), 0.0);
    }

    #[test]
    fn ccdf_log_points_span_the_range() {
        let ccdf = Ccdf::new((1..=1000).map(|i| i as f64).collect());
        let pts = ccdf.log_spaced_points(10);
        assert_eq!(pts.len(), 10);
        assert!(pts[0].0 <= 1.0 + 1e-9);
        assert!((pts[9].0 - 1000.0).abs() < 1e-6);
        // Tail probabilities decrease along x.
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn hill_recovers_pareto_exponent() {
        // Draw from a known Pareto(x_min = 1, alpha = 0.7) and recover α.
        let mut rng = SimRng::new(5);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.pareto(1.0, 0.7)).collect();
        let alpha = hill_estimator(&samples, 2_000).expect("estimable");
        assert!(
            (alpha - 0.7).abs() < 0.08,
            "Hill estimate {alpha} too far from 0.7"
        );
    }

    #[test]
    fn hill_rejects_degenerate_input() {
        assert_eq!(hill_estimator(&[], 10), None);
        assert_eq!(hill_estimator(&[1.0, 2.0], 5), None);
        assert_eq!(hill_estimator(&[1.0; 100], 10), None, "zero log-sum");
    }

    #[test]
    fn degrees_and_gaps() {
        let contacts = vec![
            Contact::new(NodeId(0), NodeId(1), t(0), t(10)),
            Contact::new(NodeId(0), NodeId(2), t(20), t(30)),
            Contact::new(NodeId(0), NodeId(1), t(100), t(110)),
        ];
        let trace = ContactTrace::new(4, t(1_000), contacts).unwrap();
        assert_eq!(contact_degrees(&trace), vec![2, 1, 1, 0]);
        // One repeated pair (0,1): gap from end 10 to start 100.
        assert_eq!(pair_intercontact_gaps(&trace), vec![90.0]);
        assert_eq!(contact_durations(&trace), vec![10.0, 10.0, 10.0]);
    }

    #[test]
    fn summary_of_synthetic_trace_matches_design_targets() {
        let trace = HaggleParams::default().generate(&mut SimRng::new(3));
        let summary = TraceSummary::of(&trace);
        assert_eq!(summary.nodes, 12);
        assert!(
            summary.contacts_per_pair > 2.0,
            "{}",
            summary.contacts_per_pair
        );
        assert!(
            summary.pair_gaps_over_1h > 0.5,
            "heavy tail missing: {}",
            summary.pair_gaps_over_1h
        );
        if let Some(alpha) = summary.gap_tail_exponent {
            assert!(
                (0.1..2.5).contains(&alpha),
                "implausible tail exponent {alpha}"
            );
        }
        let text = summary.to_text();
        assert!(text.contains("temporally connected"));
    }
}
