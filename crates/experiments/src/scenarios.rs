//! Scenario construction: which mobility feeds which experiment.
//!
//! The paper evaluates every protocol under two main mobility sources —
//! the Cambridge Haggle trace (here: its synthetic stand-in, plus optional
//! replay of a real trace file) and the subscriber-point RWP model — and
//! two purpose-built controlled-interval scenarios for the TTL
//! sensitivity study (Fig. 14).
//!
//! Seeding convention:
//!
//! * the **trace** scenario is a recorded dataset, so it is *fixed* across
//!   replications (seeded only by the scenario seed) — replications vary
//!   the source/destination pair and protocol coin flips, exactly like
//!   the paper's "we change the source and destination node after each
//!   run";
//! * **RWP** and **interval** scenarios are stochastic mobility, so each
//!   replication gets a freshly generated trace (seeded by scenario seed
//!   ⊕ replication index).

use dtn_mobility::{
    ContactTrace, HaggleParams, IntervalScenario, RwpParams, SubscriberParams, TraceCache, TraceKey,
};
use dtn_sim::SimRng;
use std::sync::Arc;

/// The mobility source of an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mobility {
    /// Haggle-like contact trace (the paper's "trace file" scenario).
    Trace,
    /// The paper's subscriber-point RWP model.
    Rwp,
    /// Controlled-interval scenario with the given maximum
    /// inter-encounter gap in seconds (Fig. 14: 400 or 2000).
    Interval(u64),
    /// Classic geometric RWP with analytic range-crossing contacts — the
    /// model the paper *avoids* because of its known pathologies
    /// (reference \[19\]); included so the avoidance can be studied rather
    /// than taken on faith (see `repro mobility`).
    GeometricRwp,
}

impl Mobility {
    /// Per-bundle transmission time for this scenario.
    ///
    /// The trace and RWP experiments use the paper's fixed 100 s per
    /// bundle (the worked example sends ⌊314 s / 100 s⌋ = 3 bundles;
    /// RWP contacts are capped at 500 s, i.e. at most 5 bundles — the
    /// scarcity that makes the buffer-management policies differ at all).
    /// The controlled-interval scenarios use 10 s: their contacts are
    /// deliberately short and frequent, and the paper's Fig. 14/15 levels
    /// imply multiple bundles per encounter there.
    pub fn tx_time_secs(&self) -> u64 {
        match self {
            Mobility::Trace | Mobility::Rwp | Mobility::GeometricRwp => 100,
            Mobility::Interval(_) => 10,
        }
    }

    /// Short machine-readable label for CSV columns.
    pub fn label(&self) -> String {
        match self {
            Mobility::Trace => "trace".into(),
            Mobility::Rwp => "rwp".into(),
            Mobility::Interval(max) => format!("interval{max}"),
            Mobility::GeometricRwp => "geom-rwp".into(),
        }
    }

    /// Canonical *parseable* spec string: like [`Mobility::label`] but
    /// using the CLI's `interval=SECS` form, so
    /// `Mobility::parse(&m.spec()) == Ok(m)` for every scenario. The
    /// service layer ships mobility over the wire as this string.
    pub fn spec(&self) -> String {
        match self {
            Mobility::Interval(max) => format!("interval={max}"),
            other => other.label(),
        }
    }

    /// Parse a built-in mobility spec (`trace`, `rwp`, `geom-rwp`,
    /// `interval=SECS`) — the single canonical table shared by the CLI
    /// and the service layer. Trace-file paths are *not* accepted here;
    /// callers wanting file replay layer that on top.
    pub fn parse(spec: &str) -> Result<Mobility, String> {
        match spec {
            "trace" => Ok(Mobility::Trace),
            "rwp" => Ok(Mobility::Rwp),
            "geom-rwp" => Ok(Mobility::GeometricRwp),
            other => match other.strip_prefix("interval=") {
                Some(max) => max
                    .parse::<u64>()
                    .map(Mobility::Interval)
                    .map_err(|e| format!("bad interval {max:?}: {e}")),
                None => Err(format!(
                    "unknown mobility {other:?} (trace, rwp, geom-rwp, interval=SECS)"
                )),
            },
        }
    }

    /// Scenario discriminant for [`TraceKey`]: packs the mobility kind
    /// and its parameters so distinct scenarios never share a cache slot.
    pub fn cache_key(&self) -> u64 {
        match self {
            Mobility::Trace => 1,
            Mobility::Rwp => 2,
            // Golden-ratio mix keeps any two max-gap values apart from
            // the plain discriminants above.
            Mobility::Interval(max) => 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(*max),
            Mobility::GeometricRwp => 4,
        }
    }

    /// The replication index that actually varies the generated trace:
    /// the trace scenario is a fixed dataset (see [`Mobility::build`]),
    /// so all its replications collapse onto one cache entry.
    fn effective_replication(&self, replication: u64) -> u64 {
        match self {
            Mobility::Trace => 0,
            _ => replication,
        }
    }

    /// Build the contact trace for one replication through a shared
    /// [`TraceCache`]: generated once per distinct
    /// (scenario, seed, replication), shared read-only afterwards.
    pub fn build_cached(
        &self,
        scenario_seed: u64,
        replication: u64,
        cache: &TraceCache,
    ) -> Arc<ContactTrace> {
        let key = TraceKey {
            scenario: self.cache_key(),
            seed: scenario_seed,
            replication: self.effective_replication(replication),
        };
        cache.get_or_build(key, || self.build(scenario_seed, replication))
    }

    /// Build the contact trace for one replication.
    pub fn build(&self, scenario_seed: u64, replication: u64) -> ContactTrace {
        match self {
            Mobility::Trace => {
                // Fixed dataset: ignore the replication index.
                HaggleParams::default().generate(&mut SimRng::new(scenario_seed))
            }
            Mobility::Rwp => {
                let mut rng = SimRng::new(scenario_seed).derive(replication);
                SubscriberParams::default().generate(&mut rng)
            }
            Mobility::Interval(max) => {
                let mut rng = SimRng::new(scenario_seed).derive(replication);
                IntervalScenario::with_max_interval(*max).generate(&mut rng)
            }
            Mobility::GeometricRwp => {
                let mut rng = SimRng::new(scenario_seed).derive(replication);
                // Same envelope as the subscriber-point scenario: 12 nodes,
                // 1 km², 600 000 s — only the movement process differs.
                RwpParams {
                    horizon: dtn_sim::SimTime::from_secs(600_000),
                    ..RwpParams::default()
                }
                .generate(&mut rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_scenario_is_fixed_across_replications() {
        let a = Mobility::Trace.build(1, 0);
        let b = Mobility::Trace.build(1, 9);
        assert_eq!(a.contacts(), b.contacts());
        let c = Mobility::Trace.build(2, 0);
        assert_ne!(a.contacts(), c.contacts());
    }

    #[test]
    fn rwp_scenario_varies_per_replication_but_is_reproducible() {
        let a = Mobility::Rwp.build(1, 0);
        let b = Mobility::Rwp.build(1, 1);
        assert_ne!(a.contacts(), b.contacts());
        let a2 = Mobility::Rwp.build(1, 0);
        assert_eq!(a.contacts(), a2.contacts());
    }

    #[test]
    fn interval_scenarios_differ_by_max_gap() {
        let short = Mobility::Interval(400).build(1, 0);
        let long = Mobility::Interval(2000).build(1, 0);
        assert!(
            long.mean_intercontact_gap() > short.mean_intercontact_gap(),
            "longer max interval must stretch gaps"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(Mobility::Trace.label(), "trace");
        assert_eq!(Mobility::Rwp.label(), "rwp");
        assert_eq!(Mobility::Interval(400).label(), "interval400");
    }

    #[test]
    fn spec_round_trips_through_parse() {
        for m in [
            Mobility::Trace,
            Mobility::Rwp,
            Mobility::GeometricRwp,
            Mobility::Interval(400),
            Mobility::Interval(2000),
        ] {
            assert_eq!(Mobility::parse(&m.spec()), Ok(m));
        }
        assert!(
            Mobility::parse("interval2000").is_err(),
            "label form is not a spec"
        );
        assert!(Mobility::parse("warp").is_err());
    }

    #[test]
    fn paper_universe_sizes() {
        assert_eq!(Mobility::Trace.build(1, 0).node_count(), 12);
        assert_eq!(Mobility::Rwp.build(1, 0).node_count(), 12);
        assert_eq!(Mobility::Interval(400).build(1, 0).node_count(), 20);
    }
}
