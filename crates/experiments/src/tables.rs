//! Table II and the signaling-overhead comparison.
//!
//! Table II of the paper summarizes each protocol's *average* delivery
//! rate, buffer occupancy and duplication rate over the whole load sweep,
//! for both mobility scenarios. The overhead comparison quantifies the
//! abstract's "order of magnitude less signaling" claim for cumulative
//! vs per-bundle immunity tables.

use crate::output::TextTable;
use crate::runner::{run_sweep, SweepConfig};
use crate::scenarios::Mobility;
use dtn_epidemic::{protocols, ProtocolConfig};

/// The six protocols Table II compares (original/enhanced pairs).
pub fn table2_protocols() -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("Epidemic with TTL", protocols::ttl_epidemic_default()),
        (
            "Epidemic with Dynamic TTL",
            protocols::dynamic_ttl_epidemic(),
        ),
        ("Epidemic with EC", protocols::ec_epidemic()),
        ("Epidemic with EC+TTL", protocols::ec_ttl_epidemic()),
        (
            "Epidemic with Immunity table",
            protocols::immunity_epidemic(),
        ),
        (
            "Epidemic with Cumulative Immunity table",
            protocols::cumulative_immunity_epidemic(),
        ),
    ]
}

/// Regenerate Table II: per protocol, the sweep-average delivery rate,
/// buffer occupancy and duplication rate (percent) under RWP and trace.
pub fn table2(cfg: &SweepConfig) -> TextTable {
    let mut rows = Vec::new();
    for (name, protocol) in table2_protocols() {
        let rwp = run_sweep(&protocol, Mobility::Rwp, cfg);
        let trace = run_sweep(&protocol, Mobility::Trace, cfg);
        let pct = |x: f64| format!("{:.1}", 100.0 * x);
        rows.push(vec![
            name.to_string(),
            pct(rwp.grand_mean(|p| p.delivery_ratio.mean)),
            pct(trace.grand_mean(|p| p.delivery_ratio.mean)),
            pct(rwp.grand_mean(|p| p.buffer_occupancy.mean)),
            pct(trace.grand_mean(|p| p.buffer_occupancy.mean)),
            pct(rwp.grand_mean(|p| p.duplication_rate.mean)),
            pct(trace.grand_mean(|p| p.duplication_rate.mean)),
        ]);
    }
    TextTable {
        id: "table2",
        title: "Comparison of original and enhanced protocols (sweep averages, %)".into(),
        headers: vec![
            "Protocol".into(),
            "Delivery RWP".into(),
            "Delivery Trace".into(),
            "Buffer RWP".into(),
            "Buffer Trace".into(),
            "Duplication RWP".into(),
            "Duplication Trace".into(),
        ],
        rows,
    }
}

/// The signaling-overhead study: mean immunity records transmitted per
/// run, per-bundle vs cumulative, under both mobility models, plus the
/// ratio the abstract's "order of magnitude" claim refers to.
pub fn overhead_table(cfg: &SweepConfig) -> TextTable {
    let mut rows = Vec::new();
    for mobility in [Mobility::Rwp, Mobility::Trace] {
        let per_bundle = run_sweep(&protocols::immunity_epidemic(), mobility, cfg);
        let cumulative = run_sweep(&protocols::cumulative_immunity_epidemic(), mobility, cfg);
        let pb = per_bundle.grand_mean(|p| p.ack_records.mean);
        let cu = cumulative.grand_mean(|p| p.ack_records.mean);
        let ratio = if cu > 0.0 { pb / cu } else { f64::INFINITY };
        rows.push(vec![
            mobility.label(),
            format!("{pb:.0}"),
            format!("{cu:.0}"),
            format!("{ratio:.1}x"),
        ]);
    }
    TextTable {
        id: "overhead",
        title: "Signaling overhead: immunity records transmitted per run (sweep average)".into(),
        headers: vec![
            "Scenario".into(),
            "Per-bundle immunity".into(),
            "Cumulative immunity".into(),
            "Reduction".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::Threads;

    fn smoke_cfg() -> SweepConfig {
        SweepConfig {
            loads: vec![20],
            replications: 2,
            threads: Threads::Auto,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn table2_has_six_protocol_rows() {
        let t = table2(&smoke_cfg());
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.headers.len(), 7);
        for row in &t.rows {
            assert_eq!(row.len(), 7);
            // Every percentage cell parses as a number.
            for cell in &row[1..] {
                cell.parse::<f64>().unwrap();
            }
        }
    }

    #[test]
    fn overhead_table_shows_cumulative_savings() {
        let t = overhead_table(&smoke_cfg());
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let pb: f64 = row[1].parse().unwrap();
            let cu: f64 = row[2].parse().unwrap();
            assert!(
                pb > cu,
                "per-bundle ({pb}) must out-signal cumulative ({cu}) in {}",
                row[0]
            );
        }
    }
}
