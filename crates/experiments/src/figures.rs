//! One driver per paper figure.
//!
//! Each `figNN` function regenerates the corresponding figure of the
//! paper's evaluation (Section V) as a [`Figure`]: the same series, the
//! same axes, produced by the same protocols under the same workload
//! sweep. The paper's parameter choices are pinned in the drivers:
//! P = Q = 1 and TTL = 300 s "result in the best delay" (Section V-A) and
//! are what Figs. 7–12 use.

use crate::output::{Figure, Series};
use crate::runner::{run_sweep_cached, SweepConfig, SweepResult};
use crate::scenarios::Mobility;
use dtn_epidemic::protocols;
use dtn_epidemic::ProtocolConfig;
use dtn_mobility::TraceCache;

/// Which per-point statistic a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Mean completion time over successful replications (seconds).
    Delay,
    /// Mean delivery ratio.
    DeliveryRatio,
    /// Mean buffer occupancy level.
    BufferOccupancy,
    /// Mean bundle duplication rate.
    DuplicationRate,
}

impl Metric {
    fn y_label(self) -> &'static str {
        match self {
            Metric::Delay => "Average delay (s)",
            Metric::DeliveryRatio => "Average delivery ratio",
            Metric::BufferOccupancy => "Average buffer occupancy level",
            Metric::DuplicationRate => "Average bundle duplication rate",
        }
    }

    fn extract(self, sweep: &SweepResult) -> Vec<(f64, f64, f64)> {
        sweep
            .points
            .iter()
            .filter_map(|p| {
                let (summary, value) = match self {
                    Metric::Delay => {
                        // The paper records no delay for failed runs; a
                        // point where *no* replication completed has no
                        // delay sample and is omitted from the series.
                        if p.delay_s.n == 0 {
                            return None;
                        }
                        (&p.delay_s, p.delay_s.mean)
                    }
                    Metric::DeliveryRatio => (&p.delivery_ratio, p.delivery_ratio.mean),
                    Metric::BufferOccupancy => (&p.buffer_occupancy, p.buffer_occupancy.mean),
                    Metric::DuplicationRate => (&p.duplication_rate, p.duplication_rate.mean),
                };
                Some((p.load as f64, value, summary.ci95_half_width()))
            })
            .collect()
    }
}

/// Run the sweeps for `(label, protocol, mobility)` triples and assemble a
/// figure plotting `metric`.
pub fn build_figure(
    id: &'static str,
    title: &str,
    metric: Metric,
    entries: &[(&str, ProtocolConfig, Mobility)],
    cfg: &SweepConfig,
) -> Figure {
    // A figure's series differ only in protocol (and occasionally
    // scenario parameters): one shared cache generates each distinct
    // trace once for the whole figure.
    let cache = TraceCache::new();
    let series = entries
        .iter()
        .map(|(label, protocol, mobility)| {
            let sweep = run_sweep_cached(protocol, *mobility, cfg, &cache);
            Series {
                name: (*label).to_string(),
                points: metric.extract(&sweep),
            }
        })
        .collect();
    Figure {
        id,
        title: title.to_string(),
        x_label: "Load",
        y_label: metric.y_label(),
        series,
    }
}

/// The existing-protocol line-up of Figs. 8–12 (the paper omits pure
/// epidemic from its plots because P–Q with P = Q = 1 subsumes it).
fn existing_protocols() -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("P-Q epidemic", protocols::pq_epidemic(1.0, 1.0)),
        ("Epidemic with TTL", protocols::ttl_epidemic_default()),
        ("Epidemic with Immunity", protocols::immunity_epidemic()),
        ("Epidemic with EC", protocols::ec_epidemic()),
    ]
}

/// Fig. 7 — delay vs load, trace scenario. The paper plots only P–Q,
/// TTL and EC here ("P-Q epidemic and epidemic with immunity have the
/// same delay in trace-based experiments when P=Q=1, we only plot ... P-Q").
pub fn fig07(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = vec![
        (
            "P-Q epidemic",
            protocols::pq_epidemic(1.0, 1.0),
            Mobility::Trace,
        ),
        (
            "Epidemic with TTL",
            protocols::ttl_epidemic_default(),
            Mobility::Trace,
        ),
        (
            "Epidemic with EC",
            protocols::ec_epidemic(),
            Mobility::Trace,
        ),
    ];
    build_figure(
        "fig07",
        "Delay comparison of epidemic-based protocols (trace file)",
        Metric::Delay,
        &entries,
        cfg,
    )
}

/// Fig. 8 — delay vs load, RWP scenario.
pub fn fig08(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = existing_protocols()
        .into_iter()
        .map(|(l, p)| (l, p, Mobility::Rwp))
        .collect();
    build_figure(
        "fig08",
        "Delay comparison of epidemic-based protocols (RWP)",
        Metric::Delay,
        &entries,
        cfg,
    )
}

/// Fig. 9 — duplication rate vs load, trace scenario.
pub fn fig09(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = existing_protocols()
        .into_iter()
        .map(|(l, p)| (l, p, Mobility::Trace))
        .collect();
    build_figure(
        "fig09",
        "Average bundle duplication rate of epidemic-based protocols (trace file)",
        Metric::DuplicationRate,
        &entries,
        cfg,
    )
}

/// Fig. 10 — duplication rate vs load, RWP scenario.
pub fn fig10(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = existing_protocols()
        .into_iter()
        .map(|(l, p)| (l, p, Mobility::Rwp))
        .collect();
    build_figure(
        "fig10",
        "Average bundle duplication rate of epidemic-based protocols (RWP)",
        Metric::DuplicationRate,
        &entries,
        cfg,
    )
}

/// Fig. 11 — buffer occupancy vs load, trace scenario.
pub fn fig11(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = existing_protocols()
        .into_iter()
        .map(|(l, p)| (l, p, Mobility::Trace))
        .collect();
    build_figure(
        "fig11",
        "Buffer occupancy level of epidemic-based protocols (trace file)",
        Metric::BufferOccupancy,
        &entries,
        cfg,
    )
}

/// Fig. 12 — buffer occupancy vs load, RWP scenario.
pub fn fig12(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = existing_protocols()
        .into_iter()
        .map(|(l, p)| (l, p, Mobility::Rwp))
        .collect();
    build_figure(
        "fig12",
        "Average buffer occupancy level of epidemic-based protocols (RWP)",
        Metric::BufferOccupancy,
        &entries,
        cfg,
    )
}

/// Fig. 13 — delivery ratio vs load of EC and TTL on the trace (every
/// other protocol delivers 100 % there, so the paper plots only these
/// two).
pub fn fig13(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = vec![
        (
            "Epidemic with EC",
            protocols::ec_epidemic(),
            Mobility::Trace,
        ),
        (
            "Epidemic with TTL",
            protocols::ttl_epidemic_default(),
            Mobility::Trace,
        ),
    ];
    build_figure(
        "fig13",
        "Delivery ratio comparison of epidemic with TTL and EC (trace file)",
        Metric::DeliveryRatio,
        &entries,
        cfg,
    )
}

/// Fig. 14 — delivery ratio of epidemic with TTL = 300 s in the two
/// controlled-interval scenarios (max gap 400 vs 2000 s).
pub fn fig14(cfg: &SweepConfig) -> Figure {
    let entries: Vec<_> = vec![
        (
            "Interval time = 400",
            protocols::ttl_epidemic_default(),
            Mobility::Interval(400),
        ),
        (
            "Interval time = 2000",
            protocols::ttl_epidemic_default(),
            Mobility::Interval(2000),
        ),
    ];
    build_figure(
        "fig14",
        "Delivery ratio of epidemic with TTL=300 under two interval times",
        Metric::DeliveryRatio,
        &entries,
        cfg,
    )
}

/// The modified-vs-unmodified line-up of the RWP-side enhancement figures
/// (Figs. 15, 17, 19): dynamic/constant TTL under both controlled-interval
/// scenarios, plus EC, EC+TTL, immunity and cumulative immunity under RWP.
fn enhanced_rwp_entries() -> Vec<(&'static str, ProtocolConfig, Mobility)> {
    vec![
        (
            "Dynamic TTL (interval 2000)",
            protocols::dynamic_ttl_epidemic(),
            Mobility::Interval(2000),
        ),
        (
            "Dynamic TTL (interval 400)",
            protocols::dynamic_ttl_epidemic(),
            Mobility::Interval(400),
        ),
        (
            "TTL=300 (interval 2000)",
            protocols::ttl_epidemic_default(),
            Mobility::Interval(2000),
        ),
        (
            "TTL=300 (interval 400)",
            protocols::ttl_epidemic_default(),
            Mobility::Interval(400),
        ),
        ("Epidemic with EC", protocols::ec_epidemic(), Mobility::Rwp),
        (
            "Epidemic with EC+TTL",
            protocols::ec_ttl_epidemic(),
            Mobility::Rwp,
        ),
        (
            "Epidemic with Immunity",
            protocols::immunity_epidemic(),
            Mobility::Rwp,
        ),
        (
            "Epidemic with Cumulative Immunity",
            protocols::cumulative_immunity_epidemic(),
            Mobility::Rwp,
        ),
    ]
}

/// The trace-side enhancement line-up (Figs. 16, 18, 20).
fn enhanced_trace_entries() -> Vec<(&'static str, ProtocolConfig, Mobility)> {
    vec![
        (
            "Epidemic with dynamic TTL",
            protocols::dynamic_ttl_epidemic(),
            Mobility::Trace,
        ),
        (
            "Epidemic with TTL=300",
            protocols::ttl_epidemic_default(),
            Mobility::Trace,
        ),
        (
            "Epidemic with EC",
            protocols::ec_epidemic(),
            Mobility::Trace,
        ),
        (
            "Epidemic with EC+TTL",
            protocols::ec_ttl_epidemic(),
            Mobility::Trace,
        ),
        (
            "Epidemic with Immunity",
            protocols::immunity_epidemic(),
            Mobility::Trace,
        ),
        (
            "Epidemic with Cumulative Immunity",
            protocols::cumulative_immunity_epidemic(),
            Mobility::Trace,
        ),
    ]
}

/// Fig. 15 — delivery ratio, modified vs unmodified protocols (RWP and
/// controlled-interval scenarios).
pub fn fig15(cfg: &SweepConfig) -> Figure {
    build_figure(
        "fig15",
        "Delivery ratio of modified and un-modified protocols (RWP)",
        Metric::DeliveryRatio,
        &enhanced_rwp_entries(),
        cfg,
    )
}

/// Fig. 16 — delivery ratio, modified vs unmodified protocols (trace).
pub fn fig16(cfg: &SweepConfig) -> Figure {
    build_figure(
        "fig16",
        "Delivery ratio of modified and un-modified protocols (trace file)",
        Metric::DeliveryRatio,
        &enhanced_trace_entries(),
        cfg,
    )
}

/// Fig. 17 — buffer occupancy, modified vs unmodified protocols (RWP).
pub fn fig17(cfg: &SweepConfig) -> Figure {
    build_figure(
        "fig17",
        "Buffer occupancy level of modified and un-modified protocols (RWP)",
        Metric::BufferOccupancy,
        &enhanced_rwp_entries(),
        cfg,
    )
}

/// Fig. 18 — buffer occupancy, modified vs unmodified protocols (trace).
pub fn fig18(cfg: &SweepConfig) -> Figure {
    build_figure(
        "fig18",
        "Buffer occupancy level of modified and un-modified protocols (trace file)",
        Metric::BufferOccupancy,
        &enhanced_trace_entries(),
        cfg,
    )
}

/// Fig. 19 — duplication rate, modified vs unmodified protocols (RWP).
pub fn fig19(cfg: &SweepConfig) -> Figure {
    build_figure(
        "fig19",
        "Bundle duplication rate of modified and un-modified protocols (RWP)",
        Metric::DuplicationRate,
        &enhanced_rwp_entries(),
        cfg,
    )
}

/// Fig. 20 — duplication rate, modified vs unmodified protocols (trace).
pub fn fig20(cfg: &SweepConfig) -> Figure {
    build_figure(
        "fig20",
        "Bundle duplication rate of modified and un-modified protocols (trace file)",
        Metric::DuplicationRate,
        &enhanced_trace_entries(),
        cfg,
    )
}

/// A figure driver: sweep configuration in, regenerated figure out.
pub type FigureDriver = fn(&SweepConfig) -> Figure;

/// Every figure driver, keyed by id.
pub fn all_figures() -> Vec<(&'static str, FigureDriver)> {
    vec![
        ("fig07", fig07 as FigureDriver),
        ("fig08", fig08),
        ("fig09", fig09),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
        ("fig19", fig19),
        ("fig20", fig20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_sweep;
    use dtn_sim::Threads;

    fn smoke_cfg() -> SweepConfig {
        SweepConfig {
            loads: vec![10],
            replications: 2,
            threads: Threads::Auto,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn fig07_has_three_series_over_trace() {
        let fig = fig07(&smoke_cfg());
        assert_eq!(fig.series.len(), 3);
        // Delay points exist only where at least one replication
        // completed; with a 2-replication smoke config a series may be
        // empty, but never longer than the load axis.
        assert!(fig.series.iter().all(|s| s.points.len() <= 1));
        assert!(
            fig.series.iter().any(|s| !s.points.is_empty()),
            "no protocol completed any run"
        );
        assert_eq!(fig.y_label, "Average delay (s)");
    }

    #[test]
    fn fig14_series_are_the_two_intervals() {
        let fig = fig14(&smoke_cfg());
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series[0].name.contains("400"));
        assert!(fig.series[1].name.contains("2000"));
    }

    #[test]
    fn enhancement_figures_have_the_paper_line_up() {
        assert_eq!(enhanced_rwp_entries().len(), 8);
        assert_eq!(enhanced_trace_entries().len(), 6);
    }

    #[test]
    fn all_figures_registry_is_complete() {
        let figs = all_figures();
        assert_eq!(figs.len(), 14);
        let ids: Vec<&str> = figs.iter().map(|(id, _)| *id).collect();
        assert!(ids.contains(&"fig07") && ids.contains(&"fig20"));
    }

    #[test]
    fn metric_extraction_uses_ci() {
        let cfg = smoke_cfg();
        let sweep = run_sweep(&protocols::pure_epidemic(), Mobility::Trace, &cfg);
        let pts = Metric::DeliveryRatio.extract(&sweep);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].0, 10.0);
        assert!(pts[0].2 >= 0.0);
    }
}
