//! Leveled progress reporting for the command-line tools.
//!
//! `dtnsim` and `repro` print machine-readable results (JSON, aligned
//! tables, CSV) on **stdout** and route every human-facing progress or
//! diagnostic line through a [`Reporter`] on **stderr**, so piping stdout
//! into a file or another tool never captures chatter. `-v` raises the
//! level to debug, `--quiet` drops everything but errors.

use std::io::Write as _;

/// How much stderr chatter the user asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verbosity {
    /// `--quiet`: errors only.
    Quiet,
    /// Default: progress and results commentary.
    #[default]
    Normal,
    /// `-v`: extra diagnostics (per-step timings, cache stats).
    Verbose,
}

/// A leveled stderr logger. Every line goes to stderr; stdout stays
/// machine-clean for the tool's actual output.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reporter {
    verbosity: Verbosity,
}

impl Reporter {
    /// A reporter at the given level.
    pub fn new(verbosity: Verbosity) -> Reporter {
        Reporter { verbosity }
    }

    /// The active level.
    pub fn verbosity(&self) -> Verbosity {
        self.verbosity
    }

    /// Progress line (suppressed by `--quiet`).
    pub fn info(&self, msg: impl AsRef<str>) {
        if self.verbosity >= Verbosity::Normal {
            let _ = writeln!(std::io::stderr(), "{}", msg.as_ref());
        }
    }

    /// Diagnostic line (shown only with `-v`).
    pub fn debug(&self, msg: impl AsRef<str>) {
        if self.verbosity >= Verbosity::Verbose {
            let _ = writeln!(std::io::stderr(), "{}", msg.as_ref());
        }
    }

    /// Error line (always shown).
    pub fn error(&self, msg: impl AsRef<str>) {
        let _ = writeln!(std::io::stderr(), "{}", msg.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_orders_quiet_below_verbose() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
        assert_eq!(Verbosity::default(), Verbosity::Normal);
    }

    #[test]
    fn reporter_levels_do_not_panic() {
        let r = Reporter::new(Verbosity::Quiet);
        r.info("suppressed");
        r.debug("suppressed");
        r.error("shown");
        assert_eq!(r.verbosity(), Verbosity::Quiet);
    }
}
