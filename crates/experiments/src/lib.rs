//! # dtn-experiments — the paper's evaluation, regenerated
//!
//! Drivers that reproduce every figure and table of Feng & Chin's unified
//! epidemic-routing study:
//!
//! * [`scenarios`] — the mobility sources (trace stand-in, subscriber-
//!   point RWP, controlled-interval) with the paper's seeding semantics;
//! * [`runner`] — the load sweep × replication machinery, parallelized
//!   across cores with deterministic, thread-count-invariant results;
//! * [`jobs`] — self-contained per-point job units ([`PointJob`]) with
//!   canonical serialization, shared by the local drivers and the
//!   `dtn-service` daemon so cached results are bit-identical to fresh
//!   ones;
//! * [`figures`] — `fig07()` … `fig20()`, one driver per paper figure;
//! * [`tables`] — Table II and the signaling-overhead comparison;
//! * [`output`] — CSV and aligned-text rendering;
//! * [`report`] — the unified [`SweepReport`]/[`RunManifest`] pipeline
//!   (per-point delay histograms, cache/timing counters, peak RSS);
//! * [`reporter`] — leveled stderr progress reporting (`-v`/`--quiet`);
//! * [`robustness`] — the churn × loss fault grid across all protocols,
//!   panic-isolated and resumable from a JSONL checkpoint.
//!
//! The `repro` binary ties it together:
//!
//! ```text
//! cargo run --release -p dtn-experiments --bin repro -- all
//! cargo run --release -p dtn-experiments --bin repro -- fig14 table2
//! cargo run --release -p dtn-experiments --bin repro -- --quick all
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod figures;
pub mod jobs;
pub mod output;
pub mod report;
pub mod reporter;
pub mod robustness;
pub mod runner;
pub mod scenarios;
pub mod tables;

pub use ablations::{all_ablations, mobility_table};
pub use figures::{all_figures, Metric};
pub use jobs::{PointJob, PointOutcome};
pub use output::{ensure_dir, Figure, Series, TextTable};
pub use report::{
    current_rss_bytes, git_rev, peak_rss_bytes, unix_time_secs, FederationStats, NamedHistogram,
    PointReport, PointTiming, RunManifest, ShardStat, SweepReport, SweepTiming,
};
pub use reporter::{Reporter, Verbosity};
pub use robustness::{
    assemble_grid_report, fault_grid, grid_point_jobs, record_supervised_point, run_robustness,
    run_robustness_watched, FaultCell, GridPoint, InjectHook, RunOutcome,
};
pub use runner::{
    aggregate_point, aggregate_point_checked, point_sim_config, run_point_checked_cached,
    run_point_raw, run_point_raw_cached, run_point_series, run_point_traced, run_sweep,
    run_sweep_cached, PointResult, SweepConfig, SweepResult,
};
pub use scenarios::Mobility;
pub use tables::{overhead_table, table2};

pub use dtn_mobility::{TraceCache, TraceKey};
