//! `dtnsim` — run one (protocol, mobility, load) experiment from the
//! command line.
//!
//! ```text
//! dtnsim [OPTIONS]
//!
//!   --protocol NAME    pure | pq[=P,Q] | ttl[=SECS] | dynttl[=MULT] |
//!                      ec | ecttl | immunity | cumulative   (default: pure)
//!   --mobility NAME    trace | rwp | geom-rwp | interval=SECS | FILE.trace
//!                      (default: trace)
//!   --load K           bundles per flow                     (default: 25)
//!   --reps N           replications                         (default: 10)
//!   --seed S           root seed                            (default: 1)
//!   --buffer B         relay-buffer capacity                (default: 10)
//!   --tx-time SECS     per-bundle transmission time
//!                      (default: the scenario's regime)
//!   --stats            also print the contact trace's statistical summary
//! ```
//!
//! Example:
//!
//! ```text
//! dtnsim --protocol ttl=300 --mobility interval=2000 --load 40 --stats
//! ```

use dtn_epidemic::{protocols, simulate, ProtocolConfig, SimConfig, Workload};
use dtn_experiments::runner::aggregate_point;
use dtn_experiments::Mobility;
use dtn_mobility::{read_trace_file, ContactTrace, TraceSummary};
use dtn_sim::{par_map_indexed, SimDuration, SimRng, Threads};
use std::process::ExitCode;

/// Where contacts come from: a built-in scenario or a trace file.
enum Source {
    Builtin(Mobility),
    File(std::path::PathBuf, ContactTrace),
}

impl Source {
    fn build(&self, seed: u64, replication: u64) -> ContactTrace {
        match self {
            Source::Builtin(m) => m.build(seed, replication),
            Source::File(_, trace) => trace.clone(),
        }
    }

    fn default_tx_time(&self) -> u64 {
        match self {
            Source::Builtin(m) => m.tx_time_secs(),
            Source::File(..) => 100,
        }
    }

    fn label(&self) -> String {
        match self {
            Source::Builtin(m) => m.label(),
            Source::File(path, _) => path.display().to_string(),
        }
    }
}

fn parse_protocol(spec: &str) -> Result<ProtocolConfig, String> {
    let (name, arg) = match spec.split_once('=') {
        Some((n, a)) => (n, Some(a)),
        None => (spec, None),
    };
    let parse_f64 = |s: &str| {
        s.parse::<f64>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    let parse_u64 = |s: &str| {
        s.parse::<u64>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    match name {
        "pure" => Ok(protocols::pure_epidemic()),
        "pq" => match arg {
            None => Ok(protocols::pq_epidemic(1.0, 1.0)),
            Some(a) => {
                let (p, q) = a
                    .split_once(',')
                    .ok_or_else(|| format!("pq wants P,Q — got {a:?}"))?;
                Ok(protocols::pq_epidemic(parse_f64(p)?, parse_f64(q)?))
            }
        },
        "ttl" => {
            let secs = arg.map(parse_u64).transpose()?.unwrap_or(300);
            Ok(protocols::ttl_epidemic(SimDuration::from_secs(secs)))
        }
        "dynttl" => match arg {
            None => Ok(protocols::dynamic_ttl_epidemic()),
            Some(a) => {
                let mut p = protocols::dynamic_ttl_epidemic();
                p.lifetime = dtn_epidemic::LifetimePolicy::DynamicTtl {
                    multiplier: parse_f64(a)?,
                };
                Ok(p)
            }
        },
        "ec" => Ok(protocols::ec_epidemic()),
        "ecttl" => Ok(protocols::ec_ttl_epidemic()),
        "immunity" => Ok(protocols::immunity_epidemic()),
        "cumulative" => Ok(protocols::cumulative_immunity_epidemic()),
        other => Err(format!(
            "unknown protocol {other:?} (pure, pq, ttl, dynttl, ec, ecttl, immunity, cumulative)"
        )),
    }
}

fn parse_mobility(spec: &str) -> Result<Source, String> {
    match spec {
        "trace" => Ok(Source::Builtin(Mobility::Trace)),
        "rwp" => Ok(Source::Builtin(Mobility::Rwp)),
        "geom-rwp" => Ok(Source::Builtin(Mobility::GeometricRwp)),
        other => {
            if let Some(max) = other.strip_prefix("interval=") {
                let max = max
                    .parse::<u64>()
                    .map_err(|e| format!("bad interval {max:?}: {e}"))?;
                return Ok(Source::Builtin(Mobility::Interval(max)));
            }
            let path = std::path::PathBuf::from(other);
            if path.exists() {
                let trace = read_trace_file(&path).map_err(|e| format!("loading {other}: {e}"))?;
                Ok(Source::File(path, trace))
            } else {
                Err(format!(
                    "unknown mobility {other:?} (trace, rwp, geom-rwp, interval=SECS, or a trace file path)"
                ))
            }
        }
    }
}

struct Args {
    protocol: ProtocolConfig,
    source: Source,
    load: u32,
    reps: usize,
    seed: u64,
    buffer: usize,
    tx_time: Option<u64>,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        protocol: protocols::pure_epidemic(),
        source: Source::Builtin(Mobility::Trace),
        load: 25,
        reps: 10,
        seed: 1,
        buffer: 10,
        tx_time: None,
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--protocol" => args.protocol = parse_protocol(&value("--protocol")?)?,
            "--mobility" => args.source = parse_mobility(&value("--mobility")?)?,
            "--load" => {
                args.load = value("--load")?
                    .parse()
                    .map_err(|e| format!("bad load: {e}"))?
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad reps: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--buffer" => {
                args.buffer = value("--buffer")?
                    .parse()
                    .map_err(|e| format!("bad buffer: {e}"))?
            }
            "--tx-time" => {
                args.tx_time = Some(
                    value("--tx-time")?
                        .parse()
                        .map_err(|e| format!("bad tx-time: {e}"))?,
                )
            }
            "--stats" => args.stats = true,
            "--help" | "-h" => {
                println!(
                    "usage: dtnsim [--protocol NAME] [--mobility NAME] [--load K] \
                     [--reps N] [--seed S] [--buffer B] [--tx-time SECS] [--stats]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.load == 0 || args.reps == 0 || args.buffer == 0 {
        return Err("load, reps and buffer must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dtnsim: {e}");
            return ExitCode::FAILURE;
        }
    };

    let tx_time = args
        .tx_time
        .unwrap_or_else(|| args.source.default_tx_time());
    let config = SimConfig {
        protocol: args.protocol.clone(),
        buffer_capacity: args.buffer,
        tx_time: SimDuration::from_secs(tx_time),
        ack_slot_cost: 0.1,
        transfer_loss_prob: 0.0,
        bundle_bytes: 10_000_000,
        ack_record_bytes: 16,
    };

    println!(
        "protocol {:?} | mobility {} | load {} | buffer {} | tx {} s | {} replications",
        args.protocol.name,
        args.source.label(),
        args.load,
        args.buffer,
        tx_time,
        args.reps
    );

    if args.stats {
        let trace = args.source.build(args.seed, 0);
        println!(
            "\ncontact-trace summary:\n{}",
            TraceSummary::of(&trace).to_text()
        );
    }

    let root = SimRng::new(args.seed);
    let source = &args.source;
    let config_ref = &config;
    let runs = par_map_indexed(Threads::Auto, args.reps, move |rep| {
        let rep = rep as u64;
        let trace = source.build(args.seed, rep);
        let mut wl_rng = root.derive(rep * 2 + 1);
        let workload = Workload::single_random_flow(args.load, trace.node_count(), &mut wl_rng);
        simulate(&trace, &workload, config_ref, root.derive(rep * 2))
    });
    let point = aggregate_point(args.load, &runs);

    println!("results over {} replications:", args.reps);
    println!(
        "  delivery ratio      {:.1} % ± {:.1}",
        100.0 * point.delivery_ratio.mean,
        100.0 * point.delivery_ratio.ci95_half_width()
    );
    match point.delay_s.n {
        0 => println!("  delay               no run completed within the horizon"),
        _ => println!(
            "  delay               {:.0} s over {} completed runs ({} failed)",
            point.delay_s.mean, point.delay_s.n, point.failures
        ),
    }
    println!(
        "  buffer occupancy    {:.1} %",
        100.0 * point.buffer_occupancy.mean
    );
    println!(
        "  duplication rate    {:.1} %",
        100.0 * point.duplication_rate.mean
    );
    println!("  transmissions       {:.0}", point.transmissions.mean);
    println!("  immunity records    {:.0}", point.ack_records.mean);
    ExitCode::SUCCESS
}
