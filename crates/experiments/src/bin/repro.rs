//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro [--quick] [--out DIR] [--seed N] [--reps N] TARGET...
//!
//! TARGET:  all | fig07..fig20 | table2 | overhead | ablations | mobility
//!          ("all" covers every paper artifact; "ablations" and
//!          "mobility" are the extra studies and must be named explicitly)
//! --quick  3 loads × 3 replications instead of 10 × 10 (smoke runs)
//! --out    output directory for CSVs (default: results/)
//! --seed   override the root seed
//! --reps   override the replication count
//! ```
//!
//! Each figure prints as an aligned table and lands in `DIR/<id>.csv`.
//! Tables and CSVs go to stdout/disk; progress lines (`-> path (secs)`)
//! go through a leveled stderr reporter (`-v` for more, `--quiet` for
//! errors only).

use dtn_experiments::{all_figures, overhead_table, table2, Reporter, SweepConfig, Verbosity};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    quick: bool,
    out: PathBuf,
    seed: Option<u64>,
    reps: Option<usize>,
    targets: Vec<String>,
    verbosity: Verbosity,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: PathBuf::from("results"),
        seed: None,
        reps: None,
        targets: Vec::new(),
        verbosity: Verbosity::Normal,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--seed" => {
                args.seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?,
                );
            }
            "--reps" => {
                args.reps = Some(
                    it.next()
                        .ok_or("--reps needs a value")?
                        .parse()
                        .map_err(|e| format!("bad reps: {e}"))?,
                );
            }
            "-v" | "--verbose" => args.verbosity = Verbosity::Verbose,
            "-q" | "--quiet" => args.verbosity = Verbosity::Quiet,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--out DIR] [--seed N] [--reps N] [-v | -q] TARGET...\n\
                     TARGET: all | fig07..fig20 | table2 | overhead"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.targets.push(other.to_string()),
        }
    }
    if args.targets.is_empty() {
        return Err("no targets given (try `repro all`)".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    let log = Reporter::new(args.verbosity);

    let mut cfg = if args.quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    if let Some(seed) = args.seed {
        cfg.base_seed = seed;
    }
    if let Some(reps) = args.reps {
        cfg.replications = reps;
    }

    log.debug(format!(
        "seed {} | {} replications | loads {:?} | out {}",
        cfg.base_seed,
        cfg.replications,
        cfg.loads,
        args.out.display()
    ));

    let figures = all_figures();
    let wants = |name: &str| args.targets.iter().any(|t| t == name || t == "all");

    let mut ran_anything = false;
    for (id, driver) in &figures {
        if !wants(id) {
            continue;
        }
        ran_anything = true;
        let started = std::time::Instant::now();
        let fig = driver(&cfg);
        if let Err(e) = fig.write_gnuplot(&args.out) {
            log.error(format!("repro: writing {id} plot script: {e}"));
        }
        match fig.write_csv(&args.out) {
            Ok(path) => {
                println!("{}", fig.to_text());
                log.info(format!(
                    "  -> {} ({:.1}s)\n",
                    path.display(),
                    started.elapsed().as_secs_f64()
                ));
            }
            Err(e) => {
                log.error(format!("repro: writing {id}: {e}"));
                return ExitCode::FAILURE;
            }
        }
    }

    if wants("table2") {
        ran_anything = true;
        let t = table2(&cfg);
        print_table(&t, &args.out, &log);
    }
    if wants("overhead") {
        ran_anything = true;
        let t = overhead_table(&cfg);
        print_table(&t, &args.out, &log);
    }
    if args.targets.iter().any(|t| t == "ablations") {
        ran_anything = true;
        for t in dtn_experiments::all_ablations(&cfg) {
            print_table(&t, &args.out, &log);
        }
    }
    if args.targets.iter().any(|t| t == "mobility") {
        ran_anything = true;
        let t = dtn_experiments::mobility_table(&cfg);
        print_table(&t, &args.out, &log);
    }

    if !ran_anything {
        log.error(format!(
            "repro: no such target(s): {} (try fig07..fig20, table2, overhead, all)",
            args.targets.join(", ")
        ));
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_table(t: &dtn_experiments::TextTable, out: &std::path::Path, log: &Reporter) {
    println!("{}", t.to_text());
    match t.write_csv(out) {
        Ok(path) => log.info(format!("  -> {}\n", path.display())),
        Err(e) => log.error(format!("repro: writing {}: {e}", t.id)),
    }
}
