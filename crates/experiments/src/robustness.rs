//! The robustness preset: every protocol swept across a churn × loss
//! fault grid, with panic isolation and checkpoint/resume.
//!
//! The paper evaluates its eight protocols on clean channels; this module
//! asks how the level comparison holds up when the environment degrades.
//! [`fault_grid`] spans three churn regimes (none, duty-cycle, crash) by
//! two channel regimes (clean, lossy — bursty Gilbert–Elliott loss plus
//! session truncation and anti-packet loss), and [`run_robustness`] runs
//! all eight protocols over every cell, producing one [`SweepReport`]
//! whose per-point fault counters make the degradation measurable.
//!
//! A full grid is 6 cells × 8 protocols × loads × replications — long
//! enough that losing it to a crash or an eviction hurts. The driver
//! therefore runs every point through the panic-isolating executor
//! (one diverging replication becomes a recorded failure, not an abort)
//! and, when given a checkpoint path, appends each finished point to a
//! JSONL checkpoint that `--resume` replays: already-completed points are
//! loaded bit-exactly (floats travel as IEEE-754 bit patterns, never
//! through decimal) and only the remainder is simulated.

use crate::runner::{point_sim_config, SweepConfig};
use crate::scenarios::Mobility;
use crate::{Reporter, SweepReport, TraceCache};
use dtn_epidemic::{
    protocols, simulate, simulate_probed, AuditMode, AuditProbe, ChurnMode, ChurnPlan, FaultPlan,
    GilbertElliott, RunMetrics, SimConfig, Workload,
};
use dtn_sim::{par_map_supervised, JobOutcome, SimRng, SimTime};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// One cell of the robustness grid: a label and its fault plan.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Stable cell label (embedded in the report's mobility column and
    /// the checkpoint key).
    pub label: &'static str,
    /// The plan every replication in this cell runs under.
    pub plan: FaultPlan,
}

/// The default churn × loss grid: `{none, duty, crash}` ×
/// `{clean, lossy}`.
///
/// Churn cells give nodes exponential up/down dwell times with mean
/// 40 000 s up and 10 000 s down (an 80 % duty cycle, long enough that
/// several contacts fall inside one outage). Lossy cells combine a
/// bursty Gilbert–Elliott channel (2 % good-state / 60 % bad-state loss,
/// mean burst length 4 transmissions), 25 % session truncation and 25 %
/// anti-packet loss.
pub fn fault_grid() -> Vec<FaultCell> {
    let churn = |mode| ChurnPlan {
        mean_up_secs: 40_000.0,
        mean_down_secs: 10_000.0,
        mode,
    };
    let lossy = || FaultPlan {
        truncation_prob: 0.25,
        ack_loss_prob: 0.25,
        burst: Some(GilbertElliott {
            loss_good: 0.02,
            loss_bad: 0.6,
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.25,
        }),
        churn: None,
    };
    vec![
        FaultCell {
            label: "churn=none,loss=clean",
            plan: FaultPlan::none(),
        },
        FaultCell {
            label: "churn=none,loss=lossy",
            plan: lossy(),
        },
        FaultCell {
            label: "churn=duty,loss=clean",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::DutyCycle)),
                ..FaultPlan::none()
            },
        },
        FaultCell {
            label: "churn=duty,loss=lossy",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::DutyCycle)),
                ..lossy()
            },
        },
        FaultCell {
            label: "churn=crash,loss=clean",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::Crash)),
                ..FaultPlan::none()
            },
        },
        FaultCell {
            label: "churn=crash,loss=lossy",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::Crash)),
                ..lossy()
            },
        },
    ]
}

/// One supervised replication outcome, as stored in checkpoints and
/// folded into the report.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// The replication finished, possibly after salted retries.
    Ok(RunMetrics),
    /// Every attempt panicked; the final panic message is kept.
    Panicked(String),
    /// The replication outlived the watchdog's hard deadline and was
    /// abandoned without poisoning its siblings.
    TimedOut,
}

/// A test seam for the supervisor itself: called at the top of every
/// replication attempt with `(point key, replication, attempt)`, free to
/// panic (exercising bounded retry) or sleep (exercising the hard
/// deadline). Production callers pass `None` — [`run_robustness`] does.
pub type InjectHook = Arc<dyn Fn(&str, usize, u32) + Send + Sync>;

/// Salt namespace for retry attempts — far above the `rep * 2 (+ 1)`
/// stream indices the canonical attempt-0 derivation uses, so a retried
/// replication walks a genuinely fresh path (replaying the exact seed
/// that just panicked would panic again deterministically).
const RETRY_SALT: u64 = 0x57AC_0000;

/// Checkpoint key of one grid point.
fn point_key(cell: &str, protocol: &str, load: u32) -> String {
    format!("{cell}|{protocol}|{load}")
}

/// An `f64` as its IEEE-754 bit pattern in hex — survives a JSON
/// round-trip bit-exactly, which decimal rendering cannot guarantee.
fn f64_hex(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

fn parse_f64_hex(tok: &str) -> Result<f64, String> {
    let hex = tok
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted hex f64, got {tok:?}"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {hex:?}: {e}"))
}

/// One replication outcome as a checkpoint token: a fixed-order JSON
/// array for a success, `{"panic":…}` for an isolated panic, or
/// `{"timeout":true}` for an abandoned attempt.
fn outcome_to_json(outcome: &RunOutcome) -> String {
    match outcome {
        RunOutcome::TimedOut => "{\"timeout\":true}".to_string(),
        RunOutcome::Panicked(msg) => {
            format!("{{\"panic\":\"{}\"}}", crate::report::json_escape(msg))
        }
        RunOutcome::Ok(m) => format!(
            "[{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}]",
            m.total_bundles,
            m.delivered,
            f64_hex(m.delivery_ratio),
            m.completion_time
                .map(|t| t.as_millis().to_string())
                .unwrap_or_else(|| "null".into()),
            f64_hex(m.avg_buffer_occupancy),
            f64_hex(m.peak_buffer_occupancy),
            f64_hex(m.avg_duplication_rate),
            m.contacts_processed,
            m.bundle_transmissions,
            m.ack_records_sent,
            m.evictions,
            m.expirations,
            m.rejections,
            m.immunity_purges,
            m.transfer_losses,
            m.payload_bytes_sent,
            m.control_bytes_sent,
            m.contacts_skipped,
            m.sessions_truncated,
            m.ack_losses,
            m.churn_wipes,
            m.churn_drops,
            m.end_time.as_millis(),
        ),
    }
}

fn outcome_from_json(tok: &str) -> Result<RunOutcome, String> {
    let tok = tok.trim();
    if tok == "{\"timeout\":true}" {
        return Ok(RunOutcome::TimedOut);
    }
    if let Some(rest) = tok.strip_prefix("{\"panic\":\"") {
        let msg = rest
            .strip_suffix("\"}")
            .ok_or_else(|| format!("bad panic token {tok:?}"))?;
        return Ok(RunOutcome::Panicked(msg.to_string()));
    }
    let body = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected array token, got {tok:?}"))?;
    let fields: Vec<&str> = body.split(',').collect();
    if fields.len() != 23 {
        return Err(format!("expected 23 fields, got {}", fields.len()));
    }
    let int = |i: usize| -> Result<u64, String> {
        fields[i]
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("field {i}: {e}"))
    };
    let completion_time = match fields[3].trim() {
        "null" => None,
        ms => Some(SimTime::from_millis(
            ms.parse::<u64>().map_err(|e| format!("field 3: {e}"))?,
        )),
    };
    Ok(RunOutcome::Ok(RunMetrics {
        total_bundles: int(0)? as u32,
        delivered: int(1)? as u32,
        delivery_ratio: parse_f64_hex(fields[2].trim())?,
        completion_time,
        avg_buffer_occupancy: parse_f64_hex(fields[4].trim())?,
        peak_buffer_occupancy: parse_f64_hex(fields[5].trim())?,
        avg_duplication_rate: parse_f64_hex(fields[6].trim())?,
        contacts_processed: int(7)?,
        bundle_transmissions: int(8)?,
        ack_records_sent: int(9)?,
        evictions: int(10)?,
        expirations: int(11)?,
        rejections: int(12)?,
        immunity_purges: int(13)?,
        transfer_losses: int(14)?,
        payload_bytes_sent: int(15)?,
        control_bytes_sent: int(16)?,
        contacts_skipped: int(17)?,
        sessions_truncated: int(18)?,
        ack_losses: int(19)?,
        churn_wipes: int(20)?,
        churn_drops: int(21)?,
        end_time: SimTime::from_millis(int(22)?),
    }))
}

/// One finished point as a checkpoint line (no trailing newline): the
/// key, the per-replication attempt counts, then the outcome tokens.
fn point_to_line(key: &str, outcomes: &[RunOutcome], attempts: &[u32]) -> String {
    let mut runs = String::new();
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            runs.push(',');
        }
        runs.push_str(&outcome_to_json(o));
    }
    let attempts: Vec<String> = attempts.iter().map(|a| a.to_string()).collect();
    format!(
        "{{\"point\":\"{}\",\"attempts\":[{}],\"runs\":[{}]}}",
        crate::report::json_escape(key),
        attempts.join(","),
        runs
    )
}

type PointLine = (String, Vec<RunOutcome>, Vec<u32>);
/// Finished points keyed by checkpoint key: (outcomes, attempt counts).
type DoneMap = HashMap<String, (Vec<RunOutcome>, Vec<u32>)>;

fn point_from_line(line: &str) -> Result<PointLine, String> {
    let rest = line
        .trim()
        .strip_prefix("{\"point\":\"")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let (key, rest) = rest
        .split_once("\",\"attempts\":[")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let (attempts, rest) = rest
        .split_once("],\"runs\":[")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let attempts: Vec<u32> = attempts
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            t.trim()
                .parse::<u32>()
                .map_err(|e| format!("bad attempt count {t:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let body = rest
        .strip_suffix("]}")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    // Outcome tokens contain no nested brackets at depth 0, so splitting
    // on "]," / "}," boundaries via a tiny depth scanner is enough.
    let mut outcomes = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, c) in body.char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                outcomes.push(outcome_from_json(&body[start..i])?);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        outcomes.push(outcome_from_json(&body[start..])?);
    }
    if attempts.len() != outcomes.len() {
        return Err(format!(
            "checkpoint point {key:?} has {} attempt counts for {} runs",
            attempts.len(),
            outcomes.len()
        ));
    }
    Ok((key.to_string(), outcomes, attempts))
}

/// The manifest (first) line of a checkpoint file. The watchdog
/// configuration is part of it: retried replications run on salted RNG
/// streams and timed-out replications carry no metrics, so resuming
/// under a different supervision policy would silently mix
/// incomparable results.
fn manifest_line(mobility: Mobility, cfg: &SweepConfig) -> String {
    format!(
        "{{\"ckpt\":\"robustness\",\"mobility\":\"{}\",\"base_seed\":{},\"replications\":{},\
         \"loads\":{:?},\"retries\":{},\"timeout_secs\":{}}}",
        crate::report::json_escape(&mobility.label()),
        cfg.base_seed,
        cfg.replications,
        cfg.loads,
        cfg.retries,
        cfg.point_timeout_secs
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".into()),
    )
}

/// Parse a checkpoint file written by a previous [`run_robustness`] call.
/// The manifest must match the current configuration — resuming under a
/// different seed or replication count would silently mix incompatible
/// results, so a mismatch is an error.
fn load_checkpoint(
    path: &Path,
    mobility: Mobility,
    cfg: &SweepConfig,
) -> Result<DoneMap, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let manifest = lines.next().ok_or("checkpoint is empty")?;
    let expected = manifest_line(mobility, cfg);
    if manifest.trim() != expected {
        return Err(format!(
            "checkpoint manifest mismatch\n  found:    {manifest}\n  expected: {expected}\n\
             (resume requires the same mobility, seed, replications and loads)"
        ));
    }
    let mut done = HashMap::new();
    for line in lines {
        let (key, outcomes, attempts) = point_from_line(line)?;
        if outcomes.len() != cfg.replications {
            return Err(format!(
                "checkpoint point {key:?} has {} outcomes, expected {}",
                outcomes.len(),
                cfg.replications
            ));
        }
        done.insert(key, (outcomes, attempts));
    }
    Ok(done)
}

/// Run the full robustness preset: every protocol in
/// [`protocols::all_protocols`] across every [`fault_grid`] cell and every
/// `cfg.loads` level, with `cfg.faults` ignored in favour of each cell's
/// plan. Returns one [`SweepReport`] whose point labels fold the cell into
/// the mobility column (`"trace/churn=crash,loss=lossy"`).
///
/// `checkpoint` enables crash tolerance: each finished point is appended
/// (and flushed) to the file, and `resume` reloads any compatible previous
/// checkpoint so only missing points are simulated. A resumed run's report
/// aggregates are bit-identical to an uninterrupted run's.
pub fn run_robustness(
    mobility: Mobility,
    cfg: &SweepConfig,
    checkpoint: Option<&Path>,
    resume: bool,
    log: &Reporter,
) -> Result<SweepReport, String> {
    run_robustness_watched(mobility, cfg, checkpoint, resume, log, None)
}

/// [`run_robustness`] with an optional [`InjectHook`] prepended to every
/// replication attempt. The hook exists so tests can make the supervisor
/// itself misbehave on demand — panic on chosen attempts to exercise
/// bounded retry, or sleep past the hard deadline to exercise timeout
/// isolation — while everything else stays the production code path.
pub fn run_robustness_watched(
    mobility: Mobility,
    cfg: &SweepConfig,
    checkpoint: Option<&Path>,
    resume: bool,
    log: &Reporter,
    inject: Option<InjectHook>,
) -> Result<SweepReport, String> {
    let grid = fault_grid();
    let protos = protocols::all_protocols();

    let mut done: DoneMap = HashMap::new();
    if resume {
        let path = checkpoint.ok_or("--resume requires --checkpoint PATH")?;
        if path.exists() {
            done = load_checkpoint(path, mobility, cfg)?;
            log.info(format!(
                "resumed {} finished points from {}",
                done.len(),
                path.display()
            ));
        }
    }

    let mut ckpt_file = match checkpoint {
        Some(path) => {
            let fresh = !resume || !path.exists();
            let mut opts = std::fs::OpenOptions::new();
            if fresh {
                opts.write(true).create(true).truncate(true);
            } else {
                opts.append(true);
            }
            let mut f = opts
                .open(path)
                .map_err(|e| format!("cannot open checkpoint {}: {e}", path.display()))?;
            if fresh {
                writeln!(f, "{}", manifest_line(mobility, cfg))
                    .map_err(|e| format!("checkpoint write failed: {e}"))?;
            }
            Some(f)
        }
        None => None,
    };

    let started = std::time::Instant::now();
    let mut cache = Arc::new(TraceCache::new());
    // Hit/miss counters accumulated across memory-guard cache sheds.
    let mut cache_base = (0u64, 0u64);
    let mut report = SweepReport::new(format!(
        "robustness grid: {} cells x {} protocols x {} loads x {} replications @ {}",
        grid.len(),
        protos.len(),
        cfg.loads.len(),
        cfg.replications,
        mobility.label(),
    ));

    for cell in &grid {
        let cell_started = std::time::Instant::now();
        let mut cell_cfg = cfg.clone();
        cell_cfg.faults = cell.plan.clone();
        cell_cfg.faults.validate()?;
        for proto in &protos {
            for &load in &cfg.loads {
                let key = point_key(cell.label, proto.name, load);
                let (outcomes, attempts, violations) = match done.remove(&key) {
                    Some((outcomes, attempts)) => (outcomes, attempts, Vec::new()),
                    None => {
                        let sim_config = point_sim_config(proto, mobility, &cell_cfg);
                        let root = SimRng::new(cell_cfg.base_seed ^ (load as u64) << 32);
                        let job_cache = Arc::clone(&cache);
                        let job_key = key.clone();
                        let job_inject = inject.clone();
                        let base_seed = cell_cfg.base_seed;
                        let audit = cell_cfg.audit;
                        let results = par_map_supervised(
                            cell_cfg.threads,
                            cell_cfg.replications,
                            cell_cfg.watchdog(),
                            move |rep, attempt| {
                                if let Some(hook) = &job_inject {
                                    hook(&job_key, rep, attempt);
                                }
                                run_replication(
                                    rep,
                                    attempt,
                                    &root,
                                    load,
                                    mobility,
                                    base_seed,
                                    &sim_config,
                                    audit,
                                    &job_cache,
                                )
                            },
                        );
                        let mut outcomes = Vec::with_capacity(results.len());
                        let mut attempts = Vec::with_capacity(results.len());
                        let mut violations = Vec::new();
                        let mut slow = 0usize;
                        for (rep, result) in results.into_iter().enumerate() {
                            attempts.push(result.attempts());
                            match result {
                                JobOutcome::Ok {
                                    value: (m, viols),
                                    slow: was_slow,
                                    ..
                                } => {
                                    slow += usize::from(was_slow);
                                    for v in viols {
                                        violations.push(format!("{key} rep {rep}: {v}"));
                                    }
                                    outcomes.push(RunOutcome::Ok(m));
                                }
                                JobOutcome::Panicked { message, .. } => {
                                    outcomes.push(RunOutcome::Panicked(message));
                                }
                                JobOutcome::TimedOut { .. } => {
                                    outcomes.push(RunOutcome::TimedOut);
                                }
                            }
                        }
                        if slow > 0 {
                            log.debug(format!(
                                "{key}: {slow} replication(s) exceeded the soft deadline"
                            ));
                        }
                        if let Some(f) = ckpt_file.as_mut() {
                            writeln!(f, "{}", point_to_line(&key, &outcomes, &attempts))
                                .and_then(|()| f.flush())
                                .map_err(|e| format!("checkpoint write failed: {e}"))?;
                        }
                        (outcomes, attempts, violations)
                    }
                };
                for v in violations {
                    report.record_violation(v);
                }
                let mobility_label = format!("{}/{}", mobility.label(), cell.label);
                record_supervised_point(
                    &mut report,
                    proto.name,
                    &mobility_label,
                    load,
                    &outcomes,
                    &attempts,
                );
                if let Some(budget) = cfg.memory_budget_bytes {
                    let over = crate::report::current_rss_bytes().is_some_and(|rss| rss > budget);
                    if over {
                        let (hits, misses) = cache.stats();
                        cache_base.0 += hits;
                        cache_base.1 += misses;
                        cache = Arc::new(TraceCache::new());
                        report.memory_degradations += 1;
                        log.info(format!(
                            "memory budget exceeded after {key}; trace cache shed, \
                             continuing cache-cold (checkpoint already flushed)"
                        ));
                    }
                }
            }
        }
        report.record_sweep(
            format!("{} @ {}", cell.label, mobility.label()),
            cell_started.elapsed().as_secs_f64(),
        );
        log.info(format!("cell {} done", cell.label));
    }

    let (hits, misses) = cache.stats();
    report.record_cache((cache_base.0 + hits, cache_base.1 + misses));
    report.finish(started.elapsed().as_secs_f64());
    Ok(report)
}

/// One supervised replication: canonical RNG streams on attempt 0, a
/// salted stream per retry, optionally audited through an
/// [`AuditProbe`] in `Record` mode (probes never perturb the run, so
/// audited metrics stay bit-identical).
#[allow(clippy::too_many_arguments)]
fn run_replication(
    rep: usize,
    attempt: u32,
    root: &SimRng,
    load: u32,
    mobility: Mobility,
    base_seed: u64,
    sim_config: &SimConfig,
    audit: bool,
    cache: &TraceCache,
) -> (RunMetrics, Vec<String>) {
    let rep = rep as u64;
    let stream = if attempt == 0 {
        root.clone()
    } else {
        root.derive(RETRY_SALT | u64::from(attempt))
    };
    let mut wl_rng = stream.derive(rep * 2 + 1);
    let sim_rng = stream.derive(rep * 2);
    let trace = mobility.build_cached(base_seed, rep, cache);
    let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
    if audit {
        let mut probe =
            AuditProbe::new(&workload, sim_config, trace.node_count(), AuditMode::Record);
        let metrics = simulate_probed(&trace, &workload, sim_config, sim_rng, &mut probe);
        (metrics, probe.violation_strings())
    } else {
        (simulate(&trace, &workload, sim_config, sim_rng), Vec::new())
    }
}

/// Fold one point's supervised outcomes into the report: metric
/// aggregates cover the completed replications, panicked and timed-out
/// replications each count as a failure, and retries (attempts beyond
/// each replication's first) are summed.
fn record_supervised_point(
    report: &mut SweepReport,
    protocol: &str,
    mobility: &str,
    load: u32,
    outcomes: &[RunOutcome],
    attempts: &[u32],
) {
    let ok: Vec<RunMetrics> = outcomes
        .iter()
        .filter_map(|o| match o {
            RunOutcome::Ok(m) => Some(*m),
            _ => None,
        })
        .collect();
    let panics = outcomes
        .iter()
        .filter(|o| matches!(o, RunOutcome::Panicked(_)))
        .count();
    let timed_out = outcomes
        .iter()
        .filter(|o| matches!(o, RunOutcome::TimedOut))
        .count();
    report.record_point(protocol, mobility, load, &ok);
    let point = report
        .points
        .last_mut()
        .expect("record_point pushed a point");
    point.panics = panics;
    point.timed_out = timed_out;
    point.failures += panics + timed_out;
    point.retries = attempts
        .iter()
        .map(|&a| u64::from(a.saturating_sub(1)))
        .sum();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::Threads;

    fn m(seed: u64) -> RunMetrics {
        let trace = Mobility::Interval(2000).build(seed, 0);
        let mut wl = SimRng::new(seed ^ 0xABC);
        let workload = Workload::single_random_flow(5, trace.node_count(), &mut wl);
        let cfg = point_sim_config(
            &protocols::immunity_epidemic(),
            Mobility::Interval(2000),
            &SweepConfig::default(),
        );
        simulate(&trace, &workload, &cfg, SimRng::new(seed))
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        for seed in [1, 2, 99] {
            let metrics = m(seed);
            let token = outcome_to_json(&RunOutcome::Ok(metrics));
            let back = outcome_from_json(&token).unwrap();
            assert_eq!(back, RunOutcome::Ok(metrics), "seed {seed}");
        }
        let panic = RunOutcome::Panicked("boom at rep 3".into());
        assert_eq!(outcome_from_json(&outcome_to_json(&panic)).unwrap(), panic);
        let timeout = RunOutcome::TimedOut;
        assert_eq!(
            outcome_from_json(&outcome_to_json(&timeout)).unwrap(),
            timeout
        );
    }

    #[test]
    fn point_line_round_trips_mixed_outcomes() {
        let outcomes = vec![
            RunOutcome::Ok(m(4)),
            RunOutcome::Panicked("deliberate".to_string()),
            RunOutcome::TimedOut,
            RunOutcome::Ok(m(5)),
        ];
        let attempts = vec![1, 3, 2, 1];
        let line = point_to_line("cell|Proto|25", &outcomes, &attempts);
        let (key, back, back_attempts) = point_from_line(&line).unwrap();
        assert_eq!(key, "cell|Proto|25");
        assert_eq!(back, outcomes);
        assert_eq!(back_attempts, attempts);
    }

    #[test]
    fn memory_guard_degrades_without_changing_results() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 1,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let mut tight = cfg.clone();
        tight.memory_budget_bytes = Some(1); // any live process is over this
        let log = Reporter::new(crate::Verbosity::Quiet);
        let clean = run_robustness(Mobility::Interval(2000), &cfg, None, false, &log).unwrap();
        let degraded = run_robustness(Mobility::Interval(2000), &tight, None, false, &log).unwrap();
        assert!(degraded.memory_degradations > 0, "guard never fired");
        assert_eq!(clean.points.len(), degraded.points.len());
        for (a, b) in clean.points.iter().zip(&degraded.points) {
            assert_eq!(
                a.delivery_ratio_mean.to_bits(),
                b.delivery_ratio_mean.to_bits(),
                "cache shedding must not change results"
            );
            assert_eq!(a.failures, b.failures);
        }
        // Shedding the cache costs extra trace builds, never correctness.
        assert!(degraded.trace_cache_misses >= clean.trace_cache_misses);
    }

    #[test]
    fn grid_has_six_distinct_cells() {
        let grid = fault_grid();
        assert_eq!(grid.len(), 6);
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label).collect();
        assert_eq!(labels.len(), 6);
        assert!(grid[0].plan.is_none(), "first cell is the clean baseline");
        for c in &grid {
            c.plan.validate().unwrap();
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_the_fresh_report() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 2,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let log = Reporter::new(crate::Verbosity::Quiet);
        let dir = std::env::temp_dir().join(format!("robustness_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("grid.ckpt");

        let fresh =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), false, &log).unwrap();
        // Drop the last few checkpoint lines to fake an interrupted run.
        let text = std::fs::read_to_string(&ckpt).unwrap();
        let keep: Vec<&str> = text.lines().take(text.lines().count() - 3).collect();
        std::fs::write(&ckpt, format!("{}\n", keep.join("\n"))).unwrap();

        let resumed =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log).unwrap();
        assert_eq!(fresh.points.len(), resumed.points.len());
        for (a, b) in fresh.points.iter().zip(&resumed.points) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.mobility, b.mobility);
            assert_eq!(a.load, b.load);
            assert_eq!(
                a.delivery_ratio_mean.to_bits(),
                b.delivery_ratio_mean.to_bits()
            );
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.contacts_skipped, b.contacts_skipped);
            assert_eq!(a.sessions_truncated, b.sessions_truncated);
            assert_eq!(a.ack_losses, b.ack_losses);
            assert_eq!(a.churn_wipes, b.churn_wipes);
        }
        // A fully-complete checkpoint resumes without re-simulating.
        let resumed2 =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log).unwrap();
        assert_eq!(resumed2.points.len(), fresh.points.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_mismatch_is_rejected_on_resume() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 1,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let log = Reporter::new(crate::Verbosity::Quiet);
        let dir = std::env::temp_dir().join(format!("robustness_ckpt_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("grid.ckpt");
        std::fs::write(
            &ckpt,
            "{\"ckpt\":\"robustness\",\"mobility\":\"interval(2000s)\",\"base_seed\":999,\
             \"replications\":1,\"loads\":[5]}\n",
        )
        .unwrap();
        let err = run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log)
            .expect_err("mismatched manifest must be rejected");
        assert!(err.contains("mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
