//! The robustness preset: every protocol swept across a churn × loss
//! fault grid, with panic isolation and checkpoint/resume.
//!
//! The paper evaluates its eight protocols on clean channels; this module
//! asks how the level comparison holds up when the environment degrades.
//! [`fault_grid`] spans three churn regimes (none, duty-cycle, crash) by
//! two channel regimes (clean, lossy — bursty Gilbert–Elliott loss plus
//! session truncation and anti-packet loss), and [`run_robustness`] runs
//! all eight protocols over every cell, producing one [`SweepReport`]
//! whose per-point fault counters make the degradation measurable.
//!
//! A full grid is 6 cells × 8 protocols × loads × replications — long
//! enough that losing it to a crash or an eviction hurts. The driver
//! therefore runs every point through the panic-isolating executor
//! (one diverging replication becomes a recorded failure, not an abort)
//! and, when given a checkpoint path, appends each finished point to a
//! JSONL checkpoint that `--resume` replays: already-completed points are
//! loaded bit-exactly (floats travel as IEEE-754 bit patterns, never
//! through decimal) and only the remainder is simulated.

use crate::runner::{point_sim_config, SweepConfig};
use crate::scenarios::Mobility;
use crate::{Reporter, SweepReport, TraceCache};
use dtn_epidemic::{
    protocols, simulate, ChurnMode, ChurnPlan, FaultPlan, GilbertElliott, RunMetrics, Workload,
};
use dtn_sim::{par_map_catch, SimRng, SimTime};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;

/// One cell of the robustness grid: a label and its fault plan.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Stable cell label (embedded in the report's mobility column and
    /// the checkpoint key).
    pub label: &'static str,
    /// The plan every replication in this cell runs under.
    pub plan: FaultPlan,
}

/// The default churn × loss grid: `{none, duty, crash}` ×
/// `{clean, lossy}`.
///
/// Churn cells give nodes exponential up/down dwell times with mean
/// 40 000 s up and 10 000 s down (an 80 % duty cycle, long enough that
/// several contacts fall inside one outage). Lossy cells combine a
/// bursty Gilbert–Elliott channel (2 % good-state / 60 % bad-state loss,
/// mean burst length 4 transmissions), 25 % session truncation and 25 %
/// anti-packet loss.
pub fn fault_grid() -> Vec<FaultCell> {
    let churn = |mode| ChurnPlan {
        mean_up_secs: 40_000.0,
        mean_down_secs: 10_000.0,
        mode,
    };
    let lossy = || FaultPlan {
        truncation_prob: 0.25,
        ack_loss_prob: 0.25,
        burst: Some(GilbertElliott {
            loss_good: 0.02,
            loss_bad: 0.6,
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.25,
        }),
        churn: None,
    };
    vec![
        FaultCell {
            label: "churn=none,loss=clean",
            plan: FaultPlan::none(),
        },
        FaultCell {
            label: "churn=none,loss=lossy",
            plan: lossy(),
        },
        FaultCell {
            label: "churn=duty,loss=clean",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::DutyCycle)),
                ..FaultPlan::none()
            },
        },
        FaultCell {
            label: "churn=duty,loss=lossy",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::DutyCycle)),
                ..lossy()
            },
        },
        FaultCell {
            label: "churn=crash,loss=clean",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::Crash)),
                ..FaultPlan::none()
            },
        },
        FaultCell {
            label: "churn=crash,loss=lossy",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::Crash)),
                ..lossy()
            },
        },
    ]
}

/// Checkpoint key of one grid point.
fn point_key(cell: &str, protocol: &str, load: u32) -> String {
    format!("{cell}|{protocol}|{load}")
}

/// An `f64` as its IEEE-754 bit pattern in hex — survives a JSON
/// round-trip bit-exactly, which decimal rendering cannot guarantee.
fn f64_hex(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

fn parse_f64_hex(tok: &str) -> Result<f64, String> {
    let hex = tok
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted hex f64, got {tok:?}"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {hex:?}: {e}"))
}

/// One replication outcome as a checkpoint token: a fixed-order JSON
/// array for a success, or a JSON string (the panic message) for an
/// isolated panic.
fn outcome_to_json(outcome: &Result<RunMetrics, String>) -> String {
    match outcome {
        Err(msg) => format!("{{\"panic\":\"{}\"}}", crate::report::json_escape(msg)),
        Ok(m) => format!(
            "[{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}]",
            m.total_bundles,
            m.delivered,
            f64_hex(m.delivery_ratio),
            m.completion_time
                .map(|t| t.as_millis().to_string())
                .unwrap_or_else(|| "null".into()),
            f64_hex(m.avg_buffer_occupancy),
            f64_hex(m.peak_buffer_occupancy),
            f64_hex(m.avg_duplication_rate),
            m.contacts_processed,
            m.bundle_transmissions,
            m.ack_records_sent,
            m.evictions,
            m.expirations,
            m.rejections,
            m.immunity_purges,
            m.transfer_losses,
            m.payload_bytes_sent,
            m.control_bytes_sent,
            m.contacts_skipped,
            m.sessions_truncated,
            m.ack_losses,
            m.churn_wipes,
            m.churn_drops,
            m.end_time.as_millis(),
        ),
    }
}

fn outcome_from_json(tok: &str) -> Result<Result<RunMetrics, String>, String> {
    let tok = tok.trim();
    if let Some(rest) = tok.strip_prefix("{\"panic\":\"") {
        let msg = rest
            .strip_suffix("\"}")
            .ok_or_else(|| format!("bad panic token {tok:?}"))?;
        return Ok(Err(msg.to_string()));
    }
    let body = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected array token, got {tok:?}"))?;
    let fields: Vec<&str> = body.split(',').collect();
    if fields.len() != 23 {
        return Err(format!("expected 23 fields, got {}", fields.len()));
    }
    let int = |i: usize| -> Result<u64, String> {
        fields[i]
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("field {i}: {e}"))
    };
    let completion_time = match fields[3].trim() {
        "null" => None,
        ms => Some(SimTime::from_millis(
            ms.parse::<u64>().map_err(|e| format!("field 3: {e}"))?,
        )),
    };
    Ok(Ok(RunMetrics {
        total_bundles: int(0)? as u32,
        delivered: int(1)? as u32,
        delivery_ratio: parse_f64_hex(fields[2].trim())?,
        completion_time,
        avg_buffer_occupancy: parse_f64_hex(fields[4].trim())?,
        peak_buffer_occupancy: parse_f64_hex(fields[5].trim())?,
        avg_duplication_rate: parse_f64_hex(fields[6].trim())?,
        contacts_processed: int(7)?,
        bundle_transmissions: int(8)?,
        ack_records_sent: int(9)?,
        evictions: int(10)?,
        expirations: int(11)?,
        rejections: int(12)?,
        immunity_purges: int(13)?,
        transfer_losses: int(14)?,
        payload_bytes_sent: int(15)?,
        control_bytes_sent: int(16)?,
        contacts_skipped: int(17)?,
        sessions_truncated: int(18)?,
        ack_losses: int(19)?,
        churn_wipes: int(20)?,
        churn_drops: int(21)?,
        end_time: SimTime::from_millis(int(22)?),
    }))
}

/// One finished point as a checkpoint line (no trailing newline).
fn point_to_line(key: &str, outcomes: &[Result<RunMetrics, String>]) -> String {
    let mut runs = String::new();
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            runs.push(',');
        }
        runs.push_str(&outcome_to_json(o));
    }
    format!(
        "{{\"point\":\"{}\",\"runs\":[{}]}}",
        crate::report::json_escape(key),
        runs
    )
}

fn point_from_line(line: &str) -> Result<(String, Vec<Result<RunMetrics, String>>), String> {
    let rest = line
        .trim()
        .strip_prefix("{\"point\":\"")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let (key, rest) = rest
        .split_once("\",\"runs\":[")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let body = rest
        .strip_suffix("]}")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    // Outcome tokens contain no nested brackets at depth 0, so splitting
    // on "]," / "}," boundaries via a tiny depth scanner is enough.
    let mut outcomes = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, c) in body.char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                outcomes.push(outcome_from_json(&body[start..i])?);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        outcomes.push(outcome_from_json(&body[start..])?);
    }
    Ok((key.to_string(), outcomes))
}

/// The manifest (first) line of a checkpoint file.
fn manifest_line(mobility: Mobility, cfg: &SweepConfig) -> String {
    format!(
        "{{\"ckpt\":\"robustness\",\"mobility\":\"{}\",\"base_seed\":{},\"replications\":{},\"loads\":{:?}}}",
        crate::report::json_escape(&mobility.label()),
        cfg.base_seed,
        cfg.replications,
        cfg.loads,
    )
}

/// Parse a checkpoint file written by a previous [`run_robustness`] call.
/// The manifest must match the current configuration — resuming under a
/// different seed or replication count would silently mix incompatible
/// results, so a mismatch is an error.
fn load_checkpoint(
    path: &Path,
    mobility: Mobility,
    cfg: &SweepConfig,
) -> Result<HashMap<String, Vec<Result<RunMetrics, String>>>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let manifest = lines.next().ok_or("checkpoint is empty")?;
    let expected = manifest_line(mobility, cfg);
    if manifest.trim() != expected {
        return Err(format!(
            "checkpoint manifest mismatch\n  found:    {manifest}\n  expected: {expected}\n\
             (resume requires the same mobility, seed, replications and loads)"
        ));
    }
    let mut done = HashMap::new();
    for line in lines {
        let (key, outcomes) = point_from_line(line)?;
        if outcomes.len() != cfg.replications {
            return Err(format!(
                "checkpoint point {key:?} has {} outcomes, expected {}",
                outcomes.len(),
                cfg.replications
            ));
        }
        done.insert(key, outcomes);
    }
    Ok(done)
}

/// Run the full robustness preset: every protocol in
/// [`protocols::all_protocols`] across every [`fault_grid`] cell and every
/// `cfg.loads` level, with `cfg.faults` ignored in favour of each cell's
/// plan. Returns one [`SweepReport`] whose point labels fold the cell into
/// the mobility column (`"trace/churn=crash,loss=lossy"`).
///
/// `checkpoint` enables crash tolerance: each finished point is appended
/// (and flushed) to the file, and `resume` reloads any compatible previous
/// checkpoint so only missing points are simulated. A resumed run's report
/// aggregates are bit-identical to an uninterrupted run's.
pub fn run_robustness(
    mobility: Mobility,
    cfg: &SweepConfig,
    checkpoint: Option<&Path>,
    resume: bool,
    log: &Reporter,
) -> Result<SweepReport, String> {
    let grid = fault_grid();
    let protos = protocols::all_protocols();

    let mut done: HashMap<String, Vec<Result<RunMetrics, String>>> = HashMap::new();
    if resume {
        let path = checkpoint.ok_or("--resume requires --checkpoint PATH")?;
        if path.exists() {
            done = load_checkpoint(path, mobility, cfg)?;
            log.info(format!(
                "resumed {} finished points from {}",
                done.len(),
                path.display()
            ));
        }
    }

    let mut ckpt_file = match checkpoint {
        Some(path) => {
            let fresh = !resume || !path.exists();
            let mut opts = std::fs::OpenOptions::new();
            if fresh {
                opts.write(true).create(true).truncate(true);
            } else {
                opts.append(true);
            }
            let mut f = opts
                .open(path)
                .map_err(|e| format!("cannot open checkpoint {}: {e}", path.display()))?;
            if fresh {
                writeln!(f, "{}", manifest_line(mobility, cfg))
                    .map_err(|e| format!("checkpoint write failed: {e}"))?;
            }
            Some(f)
        }
        None => None,
    };

    let started = std::time::Instant::now();
    let cache = TraceCache::new();
    let mut report = SweepReport::new(format!(
        "robustness grid: {} cells x {} protocols x {} loads x {} replications @ {}",
        grid.len(),
        protos.len(),
        cfg.loads.len(),
        cfg.replications,
        mobility.label(),
    ));

    for cell in &grid {
        let cell_started = std::time::Instant::now();
        let mut cell_cfg = cfg.clone();
        cell_cfg.faults = cell.plan.clone();
        cell_cfg.faults.validate()?;
        for proto in &protos {
            for &load in &cfg.loads {
                let key = point_key(cell.label, proto.name, load);
                let outcomes = match done.remove(&key) {
                    Some(outcomes) => outcomes,
                    None => {
                        let sim_config = point_sim_config(proto, mobility, &cell_cfg);
                        let root = SimRng::new(cell_cfg.base_seed ^ (load as u64) << 32);
                        let outcomes =
                            par_map_catch(cell_cfg.threads, cell_cfg.replications, |rep| {
                                let rep = rep as u64;
                                let mut wl_rng = root.derive(rep * 2 + 1);
                                let sim_rng = root.derive(rep * 2);
                                let trace = mobility.build_cached(cell_cfg.base_seed, rep, &cache);
                                let workload = Workload::single_random_flow(
                                    load,
                                    trace.node_count(),
                                    &mut wl_rng,
                                );
                                simulate(&trace, &workload, &sim_config, sim_rng)
                            });
                        if let Some(f) = ckpt_file.as_mut() {
                            writeln!(f, "{}", point_to_line(&key, &outcomes))
                                .and_then(|()| f.flush())
                                .map_err(|e| format!("checkpoint write failed: {e}"))?;
                        }
                        outcomes
                    }
                };
                let mobility_label = format!("{}/{}", mobility.label(), cell.label);
                report.record_point_checked(proto.name, &mobility_label, load, &outcomes);
            }
        }
        report.record_sweep(
            format!("{} @ {}", cell.label, mobility.label()),
            cell_started.elapsed().as_secs_f64(),
        );
        log.info(format!("cell {} done", cell.label));
    }

    report.record_cache(cache.stats());
    report.finish(started.elapsed().as_secs_f64());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::Threads;

    fn m(seed: u64) -> RunMetrics {
        let trace = Mobility::Interval(2000).build(seed, 0);
        let mut wl = SimRng::new(seed ^ 0xABC);
        let workload = Workload::single_random_flow(5, trace.node_count(), &mut wl);
        let cfg = point_sim_config(
            &protocols::immunity_epidemic(),
            Mobility::Interval(2000),
            &SweepConfig::default(),
        );
        simulate(&trace, &workload, &cfg, SimRng::new(seed))
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        for seed in [1, 2, 99] {
            let metrics = m(seed);
            let token = outcome_to_json(&Ok(metrics));
            let back = outcome_from_json(&token).unwrap().unwrap();
            assert_eq!(metrics, back, "seed {seed}");
        }
        let panic: Result<RunMetrics, String> = Err("boom at rep 3".into());
        let back = outcome_from_json(&outcome_to_json(&panic)).unwrap();
        assert_eq!(back, panic);
    }

    #[test]
    fn point_line_round_trips_mixed_outcomes() {
        let outcomes = vec![Ok(m(4)), Err("deliberate".to_string()), Ok(m(5))];
        let line = point_to_line("cell|Proto|25", &outcomes);
        let (key, back) = point_from_line(&line).unwrap();
        assert_eq!(key, "cell|Proto|25");
        assert_eq!(back, outcomes);
    }

    #[test]
    fn grid_has_six_distinct_cells() {
        let grid = fault_grid();
        assert_eq!(grid.len(), 6);
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label).collect();
        assert_eq!(labels.len(), 6);
        assert!(grid[0].plan.is_none(), "first cell is the clean baseline");
        for c in &grid {
            c.plan.validate().unwrap();
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_the_fresh_report() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 2,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let log = Reporter::new(crate::Verbosity::Quiet);
        let dir = std::env::temp_dir().join(format!("robustness_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("grid.ckpt");

        let fresh =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), false, &log).unwrap();
        // Drop the last few checkpoint lines to fake an interrupted run.
        let text = std::fs::read_to_string(&ckpt).unwrap();
        let keep: Vec<&str> = text.lines().take(text.lines().count() - 3).collect();
        std::fs::write(&ckpt, format!("{}\n", keep.join("\n"))).unwrap();

        let resumed =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log).unwrap();
        assert_eq!(fresh.points.len(), resumed.points.len());
        for (a, b) in fresh.points.iter().zip(&resumed.points) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.mobility, b.mobility);
            assert_eq!(a.load, b.load);
            assert_eq!(
                a.delivery_ratio_mean.to_bits(),
                b.delivery_ratio_mean.to_bits()
            );
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.contacts_skipped, b.contacts_skipped);
            assert_eq!(a.sessions_truncated, b.sessions_truncated);
            assert_eq!(a.ack_losses, b.ack_losses);
            assert_eq!(a.churn_wipes, b.churn_wipes);
        }
        // A fully-complete checkpoint resumes without re-simulating.
        let resumed2 =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log).unwrap();
        assert_eq!(resumed2.points.len(), fresh.points.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_mismatch_is_rejected_on_resume() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 1,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let log = Reporter::new(crate::Verbosity::Quiet);
        let dir = std::env::temp_dir().join(format!("robustness_ckpt_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("grid.ckpt");
        std::fs::write(
            &ckpt,
            "{\"ckpt\":\"robustness\",\"mobility\":\"interval(2000s)\",\"base_seed\":999,\
             \"replications\":1,\"loads\":[5]}\n",
        )
        .unwrap();
        let err = run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log)
            .expect_err("mismatched manifest must be rejected");
        assert!(err.contains("mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
