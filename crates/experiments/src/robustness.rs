//! The robustness preset: every protocol swept across a churn × loss
//! fault grid, with panic isolation and checkpoint/resume.
//!
//! The paper evaluates its eight protocols on clean channels; this module
//! asks how the level comparison holds up when the environment degrades.
//! [`fault_grid`] spans three churn regimes (none, duty-cycle, crash) by
//! two channel regimes (clean, lossy — bursty Gilbert–Elliott loss plus
//! session truncation and anti-packet loss), and [`run_robustness`] runs
//! all eight protocols over every cell, producing one [`SweepReport`]
//! whose per-point fault counters make the degradation measurable.
//!
//! A full grid is 6 cells × 8 protocols × loads × replications — long
//! enough that losing it to a crash or an eviction hurts. The driver
//! therefore runs every point through the panic-isolating executor
//! (one diverging replication becomes a recorded failure, not an abort)
//! and, when given a checkpoint path, appends each finished point to a
//! JSONL checkpoint that `--resume` replays: already-completed points are
//! loaded bit-exactly (floats travel as IEEE-754 bit patterns, never
//! through decimal) and only the remainder is simulated.
//!
//! The unit of work is a [`PointJob`] (see [`crate::jobs`]):
//! [`grid_point_jobs`] enumerates the grid as self-contained jobs, the
//! local driver runs them in place, and a `dtnsim --connect` client ships
//! the very same jobs to a `dtnsimd` daemon and reassembles the report
//! with [`assemble_grid_report`] — canonically identical either way.

use crate::jobs::{outcome_from_json, outcome_to_json, PointJob, PointOutcome};
use crate::runner::SweepConfig;
use crate::scenarios::Mobility;
use crate::{Reporter, SweepReport, TraceCache};
use dtn_epidemic::{protocols, ChurnMode, ChurnPlan, FaultPlan, GilbertElliott, RunMetrics};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

pub use crate::jobs::{InjectHook, RunOutcome};

/// One cell of the robustness grid: a label and its fault plan.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Stable cell label (embedded in the report's mobility column and
    /// the checkpoint key).
    pub label: &'static str,
    /// The plan every replication in this cell runs under.
    pub plan: FaultPlan,
}

/// The default churn × loss grid: `{none, duty, crash}` ×
/// `{clean, lossy}`.
///
/// Churn cells give nodes exponential up/down dwell times with mean
/// 40 000 s up and 10 000 s down (an 80 % duty cycle, long enough that
/// several contacts fall inside one outage). Lossy cells combine a
/// bursty Gilbert–Elliott channel (2 % good-state / 60 % bad-state loss,
/// mean burst length 4 transmissions), 25 % session truncation and 25 %
/// anti-packet loss.
pub fn fault_grid() -> Vec<FaultCell> {
    let churn = |mode| ChurnPlan {
        mean_up_secs: 40_000.0,
        mean_down_secs: 10_000.0,
        mode,
    };
    let lossy = || FaultPlan {
        truncation_prob: 0.25,
        ack_loss_prob: 0.25,
        burst: Some(GilbertElliott {
            loss_good: 0.02,
            loss_bad: 0.6,
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.25,
        }),
        churn: None,
    };
    vec![
        FaultCell {
            label: "churn=none,loss=clean",
            plan: FaultPlan::none(),
        },
        FaultCell {
            label: "churn=none,loss=lossy",
            plan: lossy(),
        },
        FaultCell {
            label: "churn=duty,loss=clean",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::DutyCycle)),
                ..FaultPlan::none()
            },
        },
        FaultCell {
            label: "churn=duty,loss=lossy",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::DutyCycle)),
                ..lossy()
            },
        },
        FaultCell {
            label: "churn=crash,loss=clean",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::Crash)),
                ..FaultPlan::none()
            },
        },
        FaultCell {
            label: "churn=crash,loss=lossy",
            plan: FaultPlan {
                churn: Some(churn(ChurnMode::Crash)),
                ..lossy()
            },
        },
    ]
}

/// Checkpoint key of one grid point.
pub fn point_key(cell: &str, protocol: &str, load: u32) -> String {
    format!("{cell}|{protocol}|{load}")
}

/// One grid point with its full identity: display labels, the
/// checkpoint key, and the self-contained [`PointJob`] that computes it.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// The fault-grid cell label.
    pub cell_label: &'static str,
    /// The protocol's display name (report column).
    pub protocol_name: &'static str,
    /// The protocol's canonical spec string (wire/cache identity).
    pub protocol_spec: &'static str,
    /// Bundles per flow.
    pub load: u32,
    /// Checkpoint key (`"{cell}|{protocol}|{load}"`).
    pub key: String,
    /// The job computing this point.
    pub job: PointJob,
}

/// Enumerate the robustness grid as self-contained jobs, in canonical
/// order (cells outer, protocols middle, loads inner) — the order
/// [`run_robustness`] executes and [`assemble_grid_report`] expects.
pub fn grid_point_jobs(mobility: Mobility, cfg: &SweepConfig) -> Result<Vec<GridPoint>, String> {
    let grid = fault_grid();
    let protos = protocols::all_protocols();
    let mut points = Vec::with_capacity(grid.len() * protos.len() * cfg.loads.len());
    for cell in &grid {
        let mut cell_cfg = cfg.clone();
        cell_cfg.faults = cell.plan.clone();
        cell_cfg.faults.validate()?;
        for (spec, proto) in protocols::ALL_SPECS.iter().zip(&protos) {
            for &load in &cfg.loads {
                points.push(GridPoint {
                    cell_label: cell.label,
                    protocol_name: proto.name,
                    protocol_spec: spec,
                    load,
                    key: point_key(cell.label, proto.name, load),
                    job: PointJob::from_sweep(*spec, mobility, load, &cell_cfg),
                });
            }
        }
    }
    Ok(points)
}

/// One finished point as a checkpoint line (no trailing newline): the
/// key, the per-replication attempt counts, then the outcome tokens.
fn point_to_line(key: &str, outcomes: &[RunOutcome], attempts: &[u32]) -> String {
    let mut runs = String::new();
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            runs.push(',');
        }
        runs.push_str(&outcome_to_json(o));
    }
    let attempts: Vec<String> = attempts.iter().map(|a| a.to_string()).collect();
    format!(
        "{{\"point\":\"{}\",\"attempts\":[{}],\"runs\":[{}]}}",
        crate::report::json_escape(key),
        attempts.join(","),
        runs
    )
}

type PointLine = (String, Vec<RunOutcome>, Vec<u32>);
/// Finished points keyed by checkpoint key: (outcomes, attempt counts).
type DoneMap = HashMap<String, (Vec<RunOutcome>, Vec<u32>)>;

fn point_from_line(line: &str) -> Result<PointLine, String> {
    let rest = line
        .trim()
        .strip_prefix("{\"point\":\"")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let (key, rest) = rest
        .split_once("\",\"attempts\":[")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let (attempts, rest) = rest
        .split_once("],\"runs\":[")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    let attempts: Vec<u32> = attempts
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            t.trim()
                .parse::<u32>()
                .map_err(|e| format!("bad attempt count {t:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let body = rest
        .strip_suffix("]}")
        .ok_or_else(|| format!("bad checkpoint line {line:?}"))?;
    // Outcome tokens contain no nested brackets at depth 0, so splitting
    // on "]," / "}," boundaries via a tiny depth scanner is enough.
    let mut outcomes = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, c) in body.char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                outcomes.push(outcome_from_json(&body[start..i])?);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        outcomes.push(outcome_from_json(&body[start..])?);
    }
    if attempts.len() != outcomes.len() {
        return Err(format!(
            "checkpoint point {key:?} has {} attempt counts for {} runs",
            attempts.len(),
            outcomes.len()
        ));
    }
    Ok((key.to_string(), outcomes, attempts))
}

/// The manifest (first) line of a checkpoint file. The watchdog
/// configuration is part of it: retried replications run on salted RNG
/// streams and timed-out replications carry no metrics, so resuming
/// under a different supervision policy would silently mix
/// incomparable results.
fn manifest_line(mobility: Mobility, cfg: &SweepConfig) -> String {
    format!(
        "{{\"ckpt\":\"robustness\",\"mobility\":\"{}\",\"base_seed\":{},\"replications\":{},\
         \"loads\":{:?},\"retries\":{},\"timeout_secs\":{}}}",
        crate::report::json_escape(&mobility.label()),
        cfg.base_seed,
        cfg.replications,
        cfg.loads,
        cfg.retries,
        cfg.point_timeout_secs
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".into()),
    )
}

/// Parse a checkpoint file written by a previous [`run_robustness`] call.
/// The manifest must match the current configuration — resuming under a
/// different seed or replication count would silently mix incompatible
/// results, so a mismatch is an error.
fn load_checkpoint(path: &Path, mobility: Mobility, cfg: &SweepConfig) -> Result<DoneMap, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let manifest = lines.next().ok_or("checkpoint is empty")?;
    let expected = manifest_line(mobility, cfg);
    if manifest.trim() != expected {
        return Err(format!(
            "checkpoint manifest mismatch\n  found:    {manifest}\n  expected: {expected}\n\
             (resume requires the same mobility, seed, replications and loads)"
        ));
    }
    let mut done = HashMap::new();
    for line in lines {
        let (key, outcomes, attempts) = point_from_line(line)?;
        if outcomes.len() != cfg.replications {
            return Err(format!(
                "checkpoint point {key:?} has {} outcomes, expected {}",
                outcomes.len(),
                cfg.replications
            ));
        }
        done.insert(key, (outcomes, attempts));
    }
    Ok(done)
}

/// The workload description of a robustness report — shared verbatim by
/// the local driver and the service client so assembled reports match.
fn grid_workload(mobility: Mobility, cfg: &SweepConfig) -> String {
    format!(
        "robustness grid: {} cells x {} protocols x {} loads x {} replications @ {}",
        fault_grid().len(),
        protocols::all_protocols().len(),
        cfg.loads.len(),
        cfg.replications,
        mobility.label(),
    )
}

/// Run the full robustness preset: every protocol in
/// [`protocols::all_protocols`] across every [`fault_grid`] cell and every
/// `cfg.loads` level, with `cfg.faults` ignored in favour of each cell's
/// plan. Returns one [`SweepReport`] whose point labels fold the cell into
/// the mobility column (`"trace/churn=crash,loss=lossy"`).
///
/// `checkpoint` enables crash tolerance: each finished point is appended
/// (and flushed) to the file, and `resume` reloads any compatible previous
/// checkpoint so only missing points are simulated. A resumed run's report
/// aggregates are bit-identical to an uninterrupted run's.
pub fn run_robustness(
    mobility: Mobility,
    cfg: &SweepConfig,
    checkpoint: Option<&Path>,
    resume: bool,
    log: &Reporter,
) -> Result<SweepReport, String> {
    run_robustness_watched(mobility, cfg, checkpoint, resume, log, None)
}

/// [`run_robustness`] with an optional [`InjectHook`] prepended to every
/// replication attempt. The hook exists so tests can make the supervisor
/// itself misbehave on demand — panic on chosen attempts to exercise
/// bounded retry, or sleep past the hard deadline to exercise timeout
/// isolation — while everything else stays the production code path.
pub fn run_robustness_watched(
    mobility: Mobility,
    cfg: &SweepConfig,
    checkpoint: Option<&Path>,
    resume: bool,
    log: &Reporter,
    inject: Option<InjectHook>,
) -> Result<SweepReport, String> {
    let points = grid_point_jobs(mobility, cfg)?;

    let mut done: DoneMap = HashMap::new();
    if resume {
        let path = checkpoint.ok_or("--resume requires --checkpoint PATH")?;
        if path.exists() {
            done = load_checkpoint(path, mobility, cfg)?;
            log.info(format!(
                "resumed {} finished points from {}",
                done.len(),
                path.display()
            ));
        }
    }

    let mut ckpt_file = match checkpoint {
        Some(path) => {
            let fresh = !resume || !path.exists();
            let mut opts = std::fs::OpenOptions::new();
            if fresh {
                opts.write(true).create(true).truncate(true);
            } else {
                opts.append(true);
            }
            let mut f = opts
                .open(path)
                .map_err(|e| format!("cannot open checkpoint {}: {e}", path.display()))?;
            if fresh {
                writeln!(f, "{}", manifest_line(mobility, cfg))
                    .map_err(|e| format!("checkpoint write failed: {e}"))?;
            }
            Some(f)
        }
        None => None,
    };

    let started = std::time::Instant::now();
    let mut cache = Arc::new(TraceCache::new());
    // Hit/miss counters accumulated across memory-guard cache sheds.
    let mut cache_base = (0u64, 0u64);
    let mut report = SweepReport::new(grid_workload(mobility, cfg));

    let mut cell_started = std::time::Instant::now();
    for (i, gp) in points.iter().enumerate() {
        let key = &gp.key;
        // Phase breakdown of a freshly computed point (None when the
        // point was replayed from a checkpoint): trace preparation vs
        // protocol loop vs report assembly.
        let mut phase_secs = None;
        let (outcomes, attempts, violations) = match done.remove(key) {
            Some((outcomes, attempts)) => (outcomes, attempts, Vec::new()),
            None => {
                // Warm the trace cache for every replication first so
                // the mobility cost is measurable separately from the
                // protocol loop (the job's own lookups then all hit).
                let trace_started = std::time::Instant::now();
                for rep in 0..cfg.replications {
                    let _ = mobility.build_cached(cfg.base_seed, rep as u64, &cache);
                }
                let trace_secs = trace_started.elapsed().as_secs_f64();
                let sim_started = std::time::Instant::now();
                let out = gp
                    .job
                    .run_hooked(cfg.threads, &cache, inject.clone(), key)?;
                let sim_secs = sim_started.elapsed().as_secs_f64();
                phase_secs = Some((trace_secs, sim_secs));
                if let Some(threshold) = cfg.slow_point_secs {
                    if sim_secs > threshold {
                        log.info(format!(
                            "slow point {key}: simulation phase took {sim_secs:.3}s \
                             (threshold {threshold}s)"
                        ));
                    }
                }
                if out.slow > 0 {
                    log.debug(format!(
                        "{key}: {} replication(s) exceeded the soft deadline",
                        out.slow
                    ));
                }
                if let Some(f) = ckpt_file.as_mut() {
                    writeln!(f, "{}", point_to_line(key, &out.outcomes, &out.attempts))
                        .and_then(|()| f.flush())
                        .map_err(|e| format!("checkpoint write failed: {e}"))?;
                }
                let violations = out
                    .violations
                    .iter()
                    .map(|v| format!("{key} {v}"))
                    .collect();
                (out.outcomes, out.attempts, violations)
            }
        };
        let assemble_started = std::time::Instant::now();
        for v in violations {
            report.record_violation(v);
        }
        let mobility_label = format!("{}/{}", mobility.label(), gp.cell_label);
        record_supervised_point(
            &mut report,
            gp.protocol_name,
            &mobility_label,
            gp.load,
            &outcomes,
            &attempts,
        );
        if let Some((trace_secs, sim_secs)) = phase_secs {
            report.record_point_timing(crate::report::PointTiming {
                trace_secs,
                sim_secs,
                assemble_secs: assemble_started.elapsed().as_secs_f64(),
            });
        }
        if let Some(budget) = cfg.memory_budget_bytes {
            let over = crate::report::current_rss_bytes().is_some_and(|rss| rss > budget);
            if over {
                let (hits, misses) = cache.stats();
                cache_base.0 += hits;
                cache_base.1 += misses;
                cache = Arc::new(TraceCache::new());
                report.memory_degradations += 1;
                log.info(format!(
                    "memory budget exceeded after {key}; trace cache shed, \
                     continuing cache-cold (checkpoint already flushed)"
                ));
            }
        }
        let cell_done = points
            .get(i + 1)
            .map_or(true, |next| next.cell_label != gp.cell_label);
        if cell_done {
            report.record_sweep(
                format!("{} @ {}", gp.cell_label, mobility.label()),
                cell_started.elapsed().as_secs_f64(),
            );
            log.info(format!("cell {} done", gp.cell_label));
            cell_started = std::time::Instant::now();
        }
    }

    let (hits, misses) = cache.stats();
    report.record_cache((cache_base.0 + hits, cache_base.1 + misses));
    report.finish(started.elapsed().as_secs_f64());
    Ok(report)
}

/// Assemble the robustness [`SweepReport`] from per-point outcomes in
/// [`grid_point_jobs`] order — the client-side counterpart of
/// [`run_robustness`]. Workload string, point records, violation
/// formatting and per-cell sweep records all match the local driver, so
/// a report assembled from service-fetched fragments is canonically
/// identical ([`SweepReport::to_canonical_json`]) to a local run's.
///
/// Wall-clock-dependent fields (cell timings, cache counters) are filled
/// with zeros: a client has no meaningful per-cell timing, and the
/// canonical rendering masks them anyway.
pub fn assemble_grid_report(
    mobility: Mobility,
    cfg: &SweepConfig,
    points: &[GridPoint],
    outcomes: &[PointOutcome],
    wall_secs: f64,
) -> SweepReport {
    assert_eq!(
        points.len(),
        outcomes.len(),
        "one outcome per grid point, in grid order"
    );
    let mut report = SweepReport::new(grid_workload(mobility, cfg));
    for (i, (gp, out)) in points.iter().zip(outcomes).enumerate() {
        for v in &out.violations {
            report.record_violation(format!("{} {v}", gp.key));
        }
        let mobility_label = format!("{}/{}", mobility.label(), gp.cell_label);
        record_supervised_point(
            &mut report,
            gp.protocol_name,
            &mobility_label,
            gp.load,
            &out.outcomes,
            &out.attempts,
        );
        let cell_done = points
            .get(i + 1)
            .map_or(true, |next| next.cell_label != gp.cell_label);
        if cell_done {
            report.record_sweep(format!("{} @ {}", gp.cell_label, mobility.label()), 0.0);
        }
    }
    report.record_cache((0, 0));
    report.finish(wall_secs);
    report
}

/// Fold one point's supervised outcomes into the report: metric
/// aggregates cover the completed replications, panicked and timed-out
/// replications each count as a failure, and retries (attempts beyond
/// each replication's first) are summed.
pub fn record_supervised_point(
    report: &mut SweepReport,
    protocol: &str,
    mobility: &str,
    load: u32,
    outcomes: &[RunOutcome],
    attempts: &[u32],
) {
    let ok: Vec<RunMetrics> = outcomes
        .iter()
        .filter_map(|o| match o {
            RunOutcome::Ok(m) => Some(*m),
            _ => None,
        })
        .collect();
    let panics = outcomes
        .iter()
        .filter(|o| matches!(o, RunOutcome::Panicked(_)))
        .count();
    let timed_out = outcomes
        .iter()
        .filter(|o| matches!(o, RunOutcome::TimedOut))
        .count();
    report.record_point(protocol, mobility, load, &ok);
    let point = report
        .points
        .last_mut()
        .expect("record_point pushed a point");
    point.panics = panics;
    point.timed_out = timed_out;
    point.failures += panics + timed_out;
    point.retries = attempts
        .iter()
        .map(|&a| u64::from(a.saturating_sub(1)))
        .sum();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::point_sim_config;
    use dtn_epidemic::{simulate, Workload};
    use dtn_sim::{SimRng, Threads};

    fn m(seed: u64) -> RunMetrics {
        let trace = Mobility::Interval(2000).build(seed, 0);
        let mut wl = SimRng::new(seed ^ 0xABC);
        let workload = Workload::single_random_flow(5, trace.node_count(), &mut wl);
        let cfg = point_sim_config(
            &protocols::immunity_epidemic(),
            Mobility::Interval(2000),
            &SweepConfig::default(),
        );
        simulate(&trace, &workload, &cfg, SimRng::new(seed))
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        for seed in [1, 2, 99] {
            let metrics = m(seed);
            let token = outcome_to_json(&RunOutcome::Ok(metrics));
            let back = outcome_from_json(&token).unwrap();
            assert_eq!(back, RunOutcome::Ok(metrics), "seed {seed}");
        }
        let panic = RunOutcome::Panicked("boom at rep 3".into());
        assert_eq!(outcome_from_json(&outcome_to_json(&panic)).unwrap(), panic);
        let timeout = RunOutcome::TimedOut;
        assert_eq!(
            outcome_from_json(&outcome_to_json(&timeout)).unwrap(),
            timeout
        );
    }

    #[test]
    fn point_line_round_trips_mixed_outcomes() {
        let outcomes = vec![
            RunOutcome::Ok(m(4)),
            RunOutcome::Panicked("deliberate".to_string()),
            RunOutcome::TimedOut,
            RunOutcome::Ok(m(5)),
        ];
        let attempts = vec![1, 3, 2, 1];
        let line = point_to_line("cell|Proto|25", &outcomes, &attempts);
        let (key, back, back_attempts) = point_from_line(&line).unwrap();
        assert_eq!(key, "cell|Proto|25");
        assert_eq!(back, outcomes);
        assert_eq!(back_attempts, attempts);
    }

    #[test]
    fn memory_guard_degrades_without_changing_results() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 1,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let mut tight = cfg.clone();
        tight.memory_budget_bytes = Some(1); // any live process is over this
        let log = Reporter::new(crate::Verbosity::Quiet);
        let clean = run_robustness(Mobility::Interval(2000), &cfg, None, false, &log).unwrap();
        let degraded = run_robustness(Mobility::Interval(2000), &tight, None, false, &log).unwrap();
        assert!(degraded.memory_degradations > 0, "guard never fired");
        assert_eq!(clean.points.len(), degraded.points.len());
        for (a, b) in clean.points.iter().zip(&degraded.points) {
            assert_eq!(
                a.delivery_ratio_mean.to_bits(),
                b.delivery_ratio_mean.to_bits(),
                "cache shedding must not change results"
            );
            assert_eq!(a.failures, b.failures);
        }
        // Shedding the cache costs extra trace builds, never correctness.
        assert!(degraded.trace_cache_misses >= clean.trace_cache_misses);
    }

    #[test]
    fn grid_has_six_distinct_cells() {
        let grid = fault_grid();
        assert_eq!(grid.len(), 6);
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label).collect();
        assert_eq!(labels.len(), 6);
        assert!(grid[0].plan.is_none(), "first cell is the clean baseline");
        for c in &grid {
            c.plan.validate().unwrap();
        }
    }

    #[test]
    fn assembled_report_is_canonically_identical_to_local_run() {
        // The service client's path: enumerate jobs, run each in
        // isolation, reassemble — must match the local driver
        // canonically (wall-clock and cache counters masked).
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 1,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let log = Reporter::new(crate::Verbosity::Quiet);
        let local = run_robustness(Mobility::Interval(2000), &cfg, None, false, &log).unwrap();

        let points = grid_point_jobs(Mobility::Interval(2000), &cfg).unwrap();
        let cache = Arc::new(TraceCache::new());
        let outcomes: Vec<PointOutcome> = points
            .iter()
            .map(|gp| gp.job.run(Threads::Sequential, &cache).unwrap())
            .collect();
        let assembled =
            assemble_grid_report(Mobility::Interval(2000), &cfg, &points, &outcomes, 0.0);
        assert_eq!(
            local.to_canonical_json(),
            assembled.to_canonical_json(),
            "assembled report diverged from the local driver"
        );
    }

    #[test]
    fn checkpoint_resume_reproduces_the_fresh_report() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 2,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let log = Reporter::new(crate::Verbosity::Quiet);
        let dir = std::env::temp_dir().join(format!("robustness_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("grid.ckpt");

        let fresh =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), false, &log).unwrap();
        // Drop the last few checkpoint lines to fake an interrupted run.
        let text = std::fs::read_to_string(&ckpt).unwrap();
        let keep: Vec<&str> = text.lines().take(text.lines().count() - 3).collect();
        std::fs::write(&ckpt, format!("{}\n", keep.join("\n"))).unwrap();

        let resumed =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log).unwrap();
        assert_eq!(fresh.points.len(), resumed.points.len());
        for (a, b) in fresh.points.iter().zip(&resumed.points) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.mobility, b.mobility);
            assert_eq!(a.load, b.load);
            assert_eq!(
                a.delivery_ratio_mean.to_bits(),
                b.delivery_ratio_mean.to_bits()
            );
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.contacts_skipped, b.contacts_skipped);
            assert_eq!(a.sessions_truncated, b.sessions_truncated);
            assert_eq!(a.ack_losses, b.ack_losses);
            assert_eq!(a.churn_wipes, b.churn_wipes);
        }
        // A fully-complete checkpoint resumes without re-simulating.
        let resumed2 =
            run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log).unwrap();
        assert_eq!(resumed2.points.len(), fresh.points.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_mismatch_is_rejected_on_resume() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 1,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let log = Reporter::new(crate::Verbosity::Quiet);
        let dir = std::env::temp_dir().join(format!("robustness_ckpt_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("grid.ckpt");
        std::fs::write(
            &ckpt,
            "{\"ckpt\":\"robustness\",\"mobility\":\"interval(2000s)\",\"base_seed\":999,\
             \"replications\":1,\"loads\":[5]}\n",
        )
        .unwrap();
        let err = run_robustness(Mobility::Interval(2000), &cfg, Some(&ckpt), true, &log)
            .expect_err("mismatched manifest must be rejected");
        assert!(err.contains("mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
