//! Per-point job units: one (protocol, mobility, load) sweep point as a
//! self-contained, serializable description plus its supervised executor.
//!
//! Every experiment driver in this crate ultimately runs the same shape
//! of work — `replications` supervised simulation runs of one protocol at
//! one load on one mobility source — but before this module each driver
//! in-lined its own copy of the loop. [`PointJob`] extracts that unit:
//!
//! * the **description** carries everything the run depends on (protocol
//!   spec, mobility spec, seeds, buffer, transmission time, fault plan,
//!   watchdog policy) and nothing it doesn't, and serializes to a
//!   canonical JSON line ([`PointJob::to_canonical_json`]) that doubles
//!   as the content-address of the result in the `dtn-service` cache;
//! * the **executor** ([`PointJob::run`]) reuses
//!   [`par_map_supervised`] with the repo's canonical seeding convention
//!   (attempt 0 on `root.derive(rep*2)` / `root.derive(rep*2+1)`, retries
//!   on the salted `0x57AC_0000 | attempt` stream), so a job run here is
//!   bit-identical to the same point run by the sweep runner, the
//!   robustness grid, or `dtnsim` — which is what makes cached results
//!   indistinguishable from fresh ones.
//!
//! [`PointOutcome`] is the result side: per-replication [`RunOutcome`]s
//! and attempt counts (the same tokens the robustness checkpoints use,
//! with `f64`s as IEEE-754 bit patterns so a JSON round-trip is
//! bit-exact) plus any audit violations.

use crate::runner::SweepConfig;
use crate::scenarios::Mobility;
use crate::TraceCache;
use dtn_epidemic::{
    protocols, simulate, simulate_probed, AuditMode, AuditProbe, ChurnMode, ChurnPlan, FaultPlan,
    GilbertElliott, RunMetrics, SimConfig, Workload,
};
use dtn_sim::{par_map_supervised, JobOutcome, SimDuration, SimRng, SimTime, Threads, Watchdog};
use std::sync::Arc;

/// Salt namespace for retry attempts — far above the `rep * 2 (+ 1)`
/// stream indices the canonical attempt-0 derivation uses, so a retried
/// replication walks a genuinely fresh path (replaying the exact seed
/// that just panicked would panic again deterministically).
pub const RETRY_SALT: u64 = 0x57AC_0000;

/// A test seam for the supervisor itself: called at the top of every
/// replication attempt with `(point key, replication, attempt)`, free to
/// panic (exercising bounded retry) or sleep (exercising the hard
/// deadline). Production callers pass `None`.
pub type InjectHook = Arc<dyn Fn(&str, usize, u32) + Send + Sync>;

/// One supervised replication outcome, as stored in checkpoints, shipped
/// over the service wire, and folded into reports.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// The replication finished, possibly after salted retries.
    Ok(RunMetrics),
    /// Every attempt panicked; the final panic message is kept.
    Panicked(String),
    /// The replication outlived the watchdog's hard deadline and was
    /// abandoned without poisoning its siblings.
    TimedOut,
}

/// An `f64` as its IEEE-754 bit pattern in hex — survives a JSON
/// round-trip bit-exactly, which decimal rendering cannot guarantee.
pub fn f64_hex(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

/// Parse an [`f64_hex`] token back to the exact `f64`.
pub fn parse_f64_hex(tok: &str) -> Result<f64, String> {
    let hex = tok
        .trim()
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted hex f64, got {tok:?}"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {hex:?}: {e}"))
}

/// One replication outcome as a token: a fixed-order JSON array for a
/// success, `{"panic":…}` for an isolated panic, or `{"timeout":true}`
/// for an abandoned attempt. Floats travel as bit patterns, so
/// [`outcome_from_json`] reproduces the outcome bit-exactly.
pub fn outcome_to_json(outcome: &RunOutcome) -> String {
    match outcome {
        RunOutcome::TimedOut => "{\"timeout\":true}".to_string(),
        RunOutcome::Panicked(msg) => {
            format!("{{\"panic\":\"{}\"}}", crate::report::json_escape(msg))
        }
        RunOutcome::Ok(m) => format!(
            "[{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}]",
            m.total_bundles,
            m.delivered,
            f64_hex(m.delivery_ratio),
            m.completion_time
                .map(|t| t.as_millis().to_string())
                .unwrap_or_else(|| "null".into()),
            f64_hex(m.avg_buffer_occupancy),
            f64_hex(m.peak_buffer_occupancy),
            f64_hex(m.avg_duplication_rate),
            m.contacts_processed,
            m.bundle_transmissions,
            m.ack_records_sent,
            m.evictions,
            m.expirations,
            m.rejections,
            m.immunity_purges,
            m.transfer_losses,
            m.payload_bytes_sent,
            m.control_bytes_sent,
            m.signaling_bytes,
            m.false_positive_transmissions,
            m.contacts_skipped,
            m.sessions_truncated,
            m.ack_losses,
            m.churn_wipes,
            m.churn_drops,
            m.end_time.as_millis(),
        ),
    }
}

/// Parse one [`outcome_to_json`] token.
pub fn outcome_from_json(tok: &str) -> Result<RunOutcome, String> {
    let tok = tok.trim();
    if tok == "{\"timeout\":true}" {
        return Ok(RunOutcome::TimedOut);
    }
    if let Some(rest) = tok.strip_prefix("{\"panic\":\"") {
        let msg = rest
            .strip_suffix("\"}")
            .ok_or_else(|| format!("bad panic token {tok:?}"))?;
        return Ok(RunOutcome::Panicked(msg.to_string()));
    }
    let body = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected array token, got {tok:?}"))?;
    let fields: Vec<&str> = body.split(',').collect();
    if fields.len() != 25 {
        return Err(format!("expected 25 fields, got {}", fields.len()));
    }
    let int = |i: usize| -> Result<u64, String> {
        fields[i]
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("field {i}: {e}"))
    };
    let completion_time = match fields[3].trim() {
        "null" => None,
        ms => Some(SimTime::from_millis(
            ms.parse::<u64>().map_err(|e| format!("field 3: {e}"))?,
        )),
    };
    Ok(RunOutcome::Ok(RunMetrics {
        total_bundles: int(0)? as u32,
        delivered: int(1)? as u32,
        delivery_ratio: parse_f64_hex(fields[2])?,
        completion_time,
        avg_buffer_occupancy: parse_f64_hex(fields[4])?,
        peak_buffer_occupancy: parse_f64_hex(fields[5])?,
        avg_duplication_rate: parse_f64_hex(fields[6])?,
        contacts_processed: int(7)?,
        bundle_transmissions: int(8)?,
        ack_records_sent: int(9)?,
        evictions: int(10)?,
        expirations: int(11)?,
        rejections: int(12)?,
        immunity_purges: int(13)?,
        transfer_losses: int(14)?,
        payload_bytes_sent: int(15)?,
        control_bytes_sent: int(16)?,
        signaling_bytes: int(17)?,
        false_positive_transmissions: int(18)?,
        contacts_skipped: int(19)?,
        sessions_truncated: int(20)?,
        ack_losses: int(21)?,
        churn_wipes: int(22)?,
        churn_drops: int(23)?,
        end_time: SimTime::from_millis(int(24)?),
    }))
}

/// One self-contained sweep point: everything a run depends on, nothing
/// it doesn't. Two jobs with equal canonical JSON produce bit-identical
/// [`PointOutcome`]s on any machine running the same engine version —
/// the contract the `dtn-service` result cache is built on.
#[derive(Clone, Debug, PartialEq)]
pub struct PointJob {
    /// Canonical protocol spec (see [`protocols::from_spec`]).
    pub protocol: String,
    /// Built-in mobility source.
    pub mobility: Mobility,
    /// Bundles per flow.
    pub load: u32,
    /// Replications to run.
    pub replications: usize,
    /// Seed of the root RNG every replication stream derives from. The
    /// sweep convention is `base_seed ^ (load << 32)`; the single-run
    /// convention is the raw CLI seed.
    pub root_seed: u64,
    /// Scenario seed handed to the mobility generator (the sweep's
    /// `base_seed`; equal to [`PointJob::root_seed`] for single runs).
    pub trace_seed: u64,
    /// Relay-buffer capacity.
    pub buffer_capacity: usize,
    /// Per-bundle transmission time in seconds (already resolved against
    /// the scenario's regime — jobs carry no "default" indirection).
    pub tx_time_secs: u64,
    /// I.i.d. per-transmission loss probability.
    pub transfer_loss: f64,
    /// Fault-injection plan.
    pub faults: FaultPlan,
    /// Panic-retry budget per replication.
    pub retries: u32,
    /// Hard per-replication deadline in seconds (`None` = none).
    pub point_timeout_secs: Option<u64>,
    /// Attach the invariant auditor in `Record` mode.
    pub audit: bool,
}

/// The supervised result of one [`PointJob`]: per-replication outcomes
/// and attempt counts in replication order, audit violations
/// (`"rep {i}: {violation}"`), and how many successful replications
/// exceeded the watchdog's soft deadline.
#[derive(Clone, Debug, PartialEq)]
pub struct PointOutcome {
    /// One outcome per replication, in replication order.
    pub outcomes: Vec<RunOutcome>,
    /// Attempts made per replication (≥ 1 each).
    pub attempts: Vec<u32>,
    /// Audit violations, formatted `"rep {i}: {violation}"`.
    pub violations: Vec<String>,
    /// Successful replications that exceeded the soft deadline.
    pub slow: usize,
}

impl PointJob {
    /// The job for one (protocol, load) point under a sweep
    /// configuration, using the sweep seeding convention
    /// (`root = base_seed ^ (load << 32)`, trace seed = `base_seed`) —
    /// bit-compatible with the sweep runner and the robustness grid.
    pub fn from_sweep(
        protocol_spec: impl Into<String>,
        mobility: Mobility,
        load: u32,
        cfg: &SweepConfig,
    ) -> PointJob {
        PointJob {
            protocol: protocol_spec.into(),
            mobility,
            load,
            replications: cfg.replications,
            root_seed: cfg.base_seed ^ (load as u64) << 32,
            trace_seed: cfg.base_seed,
            buffer_capacity: cfg.buffer_capacity,
            tx_time_secs: cfg.tx_time_secs.unwrap_or_else(|| mobility.tx_time_secs()),
            transfer_loss: 0.0,
            faults: cfg.faults.clone(),
            retries: cfg.retries,
            point_timeout_secs: cfg.point_timeout_secs,
            audit: cfg.audit,
        }
    }

    /// The watchdog policy this job asks for: the soft deadline, when a
    /// hard deadline is set, is half of it (matching [`SweepConfig`]).
    pub fn watchdog(&self) -> Watchdog {
        let timeout = self.point_timeout_secs.map(std::time::Duration::from_secs);
        Watchdog {
            retries: self.retries,
            timeout,
            soft_timeout: timeout.map(|t| t / 2),
        }
    }

    /// Validate every field that could make the run nonsensical; returns
    /// a description of the first offending field. Service daemons call
    /// this at submission time so bad jobs are rejected at the door.
    pub fn validate(&self) -> Result<(), String> {
        protocols::from_spec(&self.protocol)?;
        if self.load == 0 || self.replications == 0 || self.buffer_capacity == 0 {
            return Err("load, replications and buffer_capacity must be positive".into());
        }
        if self.tx_time_secs == 0 {
            return Err("tx_time_secs must be positive".into());
        }
        if self.point_timeout_secs == Some(0) {
            return Err("point_timeout_secs must be at least 1".into());
        }
        dtn_epidemic::validate_probability("transfer_loss", self.transfer_loss)?;
        self.faults.validate()
    }

    /// Run every replication of this point under watchdog supervision.
    /// Seeding is the canonical convention, so the outcomes are
    /// bit-identical to the in-process runners' for the same fields.
    pub fn run(&self, threads: Threads, cache: &Arc<TraceCache>) -> Result<PointOutcome, String> {
        self.run_hooked(threads, cache, None, "")
    }

    /// [`PointJob::run`] with an optional [`InjectHook`] prepended to
    /// every replication attempt (the supervisor test seam; `key` is the
    /// point label handed to the hook).
    pub fn run_hooked(
        &self,
        threads: Threads,
        cache: &Arc<TraceCache>,
        inject: Option<InjectHook>,
        key: &str,
    ) -> Result<PointOutcome, String> {
        self.validate()?;
        let protocol = protocols::from_spec(&self.protocol)?;
        let sim_config = SimConfig {
            protocol,
            buffer_capacity: self.buffer_capacity,
            tx_time: SimDuration::from_secs(self.tx_time_secs),
            ack_slot_cost: 0.1,
            transfer_loss_prob: self.transfer_loss,
            bundle_bytes: 10_000_000,
            ack_record_bytes: 16,
            faults: self.faults.clone(),
        };
        let root = SimRng::new(self.root_seed);
        let cache = Arc::clone(cache);
        let mobility = self.mobility;
        let (trace_seed, load, audit) = (self.trace_seed, self.load, self.audit);
        let key = key.to_string();
        let results = par_map_supervised(
            threads,
            self.replications,
            self.watchdog(),
            move |rep, attempt| {
                if let Some(hook) = &inject {
                    hook(&key, rep, attempt);
                }
                run_replication(
                    rep,
                    attempt,
                    &root,
                    load,
                    mobility,
                    trace_seed,
                    &sim_config,
                    audit,
                    &cache,
                )
            },
        );
        let mut out = PointOutcome {
            outcomes: Vec::with_capacity(results.len()),
            attempts: Vec::with_capacity(results.len()),
            violations: Vec::new(),
            slow: 0,
        };
        for (rep, result) in results.into_iter().enumerate() {
            out.attempts.push(result.attempts());
            match result {
                JobOutcome::Ok {
                    value: (m, viols),
                    slow,
                    ..
                } => {
                    out.slow += usize::from(slow);
                    for v in viols {
                        out.violations.push(format!("rep {rep}: {v}"));
                    }
                    out.outcomes.push(RunOutcome::Ok(m));
                }
                JobOutcome::Panicked { message, .. } => {
                    out.outcomes.push(RunOutcome::Panicked(message));
                }
                JobOutcome::TimedOut { .. } => {
                    out.outcomes.push(RunOutcome::TimedOut);
                }
            }
        }
        Ok(out)
    }

    /// The job as one canonical JSON line: fixed key order, no
    /// whitespace, floats as IEEE-754 bit patterns. Equal jobs render to
    /// equal strings, so this rendering *is* the job's cache identity
    /// (the service layer hashes it together with the engine version).
    pub fn to_canonical_json(&self) -> String {
        let faults = &self.faults;
        let burst = match &faults.burst {
            None => "null".to_string(),
            Some(b) => format!(
                "{{\"loss_good\":{},\"loss_bad\":{},\"p_good_to_bad\":{},\"p_bad_to_good\":{}}}",
                f64_hex(b.loss_good),
                f64_hex(b.loss_bad),
                f64_hex(b.p_good_to_bad),
                f64_hex(b.p_bad_to_good),
            ),
        };
        let churn = match &faults.churn {
            None => "null".to_string(),
            Some(c) => format!(
                "{{\"mean_up_secs\":{},\"mean_down_secs\":{},\"mode\":\"{}\"}}",
                f64_hex(c.mean_up_secs),
                f64_hex(c.mean_down_secs),
                match c.mode {
                    ChurnMode::Crash => "crash",
                    ChurnMode::DutyCycle => "duty",
                },
            ),
        };
        format!(
            "{{\"protocol\":\"{}\",\"mobility\":\"{}\",\"load\":{},\"replications\":{},\
             \"root_seed\":{},\"trace_seed\":{},\"buffer\":{},\"tx_time_secs\":{},\
             \"transfer_loss\":{},\"faults\":{{\"truncation_prob\":{},\"ack_loss_prob\":{},\
             \"burst\":{},\"churn\":{}}},\"retries\":{},\"point_timeout_secs\":{},\"audit\":{}}}",
            crate::report::json_escape(&self.protocol),
            crate::report::json_escape(&self.mobility.spec()),
            self.load,
            self.replications,
            self.root_seed,
            self.trace_seed,
            self.buffer_capacity,
            self.tx_time_secs,
            f64_hex(self.transfer_loss),
            f64_hex(faults.truncation_prob),
            f64_hex(faults.ack_loss_prob),
            burst,
            churn,
            self.retries,
            self.point_timeout_secs
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".into()),
            self.audit,
        )
    }
}

impl PointOutcome {
    /// The point result as one JSON line — the service wire/cache
    /// format. Outcome tokens are the checkpoint tokens (bit-exact
    /// floats), so [`PointOutcome::from_wire_json`] reproduces the
    /// outcome bit-identically.
    pub fn to_wire_json(&self) -> String {
        let attempts: Vec<String> = self.attempts.iter().map(|a| a.to_string()).collect();
        let mut runs = String::new();
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                runs.push(',');
            }
            runs.push_str(&outcome_to_json(o));
        }
        let mut violations = String::new();
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                violations.push(',');
            }
            violations.push('"');
            violations.push_str(&crate::report::json_escape(v));
            violations.push('"');
        }
        format!(
            "{{\"attempts\":[{}],\"slow\":{},\"runs\":[{}],\"violations\":[{}]}}",
            attempts.join(","),
            self.slow,
            runs,
            violations
        )
    }

    /// Parse a [`PointOutcome::to_wire_json`] line.
    pub fn from_wire_json(s: &str) -> Result<PointOutcome, String> {
        let rest = s
            .trim()
            .strip_prefix("{\"attempts\":[")
            .ok_or_else(|| format!("bad point outcome {s:?}"))?;
        let (attempts, rest) = rest
            .split_once("],\"slow\":")
            .ok_or_else(|| format!("bad point outcome {s:?}"))?;
        let attempts: Vec<u32> = attempts
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .map_err(|e| format!("bad attempt count {t:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let (slow, rest) = rest
            .split_once(",\"runs\":[")
            .ok_or_else(|| format!("bad point outcome {s:?}"))?;
        let slow: usize = slow
            .trim()
            .parse()
            .map_err(|e| format!("bad slow count {slow:?}: {e}"))?;
        let (runs, rest) = rest
            .split_once("],\"violations\":[")
            .ok_or_else(|| format!("bad point outcome {s:?}"))?;
        let violations_body = rest
            .strip_suffix("]}")
            .ok_or_else(|| format!("bad point outcome {s:?}"))?;
        let mut outcomes = Vec::new();
        for tok in split_top_level(runs) {
            outcomes.push(outcome_from_json(tok)?);
        }
        if attempts.len() != outcomes.len() {
            return Err(format!(
                "point outcome has {} attempt counts for {} runs",
                attempts.len(),
                outcomes.len()
            ));
        }
        let violations = parse_string_array(violations_body)?;
        Ok(PointOutcome {
            outcomes,
            attempts,
            violations,
            slow,
        })
    }
}

/// Split a comma-joined sequence of outcome tokens at bracket depth 0.
/// Tokens contain no quoted commas outside panic messages, and panic
/// messages are escaped, so a depth scanner suffices.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut toks = Vec::new();
    let (mut depth, mut start, mut in_str, mut escaped) = (0usize, 0usize, false, false);
    for (i, c) in body.char_indices() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' | '{' => depth += 1,
            ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                toks.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        toks.push(&body[start..]);
    }
    toks
}

/// Parse a JSON array *body* (no surrounding brackets) of escaped
/// strings.
fn parse_string_array(body: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut chars = body.char_indices().peekable();
    while let Some((_, c)) = chars.next() {
        match c {
            '"' => {
                let mut s = String::new();
                loop {
                    let Some((_, c)) = chars.next() else {
                        return Err(format!("unterminated string in {body:?}"));
                    };
                    match c {
                        '"' => break,
                        '\\' => {
                            let Some((_, e)) = chars.next() else {
                                return Err(format!("dangling escape in {body:?}"));
                            };
                            match e {
                                '"' => s.push('"'),
                                '\\' => s.push('\\'),
                                'n' => s.push('\n'),
                                't' => s.push('\t'),
                                'r' => s.push('\r'),
                                'u' => {
                                    let mut code = 0u32;
                                    for _ in 0..4 {
                                        let Some((_, h)) = chars.next() else {
                                            return Err(format!("bad \\u escape in {body:?}"));
                                        };
                                        code = code * 16
                                            + h.to_digit(16).ok_or_else(|| {
                                                format!("bad \\u digit {h:?} in {body:?}")
                                            })?;
                                    }
                                    s.push(
                                        char::from_u32(code)
                                            .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                                    );
                                }
                                other => return Err(format!("bad escape \\{other} in {body:?}")),
                            }
                        }
                        c => s.push(c),
                    }
                }
                out.push(s);
            }
            ',' | ' ' | '\t' | '\n' => {}
            other => return Err(format!("unexpected {other:?} in string array {body:?}")),
        }
    }
    Ok(out)
}

/// One supervised replication: canonical RNG streams on attempt 0, a
/// salted stream per retry, optionally audited through an
/// [`AuditProbe`] in `Record` mode (probes never perturb the run, so
/// audited metrics stay bit-identical).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_replication(
    rep: usize,
    attempt: u32,
    root: &SimRng,
    load: u32,
    mobility: Mobility,
    trace_seed: u64,
    sim_config: &SimConfig,
    audit: bool,
    cache: &TraceCache,
) -> (RunMetrics, Vec<String>) {
    let rep = rep as u64;
    let stream = if attempt == 0 {
        root.clone()
    } else {
        root.derive(RETRY_SALT | u64::from(attempt))
    };
    let mut wl_rng = stream.derive(rep * 2 + 1);
    let sim_rng = stream.derive(rep * 2);
    let trace = mobility.build_cached(trace_seed, rep, cache);
    let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
    if audit {
        let mut probe =
            AuditProbe::new(&workload, sim_config, trace.node_count(), AuditMode::Record);
        let metrics = simulate_probed(&trace, &workload, sim_config, sim_rng, &mut probe);
        (metrics, probe.violation_strings())
    } else {
        (simulate(&trace, &workload, sim_config, sim_rng), Vec::new())
    }
}

/// Construct a fault plan for tests and examples exercising every field.
#[doc(hidden)]
pub fn exercise_fault_plan() -> FaultPlan {
    FaultPlan {
        truncation_prob: 0.25,
        ack_loss_prob: 0.125,
        burst: Some(GilbertElliott {
            loss_good: 0.02,
            loss_bad: 0.6,
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.25,
        }),
        churn: Some(ChurnPlan {
            mean_up_secs: 40_000.0,
            mean_down_secs: 10_000.0,
            mode: ChurnMode::Crash,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{point_sim_config, run_point_raw_cached};
    use dtn_epidemic::protocols;

    #[test]
    fn job_run_matches_the_sweep_runner_bit_exactly() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 3,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let cache = TraceCache::new();
        let direct = run_point_raw_cached(
            &protocols::immunity_epidemic(),
            Mobility::Interval(2000),
            5,
            &cfg,
            &cache,
        );
        let job = PointJob::from_sweep("immunity", Mobility::Interval(2000), 5, &cfg);
        let shared = Arc::new(TraceCache::new());
        let out = job.run(Threads::Sequential, &shared).unwrap();
        assert_eq!(out.outcomes.len(), direct.len());
        for (o, d) in out.outcomes.iter().zip(&direct) {
            assert_eq!(o, &RunOutcome::Ok(*d), "job diverged from runner");
        }
        assert_eq!(out.attempts, vec![1, 1, 1]);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn canonical_json_is_stable_and_distinguishes_jobs() {
        let cfg = SweepConfig::default();
        let a = PointJob::from_sweep("pure", Mobility::Trace, 10, &cfg);
        let b = PointJob::from_sweep("pure", Mobility::Trace, 10, &cfg);
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
        let c = PointJob::from_sweep("pure", Mobility::Trace, 15, &cfg);
        assert_ne!(a.to_canonical_json(), c.to_canonical_json());
        let mut d = a.clone();
        d.faults = exercise_fault_plan();
        assert_ne!(a.to_canonical_json(), d.to_canonical_json());
        // Spec strings that parse to the same protocol but differ
        // textually are *different* cache identities by design —
        // canonicalization happens at the spec level.
        let e = PointJob {
            protocol: "pq=1,1".into(),
            ..a.clone()
        };
        assert_ne!(a.to_canonical_json(), e.to_canonical_json());
    }

    #[test]
    fn point_outcome_wire_round_trips_bit_exactly() {
        let cfg = SweepConfig {
            loads: vec![5],
            replications: 2,
            threads: Threads::Sequential,
            audit: true,
            ..SweepConfig::default()
        };
        let job = PointJob::from_sweep("cumulative", Mobility::Interval(2000), 5, &cfg);
        let cache = Arc::new(TraceCache::new());
        let out = job.run(Threads::Sequential, &cache).unwrap();
        let wire = out.to_wire_json();
        let back = PointOutcome::from_wire_json(&wire).unwrap();
        assert_eq!(back, out);
        // Mixed outcomes (panic + timeout + violations with specials).
        let mixed = PointOutcome {
            outcomes: vec![
                out.outcomes[0].clone(),
                RunOutcome::Panicked("boom".into()),
                RunOutcome::TimedOut,
            ],
            attempts: vec![1, 3, 2],
            violations: vec!["rep 0: a \"quoted\"\nviolation".into()],
            slow: 1,
        };
        let back = PointOutcome::from_wire_json(&mixed.to_wire_json()).unwrap();
        assert_eq!(back, mixed);
    }

    #[test]
    fn validation_rejects_bad_jobs() {
        let cfg = SweepConfig::default();
        let good = PointJob::from_sweep("pure", Mobility::Trace, 10, &cfg);
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.protocol = "gossip".into();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.load = 0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.transfer_loss = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.faults.truncation_prob = -0.1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn job_sim_config_matches_point_sim_config() {
        // The job's inline SimConfig must track the runner's constants;
        // this pins them against silent drift.
        let cfg = SweepConfig::default();
        let runner_cfg =
            point_sim_config(&protocols::pure_epidemic(), Mobility::Interval(400), &cfg);
        assert_eq!(runner_cfg.ack_slot_cost, 0.1);
        assert_eq!(runner_cfg.transfer_loss_prob, 0.0);
        assert_eq!(runner_cfg.bundle_bytes, 10_000_000);
        assert_eq!(runner_cfg.ack_record_bytes, 16);
        let job = PointJob::from_sweep("pure", Mobility::Interval(400), 5, &cfg);
        assert_eq!(job.tx_time_secs, 10, "interval regime resolved");
        assert_eq!(job.transfer_loss, 0.0);
    }
}
