//! Ablation studies: one policy axis varied at a time.
//!
//! Section IV of the paper names the parameter grids it explored — P and
//! Q in {0.1, 0.5, 1}, fixed TTLs of 50–200 s plus the 300 s evaluation
//! default — and DESIGN.md records the reproduction decisions this
//! repository had to make (the full-buffer rule, the EC threshold, the
//! immunity-record buffer cost). Each driver here isolates one of those
//! axes and reports the paper's metrics across it, so every choice's
//! sensitivity is measurable rather than asserted. `repro ablations`
//! regenerates all of them.

use crate::output::TextTable;
use crate::runner::{run_sweep, SweepConfig, SweepResult};
use crate::scenarios::Mobility;
use dtn_epidemic::{protocols, EvictionPolicy, LifetimePolicy, ProtocolConfig};
use dtn_mobility::TraceSummary;
use dtn_sim::SimDuration;

fn metric_row(label: String, sweep: &SweepResult) -> Vec<String> {
    let pct = |x: f64| format!("{:.1}", 100.0 * x);
    let delay = {
        let delays: Vec<f64> = sweep
            .points
            .iter()
            .filter(|p| p.delay_s.n > 0)
            .map(|p| p.delay_s.mean)
            .collect();
        if delays.is_empty() {
            "-".to_string()
        } else {
            format!("{:.0}", delays.iter().sum::<f64>() / delays.len() as f64)
        }
    };
    vec![
        label,
        pct(sweep.grand_mean(|p| p.delivery_ratio.mean)),
        delay,
        pct(sweep.grand_mean(|p| p.buffer_occupancy.mean)),
        pct(sweep.grand_mean(|p| p.duplication_rate.mean)),
        format!("{:.0}", sweep.grand_mean(|p| p.transmissions.mean)),
    ]
}

fn metric_headers(axis: &str) -> Vec<String> {
    vec![
        axis.into(),
        "Delivery %".into(),
        "Delay s".into(),
        "Buffer %".into(),
        "Duplication %".into(),
        "Transmissions".into(),
    ]
}

fn sweep_rows(
    variants: Vec<(String, ProtocolConfig)>,
    mobility: Mobility,
    cfg: &SweepConfig,
) -> Vec<Vec<String>> {
    variants
        .into_iter()
        .map(|(label, protocol)| metric_row(label, &run_sweep(&protocol, mobility, cfg)))
        .collect()
}

/// Fixed-TTL sweep (Section IV's 50/100/150/200 grid plus the 300 s
/// default) on the trace.
pub fn ttl_sweep_table(cfg: &SweepConfig) -> TextTable {
    let variants = [50u64, 100, 150, 200, 300]
        .into_iter()
        .map(|ttl| {
            (
                format!("TTL = {ttl} s"),
                protocols::ttl_epidemic(SimDuration::from_secs(ttl)),
            )
        })
        .collect();
    TextTable {
        id: "ablation_ttl",
        title: "Fixed-TTL sensitivity on the trace (Section IV grid)".into(),
        headers: metric_headers("TTL"),
        rows: sweep_rows(variants, Mobility::Trace, cfg),
    }
}

/// P–Q grid (Section IV: 0.1, 0.5, 1) on the trace.
pub fn pq_sweep_table(cfg: &SweepConfig) -> TextTable {
    let grid = [0.1, 0.5, 1.0];
    let variants = grid
        .into_iter()
        .flat_map(|p| {
            grid.into_iter()
                .map(move |q| (format!("P={p}, Q={q}"), protocols::pq_epidemic(p, q)))
        })
        .collect();
    TextTable {
        id: "ablation_pq",
        title: "P-Q transmission-probability grid on the trace".into(),
        headers: metric_headers("P, Q"),
        rows: sweep_rows(variants, Mobility::Trace, cfg),
    }
}

/// Full-buffer rule ablation — the reproduction decision DESIGN.md
/// documents (the paper never states the rule for non-EC protocols).
pub fn eviction_table(cfg: &SweepConfig) -> TextTable {
    let variants = [
        ("reject new", EvictionPolicy::RejectNew),
        ("drop oldest", EvictionPolicy::DropOldest),
        ("highest EC", EvictionPolicy::HighestEc),
        (
            "highest EC (min 8)",
            EvictionPolicy::HighestEcMin { min_ec: 8 },
        ),
    ]
    .into_iter()
    .map(|(label, eviction)| {
        let mut protocol = protocols::pure_epidemic();
        protocol.eviction = eviction;
        (label.to_string(), protocol)
    })
    .collect();
    TextTable {
        id: "ablation_eviction",
        title: "Full-buffer rule under pure epidemic on the trace".into(),
        headers: metric_headers("Eviction"),
        rows: sweep_rows(variants, Mobility::Trace, cfg),
    }
}

/// EC+TTL threshold sensitivity (Algorithm 2 fixes 8) on the RWP model.
pub fn ec_threshold_table(cfg: &SweepConfig) -> TextTable {
    let variants = [2u32, 4, 8, 16, 32]
        .into_iter()
        .map(|threshold| {
            let mut protocol = protocols::ec_ttl_epidemic();
            protocol.lifetime = LifetimePolicy::EcTtl {
                threshold,
                base: SimDuration::from_secs(300),
                decay: SimDuration::from_secs(100),
            };
            protocol.eviction = EvictionPolicy::HighestEcMin { min_ec: threshold };
            (format!("threshold = {threshold}"), protocol)
        })
        .collect();
    TextTable {
        id: "ablation_ec_threshold",
        title: "EC+TTL threshold sensitivity under RWP".into(),
        headers: metric_headers("EC threshold"),
        rows: sweep_rows(variants, Mobility::Rwp, cfg),
    }
}

/// Dynamic-TTL multiplier sensitivity (Algorithm 1 fixes 2.0) on the
/// trace.
pub fn dynttl_multiplier_table(cfg: &SweepConfig) -> TextTable {
    let variants = [0.5, 1.0, 2.0, 4.0, 8.0]
        .into_iter()
        .map(|multiplier| {
            let mut protocol = protocols::dynamic_ttl_epidemic();
            protocol.lifetime = LifetimePolicy::DynamicTtl { multiplier };
            (format!("multiplier = {multiplier}"), protocol)
        })
        .collect();
    TextTable {
        id: "ablation_dynttl",
        title: "Dynamic-TTL interval-multiplier sensitivity on the trace".into(),
        headers: metric_headers("Multiplier"),
        rows: sweep_rows(variants, Mobility::Trace, cfg),
    }
}

/// Mobility-model comparison: the statistical anatomy of each contact
/// source plus one protocol's outcome on it — including the classic
/// geometric RWP the paper avoids (its reference \[19\]'s pathologies).
pub fn mobility_table(cfg: &SweepConfig) -> TextTable {
    let mut rows = Vec::new();
    for mobility in [
        Mobility::Trace,
        Mobility::Rwp,
        Mobility::GeometricRwp,
        Mobility::Interval(400),
        Mobility::Interval(2000),
    ] {
        let trace = mobility.build(cfg.base_seed, 0);
        let summary = TraceSummary::of(&trace);
        let sweep = run_sweep(&protocols::immunity_epidemic(), mobility, cfg);
        rows.push(vec![
            mobility.label(),
            format!("{}", summary.contacts),
            format!("{:.0}", summary.mean_duration_s),
            format!("{:.0}", summary.mean_pair_gap_s),
            format!("{:.0}", 100.0 * summary.pair_gaps_over_1h),
            summary
                .gap_tail_exponent
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", 100.0 * sweep.grand_mean(|p| p.delivery_ratio.mean)),
        ]);
    }
    TextTable {
        id: "mobility_models",
        title: "Contact anatomy of every mobility source (+ immunity-protocol delivery)".into(),
        headers: vec![
            "Scenario".into(),
            "Contacts".into(),
            "Mean dur s".into(),
            "Mean gap s".into(),
            "Gaps>1h %".into(),
            "Tail α".into(),
            "Delivery %".into(),
        ],
        rows,
    }
}

/// Transfer-loss sensitivity: epidemic redundancy vs lossy links (the
/// paper assumes loss-free links; this probes how much that assumption
/// carries).
pub fn loss_table(cfg: &SweepConfig) -> TextTable {
    let mut rows = Vec::new();
    for loss in [0.0, 0.1, 0.25, 0.5, 0.75] {
        let mut runs = Vec::new();
        for rep in 0..cfg.replications as u64 {
            let trace = Mobility::Trace.build(cfg.base_seed, rep);
            let root = dtn_sim::SimRng::new(cfg.base_seed ^ 0x1055);
            let mut wl_rng = root.derive(rep * 2 + 1);
            let workload =
                dtn_epidemic::Workload::single_random_flow(25, trace.node_count(), &mut wl_rng);
            let mut config = dtn_epidemic::SimConfig::paper_defaults(protocols::pure_epidemic());
            config.transfer_loss_prob = loss;
            runs.push(dtn_epidemic::simulate(
                &trace,
                &workload,
                &config,
                root.derive(rep * 2),
            ));
        }
        let point = crate::runner::aggregate_point(25, &runs);
        rows.push(vec![
            format!("loss = {loss}"),
            format!("{:.1}", 100.0 * point.delivery_ratio.mean),
            format!("{:.0}", point.transmissions.mean),
        ]);
    }
    TextTable {
        id: "ablation_loss",
        title: "Transfer-loss sensitivity of pure epidemic on the trace (load 25)".into(),
        headers: vec![
            "Loss probability".into(),
            "Delivery %".into(),
            "Transmissions".into(),
        ],
        rows,
    }
}

/// Ack-propagation ablation: epidemic vs destination-only dissemination
/// of immunity knowledge — the two readings the paper's §II-B and §III
/// give (DESIGN.md §4).
pub fn ack_propagation_table(cfg: &SweepConfig) -> TextTable {
    let mut rows = Vec::new();
    for (scheme_name, base) in [
        ("per-bundle", protocols::immunity_epidemic()),
        ("cumulative", protocols::cumulative_immunity_epidemic()),
    ] {
        for (prop_name, propagation) in [
            ("epidemic", dtn_epidemic::AckPropagation::Epidemic),
            (
                "destination-only",
                dtn_epidemic::AckPropagation::DestinationOnly,
            ),
        ] {
            let mut protocol = base.clone();
            protocol.ack_propagation = propagation;
            let sweep = run_sweep(&protocol, Mobility::Trace, cfg);
            rows.push(vec![
                format!("{scheme_name} / {prop_name}"),
                format!("{:.1}", 100.0 * sweep.grand_mean(|p| p.delivery_ratio.mean)),
                format!(
                    "{:.1}",
                    100.0 * sweep.grand_mean(|p| p.buffer_occupancy.mean)
                ),
                format!("{:.0}", sweep.grand_mean(|p| p.ack_records.mean)),
            ]);
        }
    }
    TextTable {
        id: "ablation_ack_propagation",
        title: "Immunity-table dissemination mode on the trace".into(),
        headers: vec![
            "Scheme / propagation".into(),
            "Delivery %".into(),
            "Buffer %".into(),
            "Ack records".into(),
        ],
        rows,
    }
}

/// Steady-state traffic: protocols under Poisson flow arrivals instead of
/// the paper's everything-at-t-0 burst — the operating regime a deployed
/// DTN actually sees.
pub fn steady_state_table(cfg: &SweepConfig) -> TextTable {
    let mut rows = Vec::new();
    for (name, protocol) in [
        ("Pure epidemic", protocols::pure_epidemic()),
        (
            "Epidemic with dynamic TTL",
            protocols::dynamic_ttl_epidemic(),
        ),
        ("Epidemic with EC+TTL", protocols::ec_ttl_epidemic()),
        ("Epidemic with immunity", protocols::immunity_epidemic()),
        (
            "Epidemic with cumulative immunity",
            protocols::cumulative_immunity_epidemic(),
        ),
    ] {
        let mut runs = Vec::new();
        for rep in 0..cfg.replications as u64 {
            let trace = Mobility::Trace.build(cfg.base_seed, rep);
            let root = dtn_sim::SimRng::new(cfg.base_seed ^ 0x57EA);
            let mut wl_rng = root.derive(rep * 2 + 1);
            // One 4-bundle flow arriving every ~30 000 s on average over
            // the first 80 % of the horizon.
            let workload = dtn_epidemic::Workload::poisson_flows(
                1.0 / 30_000.0,
                dtn_sim::SimTime::from_secs(420_000),
                4,
                trace.node_count(),
                &mut wl_rng,
            );
            let config = dtn_epidemic::SimConfig::paper_defaults(protocol.clone());
            runs.push(dtn_epidemic::simulate(
                &trace,
                &workload,
                &config,
                root.derive(rep * 2),
            ));
        }
        let point = crate::runner::aggregate_point(0, &runs);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", 100.0 * point.delivery_ratio.mean),
            format!("{:.1}", 100.0 * point.buffer_occupancy.mean),
            format!("{:.1}", 100.0 * point.duplication_rate.mean),
            format!("{:.0}", point.ack_records.mean),
        ]);
    }
    TextTable {
        id: "steady_state",
        title: "Steady-state Poisson traffic on the trace (multi-flow extension)".into(),
        headers: vec![
            "Protocol".into(),
            "Delivery %".into(),
            "Buffer %".into(),
            "Duplication %".into(),
            "Ack records".into(),
        ],
        rows,
    }
}

/// Every ablation table.
pub fn all_ablations(cfg: &SweepConfig) -> Vec<TextTable> {
    vec![
        ttl_sweep_table(cfg),
        pq_sweep_table(cfg),
        eviction_table(cfg),
        ec_threshold_table(cfg),
        dynttl_multiplier_table(cfg),
        loss_table(cfg),
        ack_propagation_table(cfg),
        steady_state_table(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::Threads;

    fn smoke() -> SweepConfig {
        SweepConfig {
            loads: vec![20],
            replications: 2,
            threads: Threads::Auto,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn every_ablation_produces_well_formed_rows() {
        for table in all_ablations(&smoke()) {
            assert!(!table.rows.is_empty(), "{} empty", table.id);
            for row in &table.rows {
                assert_eq!(row.len(), table.headers.len(), "{} ragged", table.id);
            }
        }
    }

    #[test]
    fn ttl_sweep_longer_ttl_not_worse() {
        // Longer constant TTLs keep copies longer; delivery must be
        // non-decreasing (modulo noise) from 50 s to 300 s.
        let t = ttl_sweep_table(&smoke());
        let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(
            last >= first - 5.0,
            "TTL 300 delivery ({last}) should not trail TTL 50 ({first})"
        );
    }

    #[test]
    fn pq_grid_has_nine_cells() {
        assert_eq!(pq_sweep_table(&smoke()).rows.len(), 9);
    }

    #[test]
    fn loss_table_shows_monotone_degradation() {
        let t = loss_table(&smoke());
        let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(last <= first, "75% loss should not beat loss-free");
    }

    #[test]
    fn ack_propagation_table_has_four_rows() {
        let t = ack_propagation_table(&smoke());
        assert_eq!(t.rows.len(), 4);
        // Destination-only sends fewer ack records than epidemic for the
        // same scheme.
        let epi: f64 = t.rows[0][3].parse().unwrap();
        let dst: f64 = t.rows[1][3].parse().unwrap();
        assert!(dst <= epi, "dest-only {dst} vs epidemic {epi}");
    }

    #[test]
    fn steady_state_table_runs_all_protocols() {
        let t = steady_state_table(&smoke());
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let delivery: f64 = row[1].parse().unwrap();
            assert!((0.0..=100.0).contains(&delivery));
        }
    }

    #[test]
    fn mobility_table_covers_all_sources() {
        let t = mobility_table(&smoke());
        assert_eq!(t.rows.len(), 5);
        let labels: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(labels.contains(&"geom-rwp"));
    }
}
