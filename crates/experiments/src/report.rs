//! The unified run/sweep report.
//!
//! Before this module the pipeline's outputs were scattered: `bench_sweep`
//! hand-formatted its own JSON, figure drivers wrote bare CSV, and
//! `dtnsim` printed ad-hoc text. [`SweepReport`] unifies them: one
//! structured aggregate holding the workload description, wall-clock and
//! per-sweep timings, trace-cache hit/miss counters, peak RSS (Linux),
//! per-point metric summaries with log-bucketed delay histograms, and any
//! probe-derived distribution the caller attaches. Its [`to_json`]
//! rendering keeps every key the committed `BENCH_sweep.json` baseline
//! uses (`contacts_per_sec`, `trace_cache_hits`, …) so existing tooling —
//! including the CI probe-overhead guard — keeps parsing it.
//!
//! [`RunManifest`] is the companion header for `dtnsim --trace` captures:
//! one JSON line recording the configuration, seed, git revision and
//! wall-clock so a JSONL event stream is self-describing.
//!
//! [`to_json`]: SweepReport::to_json

use dtn_epidemic::RunMetrics;
use dtn_sim::Histogram;
use std::fmt::Write as _;
use std::path::Path;

/// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`);
/// `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current resident set size in bytes (`VmRSS` from `/proc/self/status`);
/// `None` off Linux. Unlike [`peak_rss_bytes`] this goes *down* when
/// memory is released, which is what a live budget guard needs.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

fn proc_status_bytes(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Best-effort git revision of the working tree: walks up from the
/// current directory to the first `.git`, reads `HEAD` and follows one
/// level of ref indirection. `None` outside a repository.
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            let rev = match head.strip_prefix("ref: ") {
                Some(refname) => std::fs::read_to_string(git.join(refname.trim()))
                    .ok()?
                    .trim()
                    .to_string(),
                None => head.to_string(),
            };
            return (!rev.is_empty()).then_some(rev);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Seconds since the Unix epoch (wall clock, for manifests).
pub fn unix_time_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON token (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Render an optional quantity as a JSON token.
fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

/// The self-describing first line of a `dtnsim --trace` capture: run
/// configuration, seeds, git revision and wall-clock. Parsers looking for
/// events skip it — it carries no `"ev"` key.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// The producing tool (e.g. `"dtnsim"`).
    pub tool: String,
    /// Protocol display name.
    pub protocol: String,
    /// Mobility label (scenario name or trace-file path).
    pub mobility: String,
    /// The load k (bundles per flow).
    pub load: u32,
    /// Number of replications in the capture.
    pub replications: usize,
    /// Root seed every replication derives from.
    pub seed: u64,
    /// Relay-buffer capacity.
    pub buffer_capacity: usize,
    /// Per-bundle transmission time in seconds.
    pub tx_time_secs: u64,
    /// Git revision of the producing tree, when discoverable.
    pub git_rev: Option<String>,
    /// Wall-clock seconds since the Unix epoch at capture time.
    pub unix_time_secs: u64,
}

impl RunManifest {
    /// The manifest as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"manifest\":\"{}\",\"protocol\":\"{}\",\"mobility\":\"{}\",\
             \"load\":{},\"replications\":{},\"seed\":{},\"buffer\":{},\
             \"tx_time_secs\":{},\"git_rev\":{},\"unix_time\":{}}}",
            json_escape(&self.tool),
            json_escape(&self.protocol),
            json_escape(&self.mobility),
            self.load,
            self.replications,
            self.seed,
            self.buffer_capacity,
            self.tx_time_secs,
            self.git_rev
                .as_deref()
                .map(|r| format!("\"{}\"", json_escape(r)))
                .unwrap_or_else(|| "null".into()),
            self.unix_time_secs,
        )
    }
}

/// Wall-clock timing of one sweep (or any labelled phase of a run).
#[derive(Clone, Debug)]
pub struct SweepTiming {
    /// What was timed (e.g. `"Pure epidemic @ trace"`).
    pub label: String,
    /// Elapsed wall-clock seconds.
    pub wall_secs: f64,
}

/// Wall-clock phase breakdown of one point's computation: where the
/// time went between mobility preparation, the protocol loop, and
/// report assembly. Purely observational — masked to `null` by
/// [`SweepReport::to_canonical_json`], so local runs (which record it)
/// and daemon-assembled reports (which do not) stay byte-identical
/// under the canonical rendering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointTiming {
    /// Seconds spent obtaining mobility input (trace-cache lookup or
    /// synthetic-trace generation) before the protocol loop ran.
    pub trace_secs: f64,
    /// Seconds spent in the protocol simulation loop across all
    /// replications of the point.
    pub sim_secs: f64,
    /// Seconds spent folding raw metrics into the report aggregates.
    pub assemble_secs: f64,
}

/// Aggregated results at one (protocol, mobility, load) point.
#[derive(Clone, Debug)]
pub struct PointReport {
    /// Protocol display name.
    pub protocol: String,
    /// Mobility label.
    pub mobility: String,
    /// The load k.
    pub load: u32,
    /// Replications aggregated.
    pub runs: usize,
    /// Replications that missed the horizon (no completion).
    pub failures: usize,
    /// Replications that panicked and were isolated (checked runs only).
    pub panics: usize,
    /// Replications abandoned at the watchdog's hard deadline
    /// (supervised runs only; each also counts as a failure).
    pub timed_out: usize,
    /// Extra attempts beyond each replication's first, summed across the
    /// point (supervised runs only; 0 when nothing was retried).
    pub retries: u64,
    /// Contacts skipped because a churned endpoint was down (summed).
    pub contacts_skipped: u64,
    /// Contact sessions truncated by fault injection (summed).
    pub sessions_truncated: u64,
    /// Immunity-table transfers lost to control-plane faults (summed).
    pub ack_losses: u64,
    /// Crash-churn cold restarts that wiped node state (summed).
    pub churn_wipes: u64,
    /// Summary-digest bytes sent during anti-entropy (summed; a subset
    /// of control bytes — exact vectors and Bloom digests both count).
    pub signaling_bytes: u64,
    /// Transmissions triggered by Bloom false positives (summed; always
    /// 0 for exact-summary protocols).
    pub false_positive_transmissions: u64,
    /// Mean delivery ratio across replications.
    pub delivery_ratio_mean: f64,
    /// Mean time-weighted buffer occupancy.
    pub buffer_occupancy_mean: f64,
    /// Mean duplication rate.
    pub duplication_rate_mean: f64,
    /// Log-bucketed delivery-delay histogram (seconds; successful
    /// replications only — the paper records no delay for failed runs).
    pub delay_hist: Histogram,
    /// Wall-clock phase breakdown, when the driver recorded one
    /// (volatile; canonical rendering masks it to `null`).
    pub timing: Option<PointTiming>,
}

/// A named distribution attached to the report (probe-derived:
/// inter-contact gaps, bundles per contact, …).
#[derive(Clone, Debug)]
pub struct NamedHistogram {
    /// Metric name (used as the JSON key).
    pub name: String,
    /// The distribution.
    pub hist: Histogram,
}

/// One worker shard's contribution to a federated sweep, as reported by
/// the `dtnfedd` coordinator's stats document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Worker daemon address.
    pub addr: String,
    /// Health state at report time (`alive`/`suspect`/`dead`/`draining`).
    pub state: String,
    /// Points whose result was served through this shard.
    pub completed: u64,
}

/// What the federation did to complete a sweep routed through a
/// `dtnfedd` coordinator: shard attribution plus the failover/hedge
/// counters. Absent (`None` on [`SweepReport::federation`]) for local
/// and single-daemon runs, and **masked out** by
/// [`SweepReport::to_canonical_json`] — a federated sweep must stay
/// byte-identical in canonical form to a single-daemon run of the same
/// work, whatever healing the fabric had to do.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Registered worker shards.
    pub workers: u64,
    /// Shards routable (alive or suspect) at report time.
    pub routable_workers: u64,
    /// Whether the coordinator was in degraded (quorum-lost) mode.
    pub degraded: bool,
    /// Points moved off a dead or unreachable shard.
    pub failovers: u64,
    /// Straggler points dispatched to a second shard.
    pub hedges: u64,
    /// Job re-submissions of any kind (failover + hedge + error retry).
    pub redispatches: u64,
    /// Points the degraded coordinator reported unreachable (0 on a
    /// completed sweep; > 0 only in partial-sweep mode).
    pub missing_points: u64,
    /// Per-shard attribution.
    pub shards: Vec<ShardStat>,
}

/// The unified report: one structured aggregate for everything a run or
/// sweep produces. See the module docs for the rationale; the JSON layout
/// is a superset of the legacy `BENCH_sweep.json` schema.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Human description of the workload.
    pub workload: String,
    /// Total wall-clock seconds (set by [`SweepReport::finish`]).
    pub wall_secs: f64,
    /// Individual `simulate` invocations aggregated.
    pub simulation_runs: u64,
    /// Complete protocol sweeps aggregated.
    pub sweeps: u64,
    /// Total contact sessions processed.
    pub contacts_processed: u64,
    /// Sweep count frozen at [`SweepReport::finish`] — the numerator of
    /// [`sweeps_per_sec`](SweepReport::sweeps_per_sec) when stanzas are
    /// recorded after the timed window closes.
    pub timed_sweeps: Option<u64>,
    /// Contact count frozen at [`SweepReport::finish`] — the numerator of
    /// [`contacts_per_sec`](SweepReport::contacts_per_sec).
    pub timed_contacts: Option<u64>,
    /// Total bundle transmissions.
    pub bundle_transmissions: u64,
    /// Trace-cache hits across the run.
    pub trace_cache_hits: u64,
    /// Trace-cache misses across the run.
    pub trace_cache_misses: u64,
    /// Peak resident set size in bytes (Linux; `None` elsewhere).
    pub peak_rss_bytes: Option<u64>,
    /// Times the memory-budget guard shed the trace cache and degraded
    /// to cache-cold operation (0 when no budget was set or never hit).
    pub memory_degradations: u64,
    /// Invariant violations reported by audited runs, capped at
    /// [`SweepReport::MAX_VIOLATIONS`] entries; [`total_violations`]
    /// keeps the true count.
    ///
    /// [`total_violations`]: SweepReport::total_violations
    pub violations: Vec<String>,
    /// Every audit violation seen, including those beyond the retention
    /// cap.
    pub total_violations: u64,
    /// Per-sweep wall timings.
    pub timings: Vec<SweepTiming>,
    /// Per-point aggregates with delay histograms.
    pub points: Vec<PointReport>,
    /// Extra probe-derived distributions.
    pub histograms: Vec<NamedHistogram>,
    /// Federation attribution when the sweep ran through a `dtnfedd`
    /// coordinator (`None` for local and single-daemon runs; masked by
    /// the canonical rendering).
    pub federation: Option<FederationStats>,
}

impl SweepReport {
    /// An empty report for the given workload description.
    pub fn new(workload: impl Into<String>) -> SweepReport {
        SweepReport {
            workload: workload.into(),
            ..SweepReport::default()
        }
    }

    /// Fold one point's raw replication metrics into the report: global
    /// counters plus a [`PointReport`] with its delay histogram.
    pub fn record_point(&mut self, protocol: &str, mobility: &str, load: u32, runs: &[RunMetrics]) {
        let mut delay_hist = Histogram::new();
        let mut delivery = 0.0;
        let mut occupancy = 0.0;
        let mut duplication = 0.0;
        let mut failures = 0usize;
        let mut contacts_skipped = 0u64;
        let mut sessions_truncated = 0u64;
        let mut ack_losses = 0u64;
        let mut churn_wipes = 0u64;
        let mut signaling_bytes = 0u64;
        let mut false_positive_transmissions = 0u64;
        for m in runs {
            self.simulation_runs += 1;
            self.contacts_processed += m.contacts_processed;
            self.bundle_transmissions += m.bundle_transmissions;
            delivery += m.delivery_ratio;
            occupancy += m.avg_buffer_occupancy;
            duplication += m.avg_duplication_rate;
            contacts_skipped += m.contacts_skipped;
            sessions_truncated += m.sessions_truncated;
            ack_losses += m.ack_losses;
            churn_wipes += m.churn_wipes;
            signaling_bytes += m.signaling_bytes;
            false_positive_transmissions += m.false_positive_transmissions;
            match m.delay_secs() {
                Some(d) => delay_hist.record(d),
                None => failures += 1,
            }
        }
        let n = runs.len().max(1) as f64;
        self.points.push(PointReport {
            protocol: protocol.to_string(),
            mobility: mobility.to_string(),
            load,
            runs: runs.len(),
            failures,
            panics: 0,
            timed_out: 0,
            retries: 0,
            contacts_skipped,
            sessions_truncated,
            ack_losses,
            churn_wipes,
            signaling_bytes,
            false_positive_transmissions,
            delivery_ratio_mean: delivery / n,
            buffer_occupancy_mean: occupancy / n,
            duplication_rate_mean: duplication / n,
            delay_hist,
            timing: None,
        });
    }

    /// Attach a wall-clock phase breakdown to the most recently recorded
    /// point (no-op before the first `record_point`).
    pub fn record_point_timing(&mut self, timing: PointTiming) {
        if let Some(point) = self.points.last_mut() {
            point.timing = Some(timing);
        }
    }

    /// [`record_point`](Self::record_point) over panic-isolated outcomes:
    /// the metric aggregates cover the successful replications, while
    /// each panic counts as one panicked **and** one failed replication.
    pub fn record_point_checked(
        &mut self,
        protocol: &str,
        mobility: &str,
        load: u32,
        results: &[Result<RunMetrics, String>],
    ) {
        let ok: Vec<RunMetrics> = results
            .iter()
            .filter_map(|r| r.as_ref().ok().copied())
            .collect();
        let panics = results.len() - ok.len();
        self.record_point(protocol, mobility, load, &ok);
        let point = self.points.last_mut().expect("record_point pushed a point");
        point.panics = panics;
        point.failures += panics;
    }

    /// Retention cap for [`SweepReport::violations`]. A pathological
    /// audited run could otherwise grow the report without bound.
    pub const MAX_VIOLATIONS: usize = 256;

    /// Record one audit violation, keeping at most
    /// [`Self::MAX_VIOLATIONS`] entries while counting every one.
    pub fn record_violation(&mut self, violation: impl Into<String>) {
        self.total_violations += 1;
        if self.violations.len() < Self::MAX_VIOLATIONS {
            self.violations.push(violation.into());
        }
    }

    /// Count one finished sweep and record its wall timing.
    pub fn record_sweep(&mut self, label: impl Into<String>, wall_secs: f64) {
        self.sweeps += 1;
        self.timings.push(SweepTiming {
            label: label.into(),
            wall_secs,
        });
    }

    /// Record trace-cache counters (pass `cache.stats()`).
    pub fn record_cache(&mut self, (hits, misses): (u64, u64)) {
        self.trace_cache_hits = hits;
        self.trace_cache_misses = misses;
    }

    /// Attach a named probe-derived distribution.
    pub fn attach_histogram(&mut self, name: impl Into<String>, hist: Histogram) {
        self.histograms.push(NamedHistogram {
            name: name.into(),
            hist,
        });
    }

    /// Close the report: total wall-clock and peak RSS. The sweep and
    /// contact counts as of this call are frozen as the throughput
    /// numerators, so supplementary stanzas recorded *after* `finish`
    /// (e.g. `bench_sweep`'s bloom-family grid) enrich the report without
    /// skewing the headline rates out of comparability with history.
    pub fn finish(&mut self, wall_secs: f64) {
        self.wall_secs = wall_secs;
        self.timed_sweeps = Some(self.sweeps);
        self.timed_contacts = Some(self.contacts_processed);
        self.peak_rss_bytes = peak_rss_bytes();
    }

    /// Sweeps per wall-clock second.
    pub fn sweeps_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.timed_sweeps.unwrap_or(self.sweeps) as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Contact sessions per wall-clock second — the repo's headline
    /// throughput number.
    pub fn contacts_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.timed_contacts.unwrap_or(self.contacts_processed) as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Render the report as JSON. Top-level keys are a superset of the
    /// legacy `BENCH_sweep.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"workload\": \"{}\",", json_escape(&self.workload));
        let _ = writeln!(out, "  \"wall_secs\": {:.3},", self.wall_secs);
        let _ = writeln!(out, "  \"simulation_runs\": {},", self.simulation_runs);
        let _ = writeln!(out, "  \"sweeps\": {},", self.sweeps);
        let _ = writeln!(out, "  \"sweeps_per_sec\": {:.3},", self.sweeps_per_sec());
        let _ = writeln!(
            out,
            "  \"contacts_processed\": {},",
            self.contacts_processed
        );
        let _ = writeln!(
            out,
            "  \"contacts_per_sec\": {:.0},",
            self.contacts_per_sec()
        );
        let _ = writeln!(
            out,
            "  \"bundle_transmissions\": {},",
            self.bundle_transmissions
        );
        let _ = writeln!(out, "  \"trace_cache_hits\": {},", self.trace_cache_hits);
        let _ = writeln!(
            out,
            "  \"trace_cache_misses\": {},",
            self.trace_cache_misses
        );
        let _ = writeln!(
            out,
            "  \"peak_rss_bytes\": {},",
            json_opt_u64(self.peak_rss_bytes)
        );
        let _ = writeln!(
            out,
            "  \"memory_degradations\": {},",
            self.memory_degradations
        );
        let _ = writeln!(
            out,
            "  \"federation\": {},",
            federation_json(self.federation.as_ref())
        );
        let _ = writeln!(out, "  \"total_violations\": {},", self.total_violations);
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\"", json_escape(v));
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"sweep_timings\": [");
        for (i, t) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"label\": \"{}\", \"wall_secs\": {:.3}}}",
                json_escape(&t.label),
                t.wall_secs
            );
        }
        out.push_str(if self.timings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"protocol\": \"{}\", \"mobility\": \"{}\", \"load\": {}, \
                 \"runs\": {}, \"failures\": {}, \"panics\": {}, \"timed_out\": {}, \
                 \"retries\": {}, \"delivery_ratio\": {}, \
                 \"buffer_occupancy\": {}, \"duplication_rate\": {}, \"delay_s\": {}, \
                 \"signaling_bytes\": {}, \"false_positive_transmissions\": {}, \
                 \"faults\": {{\"contacts_skipped\": {}, \"sessions_truncated\": {}, \
                 \"ack_losses\": {}, \"churn_wipes\": {}}}, \"timing\": {}}}",
                json_escape(&p.protocol),
                json_escape(&p.mobility),
                p.load,
                p.runs,
                p.failures,
                p.panics,
                p.timed_out,
                p.retries,
                json_f64(p.delivery_ratio_mean),
                json_f64(p.buffer_occupancy_mean),
                json_f64(p.duplication_rate_mean),
                hist_json(&p.delay_hist),
                p.signaling_bytes,
                p.false_positive_transmissions,
                p.contacts_skipped,
                p.sessions_truncated,
                p.ack_losses,
                p.churn_wipes,
                timing_json(p.timing.as_ref()),
            );
        }
        out.push_str(if self.points.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {}",
                json_escape(&h.name),
                hist_json(&h.hist)
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }

    /// Render the report as JSON with every wall-clock- and
    /// machine-dependent field masked to a fixed value: `wall_secs` and
    /// all per-sweep timings become 0 (and with them the derived
    /// `sweeps_per_sec`/`contacts_per_sec`), `peak_rss_bytes` becomes
    /// `null`, the trace-cache counters become 0, and each point's
    /// phase-timing breakdown becomes `null`.
    ///
    /// What survives is exactly the deterministic content — workload,
    /// per-point aggregates, violations, histograms — so two runs of the
    /// same work are **byte-identical** here regardless of machine,
    /// thread count, or whether results came from the `dtn-service`
    /// cache. The service integration tests and the CI `service-matrix`
    /// job compare this rendering with `cmp`.
    pub fn to_canonical_json(&self) -> String {
        let mut canon = self.clone();
        canon.wall_secs = 0.0;
        canon.trace_cache_hits = 0;
        canon.trace_cache_misses = 0;
        canon.peak_rss_bytes = None;
        // Federation attribution records *how* the fabric completed the
        // sweep (failovers, hedges, shard split) — operational, not
        // result content — so it masks out: a federated sweep is
        // byte-identical here to a single-daemon run of the same work.
        canon.federation = None;
        for t in &mut canon.timings {
            t.wall_secs = 0.0;
        }
        for p in &mut canon.points {
            p.timing = None;
        }
        canon.to_json()
    }

    /// Write the JSON rendering to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Federation attribution as JSON (`null` for non-federated runs).
fn federation_json(f: Option<&FederationStats>) -> String {
    let Some(f) = f else { return "null".into() };
    let mut shards = String::from("[");
    for (i, s) in f.shards.iter().enumerate() {
        if i > 0 {
            shards.push_str(", ");
        }
        let _ = write!(
            shards,
            "{{\"addr\": \"{}\", \"state\": \"{}\", \"completed\": {}}}",
            json_escape(&s.addr),
            json_escape(&s.state),
            s.completed
        );
    }
    shards.push(']');
    format!(
        "{{\"workers\": {}, \"routable_workers\": {}, \"degraded\": {}, \
         \"failovers\": {}, \"hedges\": {}, \"redispatches\": {}, \
         \"missing_points\": {}, \"shards\": {shards}}}",
        f.workers,
        f.routable_workers,
        f.degraded,
        f.failovers,
        f.hedges,
        f.redispatches,
        f.missing_points,
    )
}

/// One point's phase-timing breakdown as JSON (`null` when absent).
fn timing_json(t: Option<&PointTiming>) -> String {
    match t {
        None => "null".to_string(),
        Some(t) => format!(
            "{{\"trace_secs\": {:.6}, \"sim_secs\": {:.6}, \"assemble_secs\": {:.6}}}",
            t.trace_secs, t.sim_secs, t.assemble_secs
        ),
    }
}

/// One histogram as a compact JSON object: count, moments, quantiles.
fn hist_json(h: &Histogram) -> String {
    let q = |q: f64| h.quantile(q).map(json_f64).unwrap_or_else(|| "null".into());
    format!(
        "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        h.count(),
        if h.is_empty() {
            "null".into()
        } else {
            json_f64(h.mean())
        },
        q(0.5),
        q(0.9),
        q(0.99),
        if h.is_empty() {
            "null".into()
        } else {
            json_f64(h.max())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_keeps_legacy_keys() {
        let mut r = SweepReport::new("smoke");
        r.record_sweep("only", 0.5);
        r.finish(1.0);
        let json = r.to_json();
        for key in [
            "\"workload\"",
            "\"wall_secs\"",
            "\"simulation_runs\"",
            "\"sweeps\"",
            "\"sweeps_per_sec\"",
            "\"contacts_processed\"",
            "\"contacts_per_sec\"",
            "\"bundle_transmissions\"",
            "\"trace_cache_hits\"",
            "\"trace_cache_misses\"",
            "\"peak_rss_bytes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn record_point_accumulates_counters_and_histogram() {
        let mut r = SweepReport::new("w");
        let m = crate::runner::run_point_raw(
            &dtn_epidemic::protocols::pure_epidemic(),
            crate::Mobility::Trace,
            5,
            &crate::SweepConfig {
                loads: vec![5],
                replications: 2,
                threads: dtn_sim::Threads::Sequential,
                ..Default::default()
            },
        );
        r.record_point("Pure epidemic", "trace", 5, &m);
        assert_eq!(r.simulation_runs, 2);
        assert!(r.contacts_processed > 0);
        let p = &r.points[0];
        assert_eq!(p.runs, 2);
        assert_eq!(p.failures + p.delay_hist.count() as usize, 2);
        let json = r.to_json();
        assert!(json.contains("\"delay_s\""), "{json}");
    }

    #[test]
    fn manifest_line_is_parseable_and_skipped_by_event_parser() {
        let m = RunManifest {
            tool: "dtnsim".into(),
            protocol: "Pure epidemic".into(),
            mobility: "trace".into(),
            load: 25,
            replications: 10,
            seed: 1,
            buffer_capacity: 10,
            tx_time_secs: 100,
            git_rev: Some("abc123".into()),
            unix_time_secs: 1_722_000_000,
        };
        let line = m.to_jsonl();
        assert!(line.starts_with("{\"manifest\":\"dtnsim\""), "{line}");
        assert_eq!(dtn_epidemic::Event::parse_jsonl(&line), None);
    }

    #[test]
    fn canonical_json_masks_only_the_volatile_fields() {
        let build = |wall: f64, cache: (u64, u64)| {
            let mut r = SweepReport::new("canon");
            r.record_sweep("cell @ trace", wall / 2.0);
            r.record_violation("k rep 0: v");
            r.record_cache(cache);
            r.record_point("Pure epidemic", "trace", 1, &[]);
            r.record_point_timing(PointTiming {
                trace_secs: wall / 4.0,
                sim_secs: wall / 2.0,
                assemble_secs: wall / 8.0,
            });
            r.finish(wall);
            r
        };
        let a = build(1.0, (10, 2));
        let b = build(7.5, (0, 12));
        assert_ne!(a.to_json(), b.to_json(), "volatile fields must differ");
        assert!(a.to_json().contains("\"timing\": {\"trace_secs\":"));
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
        assert!(a.to_canonical_json().contains("\"timing\": null"));
        // Deterministic content still distinguishes reports.
        let mut c = build(1.0, (10, 2));
        c.record_violation("k rep 1: other");
        assert_ne!(a.to_canonical_json(), c.to_canonical_json());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn unix_time_and_rss_are_sane() {
        assert!(unix_time_secs() > 1_700_000_000, "clock after Nov 2023");
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
