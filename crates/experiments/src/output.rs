//! Figure/table data model and rendering (CSV + aligned text).
//!
//! The harness regenerates each of the paper's figures as a [`Figure`] —
//! named series over the load axis — and each table as a [`TextTable`].
//! CSV output makes the data trivially plottable; the aligned-text
//! rendering is what `repro` prints and what EXPERIMENTS.md embeds.

use std::fmt::Write as _;
use std::path::Path;

/// Race-safe output-directory creation: like `create_dir_all`, but a
/// concurrent creator winning the race is success, not an error. Two
/// clients writing under `results/` at the same time — exactly what the
/// `dtn-service` daemon makes routine — must never fail spuriously, so
/// `AlreadyExists` is swallowed and any other error is retried once
/// against the directory's post-race state.
pub fn ensure_dir(dir: &Path) -> std::io::Result<()> {
    match std::fs::create_dir_all(dir) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(()),
        Err(e) => match std::fs::metadata(dir) {
            Ok(meta) if meta.is_dir() => Ok(()),
            _ => Err(e),
        },
    }
}

/// One plotted line: `(x, y)` points plus a 95 % CI half-width per point.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y, ci95)` triples in x order.
    pub points: Vec<(f64, f64, f64)>,
}

/// A regenerated figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier, e.g. "fig07".
    pub id: &'static str,
    /// Human title, e.g. "Delay vs load (trace)".
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as CSV: `x, <series 1>, <series 1 ci>, <series 2>, …`.
    /// Series are aligned on their x values; a series missing an x gets
    /// empty cells.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();

        let mut out = String::new();
        write!(out, "{}", self.x_label).unwrap();
        for s in &self.series {
            write!(out, ",{},{} ci95", csv_escape(&s.name), csv_escape(&s.name)).unwrap();
        }
        out.push('\n');
        for &x in &xs {
            write!(out, "{x}").unwrap();
            for s in &self.series {
                match s.points.iter().find(|p| p.0 == x) {
                    Some(&(_, y, ci)) => write!(out, ",{y:.6},{ci:.6}").unwrap(),
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as an aligned text table for the terminal / EXPERIMENTS.md.
    pub fn to_text(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();

        let mut out = String::new();
        writeln!(out, "# {} — {}", self.id, self.title).unwrap();
        writeln!(out, "#   y: {}", self.y_label).unwrap();
        let name_width = 4usize.max(self.x_label.len());
        write!(out, "{:>name_width$}", self.x_label).unwrap();
        let col = self
            .series
            .iter()
            .map(|s| s.name.len().max(10))
            .collect::<Vec<_>>();
        for (s, w) in self.series.iter().zip(&col) {
            write!(out, "  {:>w$}", s.name).unwrap();
        }
        out.push('\n');
        for &x in &xs {
            write!(out, "{:>name_width$}", format_num(x)).unwrap();
            for (s, w) in self.series.iter().zip(&col) {
                match s.points.iter().find(|p| p.0 == x) {
                    Some(&(_, y, _)) => write!(out, "  {:>w$}", format_num(y)).unwrap(),
                    None => write!(out, "  {:>w$}", "-").unwrap(),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to the other results.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        ensure_dir(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// A gnuplot script that renders this figure from its CSV
    /// (`gnuplot results/<id>.gp` → `results/<id>.png`), with error bars
    /// from the 95 % CI columns.
    pub fn to_gnuplot(&self) -> String {
        let mut out = String::new();
        writeln!(out, "# {} — {}", self.id, self.title).unwrap();
        writeln!(out, "set datafile separator ','").unwrap();
        writeln!(out, "set terminal pngcairo size 900,600").unwrap();
        writeln!(out, "set output '{}.png'", self.id).unwrap();
        writeln!(out, "set title {:?}", self.title).unwrap();
        writeln!(out, "set xlabel {:?}", self.x_label).unwrap();
        writeln!(out, "set ylabel {:?}", self.y_label).unwrap();
        writeln!(out, "set key below").unwrap();
        writeln!(out, "set grid").unwrap();
        let plots: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| {
                // CSV layout: column 1 = x, then (value, ci) pairs.
                let val_col = 2 + 2 * i;
                let ci_col = val_col + 1;
                format!(
                    "'{id}.csv' using 1:{val_col}:{ci_col} with yerrorlines title {name:?}",
                    id = self.id,
                    name = s.name
                )
            })
            .collect();
        writeln!(out, "plot \\\n  {}", plots.join(", \\\n  ")).unwrap();
        out
    }

    /// Write the gnuplot script next to the CSV.
    pub fn write_gnuplot(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        ensure_dir(dir)?;
        let path = dir.join(format!("{}.gp", self.id));
        std::fs::write(&path, self.to_gnuplot())?;
        Ok(path)
    }
}

/// A plain text table (Table II, the overhead comparison).
#[derive(Clone, Debug)]
pub struct TextTable {
    /// Identifier, e.g. "table2".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers; the first column is the row label.
    pub headers: Vec<String>,
    /// Rows of cells (first cell = label).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| csv_escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Render as aligned text.
    pub fn to_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        writeln!(out, "# {} — {}", self.id, self.title).unwrap();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, width) in widths.iter().copied().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    write!(out, "{cell:<width$}").unwrap();
                } else {
                    write!(out, "  {cell:>width$}").unwrap();
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(out, "{}", "-".repeat(total)).unwrap();
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Write the CSV next to the other results.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        ensure_dir(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Compact numeric formatting: integers stay integral, large values use
/// fewer decimals.
pub fn format_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e9 {
        format!("{}", x as i64)
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        Figure {
            id: "figX",
            title: "Sample".into(),
            x_label: "Load",
            y_label: "Delivery ratio",
            series: vec![
                Series {
                    name: "A".into(),
                    points: vec![(5.0, 0.5, 0.01), (10.0, 0.75, 0.02)],
                },
                Series {
                    name: "B".into(),
                    points: vec![(5.0, 1.0, 0.0)],
                },
            ],
        }
    }

    #[test]
    fn csv_aligns_series_on_x() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "Load,A,A ci95,B,B ci95");
        assert!(lines[1].starts_with("5,0.5"));
        assert!(lines[2].starts_with("10,0.75"));
        assert!(lines[2].ends_with(",,"), "missing point leaves empty cells");
    }

    #[test]
    fn text_rendering_contains_all_points() {
        let text = sample_figure().to_text();
        assert!(text.contains("figX"));
        assert!(text.contains("0.50") || text.contains("0.5"));
        assert!(text.contains('-'), "missing B point rendered as dash");
    }

    #[test]
    fn gnuplot_script_references_every_series() {
        let gp = sample_figure().to_gnuplot();
        assert!(gp.contains("set output 'figX.png'"));
        assert!(gp.contains("'figX.csv' using 1:2:3"), "{gp}");
        assert!(gp.contains("'figX.csv' using 1:4:5"), "{gp}");
        assert!(gp.contains("\"A\"") && gp.contains("\"B\""));
    }

    #[test]
    fn table_round_trip() {
        let t = TextTable {
            id: "t",
            title: "demo".into(),
            headers: vec!["Protocol".into(), "X".into()],
            rows: vec![vec!["pure, epidemic".into(), "1".into()]],
        };
        let csv = t.to_csv();
        assert!(csv.contains("\"pure, epidemic\""), "comma cell is quoted");
        let text = t.to_text();
        assert!(text.contains("Protocol"));
        assert!(text.contains("pure, epidemic"));
    }

    #[test]
    fn figure_csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("dtn_output_test");
        let path = sample_figure().write_csv(&dir).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("Load,A"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(5.0), "5");
        assert_eq!(format_num(0.123456), "0.123");
        assert_eq!(format_num(4.5678), "4.57");
        assert_eq!(format_num(52416.2), "52416");
    }
}
