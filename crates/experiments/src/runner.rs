//! The sweep runner: load sweeps × replications, fanned out over cores.
//!
//! Every figure in the paper is a sweep over the load axis
//! `k ∈ {5, 10, …, 50}` with ten replications per point, a fresh random
//! source/destination pair per replication, and metrics averaged per
//! point. [`run_sweep`] produces exactly that for one
//! (protocol, mobility) pair; figures are assembled from several sweeps.

use crate::scenarios::Mobility;
use dtn_epidemic::{
    simulate, simulate_probed, FaultPlan, JsonlProbe, ProtocolConfig, RunMetrics, SimConfig,
    TimeSeriesProbe, Workload,
};
use dtn_mobility::TraceCache;
use dtn_sim::{par_map_catch, Pool, SimDuration, SimRng, Summary, Threads, Welford};

/// Sweep-level configuration (defaults are the paper's).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The load (bundle-count) axis; paper: 5, 10, …, 50.
    pub loads: Vec<u32>,
    /// Replications per point; paper: 10.
    pub replications: usize,
    /// Root seed; every replication's randomness derives from it.
    pub base_seed: u64,
    /// Worker-thread policy.
    pub threads: Threads,
    /// Relay-buffer capacity (paper: 10).
    pub buffer_capacity: usize,
    /// Per-bundle transmission time override in seconds. `None` uses the
    /// scenario's own regime ([`Mobility::tx_time_secs`]): 100 s on the
    /// trace and RWP, 10 s in the interval scenarios.
    pub tx_time_secs: Option<u64>,
    /// Fault-injection plan applied to every replication (default: none;
    /// an all-zero plan leaves runs bit-identical to a plan-free build).
    pub faults: FaultPlan,
    /// How many times a panicking replication is retried on a fresh
    /// salted RNG stream before being recorded as a failure (0 = one
    /// attempt, no retries — the pre-watchdog behaviour).
    pub retries: u32,
    /// Hard per-replication deadline in seconds. A replication still
    /// running when it expires is abandoned and recorded as timed out
    /// instead of hanging the sweep. `None` disables the deadline.
    pub point_timeout_secs: Option<u64>,
    /// Attach an [`AuditProbe`](dtn_epidemic::AuditProbe) in `Record`
    /// mode to every replication and surface any invariant violations in
    /// the report. Probes never perturb the simulation, so audited
    /// metrics are bit-identical to un-audited ones.
    pub audit: bool,
    /// Resident-set budget in bytes. When a finished point leaves the
    /// process above this budget the sweep sheds its trace cache
    /// (checkpoints are already flushed per point) and continues in
    /// degraded, cache-cold mode. `None` disables the guard.
    pub memory_budget_bytes: Option<u64>,
    /// Log a reporter line when one point's simulation phase exceeds
    /// this many wall seconds (`None` disables the check). Purely
    /// observational — never perturbs results or the job identity.
    pub slow_point_secs: Option<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            loads: (1..=10).map(|i| i * 5).collect(),
            replications: 10,
            base_seed: 0xD7_2012,
            threads: Threads::Auto,
            buffer_capacity: 10,
            tx_time_secs: None,
            faults: FaultPlan::default(),
            retries: 0,
            point_timeout_secs: None,
            audit: false,
            memory_budget_bytes: None,
            slow_point_secs: None,
        }
    }
}

impl SweepConfig {
    /// A cheap variant for smoke tests and benches: fewer loads and
    /// replications.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            loads: vec![10, 30, 50],
            replications: 3,
            ..SweepConfig::default()
        }
    }

    /// The supervision policy this configuration asks for (see
    /// [`dtn_sim::Watchdog`]). The soft deadline, when a hard deadline is
    /// set, is half of it — successful-but-slow replications get flagged
    /// before they start timing out.
    pub fn watchdog(&self) -> dtn_sim::Watchdog {
        let timeout = self.point_timeout_secs.map(std::time::Duration::from_secs);
        dtn_sim::Watchdog {
            retries: self.retries,
            timeout,
            soft_timeout: timeout.map(|t| t / 2),
        }
    }
}

/// Aggregated results at one load level.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The load k.
    pub load: u32,
    /// Delivery-ratio statistics across replications.
    pub delivery_ratio: Summary,
    /// Delay statistics across *successful* replications (completion time
    /// in seconds). The paper records no delay for failed runs.
    pub delay_s: Summary,
    /// Replications that failed to deliver everything within the horizon,
    /// plus any panicked replications (each panic also counts here — a
    /// crashed run certainly did not finish delivering).
    pub failures: usize,
    /// Replications that panicked and were isolated by the checked
    /// runner instead of aborting the sweep (0 on the unchecked path).
    pub panics: usize,
    /// Buffer-occupancy statistics.
    pub buffer_occupancy: Summary,
    /// Duplication-rate statistics.
    pub duplication_rate: Summary,
    /// Immunity records transmitted (signaling overhead).
    pub ack_records: Summary,
    /// Bundle payload transmissions.
    pub transmissions: Summary,
    /// Summary-digest bytes sent during anti-entropy (exact vectors and
    /// Bloom digests alike; a subset of control bytes).
    pub signaling_bytes: Summary,
    /// Transmissions triggered by Bloom false positives (identically 0
    /// for exact-summary protocols).
    pub false_positive_transmissions: Summary,
}

/// A full sweep for one protocol on one mobility source.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The protocol's display name.
    pub protocol: &'static str,
    /// The mobility label.
    pub mobility: String,
    /// One aggregate per load level, in load order.
    pub points: Vec<PointResult>,
}

impl SweepResult {
    /// Mean of a per-point statistic across all loads (the aggregation
    /// used by the paper's Table II).
    pub fn grand_mean<F: Fn(&PointResult) -> f64>(&self, f: F) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(f).sum::<f64>() / self.points.len() as f64
    }
}

/// Run all replications of one (protocol, mobility, load) point and
/// return the raw per-replication metrics (used directly by some tests
/// and the overhead study). Traces are generated fresh per replication;
/// prefer [`run_point_raw_cached`] when several points or sweeps share
/// mobility.
pub fn run_point_raw(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    load: u32,
    cfg: &SweepConfig,
) -> Vec<RunMetrics> {
    run_point(protocol, mobility, load, cfg, None)
}

/// [`run_point_raw`] with trace generation deduplicated through a shared
/// [`TraceCache`]: every replication (and every other sweep handed the
/// same cache) reuses one read-only `Arc`'d trace per distinct
/// (scenario, seed, replication) key.
pub fn run_point_raw_cached(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    load: u32,
    cfg: &SweepConfig,
    cache: &TraceCache,
) -> Vec<RunMetrics> {
    run_point(protocol, mobility, load, cfg, Some(cache))
}

/// The [`SimConfig`] a sweep point runs under (the paper's constants plus
/// the sweep's overrides). Shared by the plain, traced and series runners
/// so their runs are interchangeable.
pub fn point_sim_config(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    cfg: &SweepConfig,
) -> SimConfig {
    SimConfig {
        protocol: protocol.clone(),
        buffer_capacity: cfg.buffer_capacity,
        tx_time: SimDuration::from_secs(
            cfg.tx_time_secs.unwrap_or_else(|| mobility.tx_time_secs()),
        ),
        ack_slot_cost: 0.1,
        transfer_loss_prob: 0.0,
        bundle_bytes: 10_000_000,
        ack_record_bytes: 16,
        faults: cfg.faults.clone(),
    }
}

/// Namespaced root RNG for one (load) point; every replication's
/// randomness derives from it so (protocol, load, replication) never
/// collides across sweeps while staying deterministic.
fn point_root_rng(load: u32, cfg: &SweepConfig) -> SimRng {
    SimRng::new(cfg.base_seed ^ (load as u64) << 32)
}

fn run_point(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    load: u32,
    cfg: &SweepConfig,
    cache: Option<&TraceCache>,
) -> Vec<RunMetrics> {
    let sim_config = point_sim_config(protocol, mobility, cfg);
    let root = point_root_rng(load, cfg);
    Pool::new(cfg.threads).map(cfg.replications, move |rep| {
        let rep = rep as u64;
        let mut wl_rng = root.derive(rep * 2 + 1);
        let sim_rng = root.derive(rep * 2);
        let run = |trace: &dtn_mobility::ContactTrace| {
            let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
            simulate(trace, &workload, &sim_config, sim_rng)
        };
        match cache {
            Some(cache) => run(&mobility.build_cached(cfg.base_seed, rep, cache)),
            None => run(&mobility.build(cfg.base_seed, rep)),
        }
    })
}

/// Panic-isolated [`run_point_raw_cached`]: each replication's outcome
/// comes back as `Ok(metrics)` or `Err(panic message)` in replication
/// order, and a diverging replication cannot take the sweep down with it.
/// Seeding is identical to the plain runner, so the `Ok` values are
/// bit-identical to [`run_point_raw_cached`]'s output.
pub fn run_point_checked_cached(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    load: u32,
    cfg: &SweepConfig,
    cache: &TraceCache,
) -> Vec<Result<RunMetrics, String>> {
    let sim_config = point_sim_config(protocol, mobility, cfg);
    let root = point_root_rng(load, cfg);
    par_map_catch(cfg.threads, cfg.replications, move |rep| {
        let rep = rep as u64;
        let mut wl_rng = root.derive(rep * 2 + 1);
        let sim_rng = root.derive(rep * 2);
        let trace = mobility.build_cached(cfg.base_seed, rep, cache);
        let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
        simulate(&trace, &workload, &sim_config, sim_rng)
    })
}

/// Aggregate checked replication outcomes into a [`PointResult`]: the
/// metric summaries cover the successful replications, while each panic
/// is counted both in [`PointResult::panics`] and (as a non-delivering
/// replication) in [`PointResult::failures`].
pub fn aggregate_point_checked(load: u32, results: &[Result<RunMetrics, String>]) -> PointResult {
    let ok: Vec<RunMetrics> = results
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    let panics = results.len() - ok.len();
    let mut point = aggregate_point(load, &ok);
    point.failures += panics;
    point.panics = panics;
    point
}

/// [`run_point_raw_cached`] with a [`JsonlProbe`] attached to every
/// replication: returns each replication's metrics plus its JSONL event
/// capture. Replications use the same seeding as the plain runner, so the
/// metrics are bit-identical to an un-traced run; results come back in
/// replication order regardless of the thread policy, so concatenating
/// the captures yields a byte-deterministic stream.
pub fn run_point_traced(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    load: u32,
    cfg: &SweepConfig,
    cache: &TraceCache,
) -> Vec<(RunMetrics, String)> {
    let sim_config = point_sim_config(protocol, mobility, cfg);
    let root = point_root_rng(load, cfg);
    Pool::new(cfg.threads).map(cfg.replications, move |rep| {
        let rep = rep as u64;
        let mut wl_rng = root.derive(rep * 2 + 1);
        let sim_rng = root.derive(rep * 2);
        let trace = mobility.build_cached(cfg.base_seed, rep, cache);
        let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
        let mut probe = JsonlProbe::new();
        let metrics = simulate_probed(&trace, &workload, &sim_config, sim_rng, &mut probe);
        (metrics, probe.into_jsonl())
    })
}

/// [`run_point_raw_cached`] with a [`TimeSeriesProbe`] attached to every
/// replication: returns each replication's metrics plus its sampled
/// level curves and distribution histograms. The sampling interval is
/// `horizon / 256`, floored at one second.
pub fn run_point_series(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    load: u32,
    cfg: &SweepConfig,
    cache: &TraceCache,
) -> Vec<(RunMetrics, TimeSeriesProbe)> {
    let sim_config = point_sim_config(protocol, mobility, cfg);
    let root = point_root_rng(load, cfg);
    Pool::new(cfg.threads).map(cfg.replications, move |rep| {
        let rep = rep as u64;
        let mut wl_rng = root.derive(rep * 2 + 1);
        let sim_rng = root.derive(rep * 2);
        let trace = mobility.build_cached(cfg.base_seed, rep, cache);
        let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
        let interval = SimDuration::from_millis((trace.horizon().as_millis() / 256).max(1000));
        let mut probe = TimeSeriesProbe::for_config(trace.node_count(), &sim_config, interval);
        let metrics = simulate_probed(&trace, &workload, &sim_config, sim_rng, &mut probe);
        probe.finish(metrics.end_time);
        (metrics, probe)
    })
}

/// Aggregate raw replication metrics into a [`PointResult`].
pub fn aggregate_point(load: u32, runs: &[RunMetrics]) -> PointResult {
    let mut delivery = Welford::new();
    let mut delay = Welford::new();
    let mut buffer = Welford::new();
    let mut duplication = Welford::new();
    let mut acks = Welford::new();
    let mut tx = Welford::new();
    let mut signaling = Welford::new();
    let mut false_pos = Welford::new();
    let mut failures = 0usize;
    for m in runs {
        delivery.push(m.delivery_ratio);
        match m.delay_secs() {
            Some(d) => delay.push(d),
            None => failures += 1,
        }
        buffer.push(m.avg_buffer_occupancy);
        duplication.push(m.avg_duplication_rate);
        acks.push(m.ack_records_sent as f64);
        tx.push(m.bundle_transmissions as f64);
        signaling.push(m.signaling_bytes as f64);
        false_pos.push(m.false_positive_transmissions as f64);
    }
    PointResult {
        load,
        delivery_ratio: delivery.summary(),
        delay_s: delay.summary(),
        failures,
        panics: 0,
        buffer_occupancy: buffer.summary(),
        duplication_rate: duplication.summary(),
        ack_records: acks.summary(),
        transmissions: tx.summary(),
        signaling_bytes: signaling.summary(),
        false_positive_transmissions: false_pos.summary(),
    }
}

/// Run the full load sweep for one protocol on one mobility source.
///
/// Internally shares one [`TraceCache`] across the sweep's points —
/// every load level replays the same per-replication traces. Callers
/// running *several* sweeps under the same mobility (a figure) should
/// pass one cache to [`run_sweep_cached`] instead.
pub fn run_sweep(protocol: &ProtocolConfig, mobility: Mobility, cfg: &SweepConfig) -> SweepResult {
    run_sweep_cached(protocol, mobility, cfg, &TraceCache::new())
}

/// [`run_sweep`] with trace generation deduplicated through a shared,
/// possibly cross-sweep [`TraceCache`].
pub fn run_sweep_cached(
    protocol: &ProtocolConfig,
    mobility: Mobility,
    cfg: &SweepConfig,
    cache: &TraceCache,
) -> SweepResult {
    let points = cfg
        .loads
        .iter()
        .map(|&load| {
            aggregate_point_checked(
                load,
                &run_point_checked_cached(protocol, mobility, load, cfg, cache),
            )
        })
        .collect();
    SweepResult {
        protocol: protocol.name,
        mobility: mobility.label(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_epidemic::protocols;

    fn tiny() -> SweepConfig {
        SweepConfig {
            loads: vec![5],
            replications: 3,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn sweep_produces_one_point_per_load() {
        let cfg = SweepConfig {
            loads: vec![5, 10],
            replications: 2,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let result = run_sweep(&protocols::pure_epidemic(), Mobility::Trace, &cfg);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[0].load, 5);
        assert_eq!(result.points[1].load, 10);
        assert_eq!(result.protocol, "Pure epidemic");
    }

    #[test]
    fn sweep_is_deterministic_and_thread_invariant() {
        let cfg_seq = tiny();
        let mut cfg_par = tiny();
        cfg_par.threads = Threads::Auto;
        let a = run_sweep(&protocols::pure_epidemic(), Mobility::Rwp, &cfg_seq);
        let b = run_sweep(&protocols::pure_epidemic(), Mobility::Rwp, &cfg_par);
        assert_eq!(
            a.points[0].delivery_ratio.mean,
            b.points[0].delivery_ratio.mean
        );
        assert_eq!(a.points[0].delay_s.mean, b.points[0].delay_s.mean);
    }

    #[test]
    fn pure_epidemic_delivers_well_on_trace_at_low_load() {
        let result = run_sweep(&protocols::pure_epidemic(), Mobility::Trace, &tiny());
        let p = &result.points[0];
        assert!(
            p.delivery_ratio.mean > 0.9,
            "delivery at load 5: {}",
            p.delivery_ratio.mean
        );
    }

    #[test]
    fn aggregate_separates_failures_from_delays() {
        let runs = run_point_raw(
            &protocols::ttl_epidemic(dtn_sim::SimDuration::from_secs(50)),
            Mobility::Trace,
            50,
            &tiny(),
        );
        let point = aggregate_point(50, &runs);
        // With a 50 s TTL on a sparse trace, at least some replication
        // fails; the delay summary must then have fewer samples than the
        // replication count.
        assert_eq!(point.delivery_ratio.n as usize, runs.len());
        assert_eq!(point.delay_s.n as usize + point.failures, runs.len());
    }

    #[test]
    fn traced_and_series_runs_match_the_plain_runner() {
        let cfg = tiny();
        let cache = TraceCache::new();
        let proto = protocols::immunity_epidemic();
        let plain = run_point_raw_cached(&proto, Mobility::Trace, 5, &cfg, &cache);
        let traced = run_point_traced(&proto, Mobility::Trace, 5, &cfg, &cache);
        let series = run_point_series(&proto, Mobility::Trace, 5, &cfg, &cache);
        assert_eq!(plain.len(), traced.len());
        for (p, (t, jsonl)) in plain.iter().zip(&traced) {
            assert_eq!(p, t, "probe must not perturb the simulation");
            assert!(!jsonl.is_empty(), "events were captured");
        }
        for (p, (s, probe)) in plain.iter().zip(&series) {
            assert_eq!(p, s);
            assert!(!probe.samples.is_empty(), "curves were sampled");
            assert_eq!(probe.delay.count(), u64::from(p.delivered));
        }
    }

    #[test]
    fn grand_mean_averages_points() {
        let cfg = SweepConfig {
            loads: vec![5, 10],
            replications: 2,
            threads: Threads::Sequential,
            ..SweepConfig::default()
        };
        let r = run_sweep(&protocols::pure_epidemic(), Mobility::Trace, &cfg);
        let manual = (r.points[0].delivery_ratio.mean + r.points[1].delivery_ratio.mean) / 2.0;
        assert!((r.grand_mean(|p| p.delivery_ratio.mean) - manual).abs() < 1e-12);
    }
}
