//! Ablation: the EC+TTL threshold (Algorithm 2 fixes 8 transmissions
//! before a bundle receives a TTL).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::bench_variants;
use dtn_epidemic::{protocols, EvictionPolicy, LifetimePolicy};
use dtn_experiments::Mobility;
use dtn_sim::SimDuration;

fn benches(c: &mut Criterion) {
    let variants = [2u32, 4, 8, 16, 32]
        .into_iter()
        .map(|threshold| {
            let mut protocol = protocols::ec_ttl_epidemic();
            protocol.lifetime = LifetimePolicy::EcTtl {
                threshold,
                base: SimDuration::from_secs(300),
                decay: SimDuration::from_secs(100),
            };
            protocol.eviction = EvictionPolicy::HighestEcMin { min_ec: threshold };
            (format!("threshold_{threshold}"), protocol)
        })
        .collect();
    bench_variants(c, "ablation_ec_threshold", Mobility::Rwp, variants);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
