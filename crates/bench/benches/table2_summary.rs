//! Bench target for the paper's Table II driver (reduced sweep).
//! Regenerate the full table with: `repro table2`.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::bench_sweep_config;
use dtn_experiments::table2;

fn benches(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    c.bench_function("table2_summary", |b| {
        b.iter(|| std::hint::black_box(table2(&cfg)));
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
