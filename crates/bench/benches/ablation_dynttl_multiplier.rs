//! Ablation: the dynamic-TTL interval multiplier (Algorithm 1 fixes 2.0;
//! the knob is exposed for sensitivity studies).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::bench_variants;
use dtn_epidemic::{protocols, LifetimePolicy};
use dtn_experiments::Mobility;

fn benches(c: &mut Criterion) {
    let variants = [0.5, 1.0, 2.0, 4.0, 8.0]
        .into_iter()
        .map(|multiplier| {
            let mut protocol = protocols::dynamic_ttl_epidemic();
            protocol.lifetime = LifetimePolicy::DynamicTtl { multiplier };
            (format!("mult_{multiplier}"), protocol)
        })
        .collect();
    bench_variants(c, "ablation_dynttl_multiplier", Mobility::Trace, variants);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
