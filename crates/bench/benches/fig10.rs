//! Bench target for the paper's fig10 driver (reduced sweep).
//! Regenerate the full figure with: `repro fig10`.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::{bench_figure_driver, figure_driver};

fn benches(c: &mut Criterion) {
    bench_figure_driver(c, "fig10", figure_driver("fig10"));
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
