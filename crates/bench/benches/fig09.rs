//! Bench target for the paper's fig09 driver (reduced sweep).
//! Regenerate the full figure with: `repro fig09`.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::{bench_figure_driver, figure_driver};

fn benches(c: &mut Criterion) {
    bench_figure_driver(c, "fig09", figure_driver("fig09"));
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
