//! Ablation: buffer-full eviction policy (the axis DESIGN.md pins as a
//! reproduction decision — the paper never states the full-buffer rule
//! for the non-EC protocols).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::bench_variants;
use dtn_epidemic::{protocols, EvictionPolicy};
use dtn_experiments::Mobility;

fn benches(c: &mut Criterion) {
    let variants = [
        ("reject_new", EvictionPolicy::RejectNew),
        ("drop_oldest", EvictionPolicy::DropOldest),
        ("highest_ec", EvictionPolicy::HighestEc),
        (
            "highest_ec_min8",
            EvictionPolicy::HighestEcMin { min_ec: 8 },
        ),
    ]
    .into_iter()
    .map(|(label, eviction)| {
        let mut protocol = protocols::pure_epidemic();
        protocol.eviction = eviction;
        (label.to_string(), protocol)
    })
    .collect();
    bench_variants(c, "ablation_eviction", Mobility::Trace, variants);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
