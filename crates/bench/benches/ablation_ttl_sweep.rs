//! Ablation: the fixed TTL constant. Section IV: "we experimented with
//! TTL values of 50, 100, 150 and 200 seconds" (plus the 300 s evaluation
//! default).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::bench_variants;
use dtn_epidemic::protocols;
use dtn_experiments::Mobility;
use dtn_sim::SimDuration;

fn benches(c: &mut Criterion) {
    let variants = [50u64, 100, 150, 200, 300]
        .into_iter()
        .map(|ttl| {
            (
                format!("ttl_{ttl}s"),
                protocols::ttl_epidemic(SimDuration::from_secs(ttl)),
            )
        })
        .collect();
    bench_variants(c, "ablation_ttl_sweep", Mobility::Trace, variants);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
