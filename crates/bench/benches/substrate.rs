//! Microbenchmarks of the simulation substrates: the event queue, the
//! RNG, the mobility generators, and a single protocol run — the numbers
//! to watch when optimizing the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_epidemic::protocols;
use dtn_experiments::Mobility;
use dtn_mobility::{HaggleParams, IntervalScenario, RwpParams, SubscriberParams};
use dtn_sim::{EventQueue, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("substrate/event_queue_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_secs(rng.below(1_000_000)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(times.len());
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, i);
            }
            let mut checksum = 0usize;
            while let Some((_, i)) = q.pop() {
                checksum ^= i;
            }
            std::hint::black_box(checksum)
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("substrate/rng_1m_u64", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc ^= rng.next_u64();
            }
            std::hint::black_box(acc)
        });
    });
    c.bench_function("substrate/rng_100k_pareto", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.pareto_truncated(100.0, 1e6, 0.4);
            }
            std::hint::black_box(acc)
        });
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("substrate/gen_haggle_trace", |b| {
        b.iter(|| std::hint::black_box(HaggleParams::default().generate(&mut SimRng::new(1))));
    });
    c.bench_function("substrate/gen_subscriber_rwp", |b| {
        b.iter(|| std::hint::black_box(SubscriberParams::default().generate(&mut SimRng::new(1))));
    });
    c.bench_function("substrate/gen_geometric_rwp", |b| {
        let params = RwpParams {
            horizon: SimTime::from_secs(100_000),
            ..RwpParams::default()
        };
        b.iter(|| std::hint::black_box(params.generate(&mut SimRng::new(1))));
    });
    c.bench_function("substrate/gen_interval_scenario", |b| {
        b.iter(|| {
            std::hint::black_box(
                IntervalScenario::with_max_interval(400).generate(&mut SimRng::new(1)),
            )
        });
    });
}

fn bench_single_run(c: &mut Criterion) {
    c.bench_function("substrate/simulate_trace_load25", |b| {
        b.iter(|| {
            std::hint::black_box(dtn_bench::one_run(
                protocols::immunity_epidemic(),
                Mobility::Trace,
                25,
                7,
            ))
        });
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_rng, bench_generators, bench_single_run
}
criterion_main!(group);
