//! Ablation: the P–Q transmission probabilities. Section IV: "We
//! experiment with the following P and Q values: 0.1, 0.5 and 1."

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::bench_variants;
use dtn_epidemic::protocols;
use dtn_experiments::Mobility;

fn benches(c: &mut Criterion) {
    let variants = [0.1, 0.5, 1.0]
        .into_iter()
        .flat_map(|p| {
            [0.1, 0.5, 1.0]
                .into_iter()
                .map(move |q| (format!("p{p}_q{q}"), protocols::pq_epidemic(p, q)))
        })
        .collect();
    bench_variants(c, "ablation_pq_sweep", Mobility::Trace, variants);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
