//! Bench target for the signaling-overhead study (abstract: cumulative
//! immunity incurs "an order of magnitude less signaling overheads").
//! Regenerate the full comparison with: `repro overhead`.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::{bench_sweep_config, bench_variants};
use dtn_epidemic::protocols;
use dtn_experiments::{overhead_table, Mobility};

fn benches(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    c.bench_function("overhead_table", |b| {
        b.iter(|| std::hint::black_box(overhead_table(&cfg)));
    });
    // Per-scheme simulation cost: per-bundle tables carry O(load) records
    // per exchange, the cumulative table O(flows).
    bench_variants(
        c,
        "ablation_immunity_overhead",
        Mobility::Trace,
        vec![
            ("per_bundle".into(), protocols::immunity_epidemic()),
            (
                "cumulative".into(),
                protocols::cumulative_immunity_epidemic(),
            ),
            ("no_acks".into(), protocols::pure_epidemic()),
        ],
    );
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
