//! Reproducible sweep-throughput harness: `cargo run --release --bin
//! bench_sweep` runs a fixed figure-style workload (every protocol of the
//! study — the eight paper protocols plus the Bloom summary-exchange
//! family — over the same mobility sources and load axis) and writes
//! `BENCH_sweep.json` with contacts/sec, sweeps/sec, and peak RSS. The
//! JSON is the repo's performance trajectory: re-run after a hot-path
//! change and compare against the committed numbers (CI's perf-guard job
//! does exactly that and fails on a >25% regression).
//!
//! The file is rendered through the unified [`SweepReport`] pipeline, so
//! alongside the legacy top-level counters it now carries per-sweep wall
//! timings, per-point metric aggregates and delivery-delay histograms.

use dtn_epidemic::protocols;
use dtn_experiments::{aggregate_point, Mobility, SweepConfig, SweepReport, TraceCache};
use dtn_sim::Threads;
use std::time::Instant;

/// The fixed workload: the paper's eight protocols plus the four Bloom
/// summary-exchange variants, two mobility regimes, five load levels,
/// five replications each — shaped like a figure regeneration, scaled to
/// finish in seconds.
const LOADS: [u32; 5] = [10, 20, 30, 40, 50];
const REPLICATIONS: usize = 5;
const MOBILITIES: [Mobility; 2] = [Mobility::Trace, Mobility::Rwp];

fn sweep_config() -> SweepConfig {
    SweepConfig {
        loads: LOADS.to_vec(),
        replications: REPLICATIONS,
        threads: Threads::Sequential,
        ..SweepConfig::default()
    }
}

fn main() {
    let cfg = sweep_config();
    let protocols = protocols::all_protocols();
    // `BENCH_UNCACHED=1` reproduces the pre-caching baseline: every
    // replication regenerates its trace from scratch.
    let uncached = std::env::var_os("BENCH_UNCACHED").is_some();

    // One warm-up pass so one-time costs (page faults, lazy init) don't
    // skew the timed pass.
    {
        let cache = TraceCache::new();
        let _ = dtn_experiments::run_point_raw_cached(
            &protocols[0],
            Mobility::Trace,
            LOADS[0],
            &cfg,
            &cache,
        );
    }

    let bloom = protocols::bloom_protocols();
    let mut report = SweepReport::new(format!(
        "{} protocols x {} mobilities x loads {:?} x {} replications, sequential; \
         plus a {}-variant bloom-family stanza outside the timed window",
        protocols.len(),
        MOBILITIES.len(),
        LOADS,
        REPLICATIONS,
        bloom.len(),
    ));

    let start = Instant::now();
    // A figure compares protocols under identical mobility, so all sweeps
    // of one workload share a single trace cache — exactly how
    // `build_figure` wires it.
    let cache = TraceCache::new();
    for mobility in MOBILITIES {
        for protocol in &protocols {
            let sweep_started = Instant::now();
            for &load in &cfg.loads {
                let metrics = if uncached {
                    dtn_experiments::run_point_raw(protocol, mobility, load, &cfg)
                } else {
                    dtn_experiments::run_point_raw_cached(protocol, mobility, load, &cfg, &cache)
                };
                report.record_point(protocol.name, &mobility.label(), load, &metrics);
                // Aggregation is part of the sweep path; include its cost.
                std::hint::black_box(aggregate_point(load, &metrics));
            }
            report.record_sweep(
                format!("{} @ {}", protocol.name, mobility.label()),
                sweep_started.elapsed().as_secs_f64(),
            );
        }
    }
    report.finish(start.elapsed().as_secs_f64());

    // Bloom-family sweep-grid stanza: the four Bloom summary-exchange
    // variants over the same mobility × load grid. Recorded after
    // `finish` freezes the headline numerators, so the legacy
    // contacts/sec stays comparable with the committed history while the
    // points carry the new signaling_bytes / false_positive_transmissions
    // counters.
    for mobility in MOBILITIES {
        for protocol in &bloom {
            let sweep_started = Instant::now();
            for &load in &cfg.loads {
                let metrics = if uncached {
                    dtn_experiments::run_point_raw(protocol, mobility, load, &cfg)
                } else {
                    dtn_experiments::run_point_raw_cached(protocol, mobility, load, &cfg, &cache)
                };
                report.record_point(protocol.name, &mobility.label(), load, &metrics);
                std::hint::black_box(aggregate_point(load, &metrics));
            }
            report.record_sweep(
                format!("{} @ {} [bloom stanza]", protocol.name, mobility.label()),
                sweep_started.elapsed().as_secs_f64(),
            );
        }
    }
    report.record_cache(cache.stats());

    let json = report.to_json();
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        print!("{json}");
        eprintln!("bench_sweep: cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out}");
}
