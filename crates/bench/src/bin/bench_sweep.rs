//! Reproducible sweep-throughput harness: `cargo run --release --bin
//! bench_sweep` runs a fixed figure-style workload (every protocol of the
//! study over the same mobility sources and load axis) and writes
//! `BENCH_sweep.json` with contacts/sec, sweeps/sec, and peak RSS. The
//! JSON is the repo's performance trajectory: re-run after a hot-path
//! change and compare against the committed numbers.
//!
//! The file is rendered through the unified [`SweepReport`] pipeline, so
//! alongside the legacy top-level counters it now carries per-sweep wall
//! timings, per-point metric aggregates and delivery-delay histograms.

use dtn_epidemic::protocols;
use dtn_experiments::{aggregate_point, Mobility, SweepConfig, SweepReport, TraceCache};
use dtn_sim::Threads;
use std::time::Instant;

/// The fixed workload: the paper's eight protocols, two mobility
/// regimes, five load levels, five replications each — shaped like a
/// figure regeneration, scaled to finish in seconds.
const LOADS: [u32; 5] = [10, 20, 30, 40, 50];
const REPLICATIONS: usize = 5;
const MOBILITIES: [Mobility; 2] = [Mobility::Trace, Mobility::Rwp];

fn sweep_config() -> SweepConfig {
    SweepConfig {
        loads: LOADS.to_vec(),
        replications: REPLICATIONS,
        threads: Threads::Sequential,
        ..SweepConfig::default()
    }
}

fn main() {
    let cfg = sweep_config();
    let protocols = protocols::all_protocols();
    // `BENCH_UNCACHED=1` reproduces the pre-caching baseline: every
    // replication regenerates its trace from scratch.
    let uncached = std::env::var_os("BENCH_UNCACHED").is_some();

    // One warm-up pass so one-time costs (page faults, lazy init) don't
    // skew the timed pass.
    {
        let cache = TraceCache::new();
        let _ = dtn_experiments::run_point_raw_cached(
            &protocols[0],
            Mobility::Trace,
            LOADS[0],
            &cfg,
            &cache,
        );
    }

    let mut report = SweepReport::new(format!(
        "{} protocols x {} mobilities x loads {:?} x {} replications, sequential",
        protocols.len(),
        MOBILITIES.len(),
        LOADS,
        REPLICATIONS,
    ));

    let start = Instant::now();
    // A figure compares protocols under identical mobility, so all sweeps
    // of one workload share a single trace cache — exactly how
    // `build_figure` wires it.
    let cache = TraceCache::new();
    for mobility in MOBILITIES {
        for protocol in &protocols {
            let sweep_started = Instant::now();
            for &load in &cfg.loads {
                let metrics = if uncached {
                    dtn_experiments::run_point_raw(protocol, mobility, load, &cfg)
                } else {
                    dtn_experiments::run_point_raw_cached(protocol, mobility, load, &cfg, &cache)
                };
                report.record_point(protocol.name, &mobility.label(), load, &metrics);
                // Aggregation is part of the sweep path; include its cost.
                std::hint::black_box(aggregate_point(load, &metrics));
            }
            report.record_sweep(
                format!("{} @ {}", protocol.name, mobility.label()),
                sweep_started.elapsed().as_secs_f64(),
            );
        }
    }
    report.record_cache(cache.stats());
    report.finish(start.elapsed().as_secs_f64());

    let json = report.to_json();
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        print!("{json}");
        eprintln!("bench_sweep: cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out}");
}
