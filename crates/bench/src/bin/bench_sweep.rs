//! Reproducible sweep-throughput harness: `cargo run --release --bin
//! bench_sweep` runs a fixed figure-style workload (every protocol of the
//! study over the same mobility sources and load axis) and writes
//! `BENCH_sweep.json` with contacts/sec, sweeps/sec, and peak RSS. The
//! JSON is the repo's performance trajectory: re-run after a hot-path
//! change and compare against the committed numbers.

use dtn_epidemic::protocols;
use dtn_experiments::{aggregate_point, Mobility, SweepConfig, TraceCache};
use dtn_sim::Threads;
use std::time::Instant;

/// The fixed workload: the paper's eight protocols, two mobility
/// regimes, five load levels, five replications each — shaped like a
/// figure regeneration, scaled to finish in seconds.
const LOADS: [u32; 5] = [10, 20, 30, 40, 50];
const REPLICATIONS: usize = 5;
const MOBILITIES: [Mobility; 2] = [Mobility::Trace, Mobility::Rwp];

fn sweep_config() -> SweepConfig {
    SweepConfig {
        loads: LOADS.to_vec(),
        replications: REPLICATIONS,
        threads: Threads::Sequential,
        ..SweepConfig::default()
    }
}

/// Peak resident set size in bytes (`VmHWM` from /proc/self/status);
/// `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    let cfg = sweep_config();
    let protocols = protocols::all_protocols();
    // `BENCH_UNCACHED=1` reproduces the pre-caching baseline: every
    // replication regenerates its trace from scratch.
    let uncached = std::env::var_os("BENCH_UNCACHED").is_some();

    // One warm-up pass so one-time costs (page faults, lazy init) don't
    // skew the timed pass.
    {
        let cache = TraceCache::new();
        let _ = dtn_experiments::run_point_raw_cached(
            &protocols[0],
            Mobility::Trace,
            LOADS[0],
            &cfg,
            &cache,
        );
    }

    let start = Instant::now();
    let mut contacts: u64 = 0;
    let mut transmissions: u64 = 0;
    let mut runs: u64 = 0;
    let mut sweeps: u64 = 0;
    // A figure compares protocols under identical mobility, so all sweeps
    // of one workload share a single trace cache — exactly how
    // `build_figure` wires it.
    let cache = TraceCache::new();
    for mobility in MOBILITIES {
        for protocol in &protocols {
            for &load in &cfg.loads {
                let metrics = if uncached {
                    dtn_experiments::run_point_raw(protocol, mobility, load, &cfg)
                } else {
                    dtn_experiments::run_point_raw_cached(protocol, mobility, load, &cfg, &cache)
                };
                contacts += metrics.iter().map(|m| m.contacts_processed).sum::<u64>();
                transmissions += metrics.iter().map(|m| m.bundle_transmissions).sum::<u64>();
                runs += metrics.len() as u64;
                // Aggregation is part of the sweep path; include its cost.
                std::hint::black_box(aggregate_point(load, &metrics));
            }
            sweeps += 1;
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let contacts_per_sec = contacts as f64 / wall;
    let sweeps_per_sec = sweeps as f64 / wall;
    let (hits, misses) = cache.stats();
    let rss = peak_rss_bytes();

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"{} protocols x {} mobilities x loads {:?} x {} replications, sequential\",\n",
            "  \"wall_secs\": {:.3},\n",
            "  \"simulation_runs\": {},\n",
            "  \"sweeps\": {},\n",
            "  \"sweeps_per_sec\": {:.3},\n",
            "  \"contacts_processed\": {},\n",
            "  \"contacts_per_sec\": {:.0},\n",
            "  \"bundle_transmissions\": {},\n",
            "  \"trace_cache_hits\": {},\n",
            "  \"trace_cache_misses\": {},\n",
            "  \"peak_rss_bytes\": {}\n",
            "}}\n"
        ),
        protocols.len(),
        MOBILITIES.len(),
        LOADS,
        REPLICATIONS,
        wall,
        runs,
        sweeps,
        sweeps_per_sec,
        contacts,
        contacts_per_sec,
        transmissions,
        hits,
        misses,
        rss.map(|b| b.to_string()).unwrap_or_else(|| "null".into()),
    );

    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        print!("{json}");
        eprintln!("bench_sweep: cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out}");
}
