//! Probe-overhead guard: proves the telemetry layer costs nothing when
//! disabled.
//!
//! The simulator's hot path is generic over a [`Probe`]; production runs
//! use [`NullProbe`], whose `ENABLED = false` constant dead-codes every
//! event emission at monomorphization time. This bench re-times the exact
//! `bench_sweep` workload (sequential, cached, NullProbe — i.e. the plain
//! `simulate` everyone calls) and compares contacts/sec against the
//! committed `BENCH_sweep.json` baseline. A regression beyond the guard
//! threshold fails the process, which is how CI catches an accidentally
//! non-zero-cost probe.
//!
//! ```text
//! bench_probe_overhead [BASELINE_JSON]     (default: BENCH_sweep.json)
//!
//!   PROBE_GUARD_PCT=N     allowed regression in percent   (default: 3)
//!   PROBE_GUARD_PASSES=N  timed passes, best-of           (default: 3)
//! ```
//!
//! An enabled-probe pass (`CountingProbe`, the cheapest live probe) is
//! also timed and reported for context; it is informational only — an
//! *enabled* probe is allowed to cost something.
//!
//! A third pass times the full [`AuditProbe`] ledger (Record mode) and
//! *is* guarded: audited throughput must stay within
//! `AUDIT_GUARD_PCT` percent (default: 25) of the NullProbe rate, so the
//! invariant auditor stays cheap enough to leave on in sweeps.
//!
//! A fourth stanza applies the same contract to the telemetry layer's
//! [`Span`] guard: a tight loop with one `Span::<NullClock>` per
//! iteration must run at the bare loop's rate (`SPAN_GUARD_PCT`,
//! default: 25 — loose because sub-ns ops sit inside timer noise). The
//! enabled `Span::<MonotonicClock>` cost is reported for context.

use dtn_epidemic::{protocols, simulate_probed, AuditMode, AuditProbe, CountingProbe, Workload};
use dtn_experiments::{point_sim_config, Mobility, SweepConfig, TraceCache};
use dtn_sim::{AtomicHistogram, Clock, MonotonicClock, NullClock, SimRng, Span, Threads};
use std::time::Instant;

const LOADS: [u32; 5] = [10, 20, 30, 40, 50];
const REPLICATIONS: usize = 5;
const MOBILITIES: [Mobility; 2] = [Mobility::Trace, Mobility::Rwp];

fn sweep_config() -> SweepConfig {
    SweepConfig {
        loads: LOADS.to_vec(),
        replications: REPLICATIONS,
        threads: Threads::Sequential,
        ..SweepConfig::default()
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Extract `"contacts_per_sec": <number>` from the baseline JSON by
/// string search — the baseline is our own hand-shaped file, and a full
/// parser would be overkill for one numeric key.
fn baseline_contacts_per_sec(json: &str) -> Option<f64> {
    let key = "\"contacts_per_sec\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One timed pass over the bench_sweep workload with NullProbe (the
/// plain `simulate` path). Returns (contacts, wall seconds).
fn timed_pass(cfg: &SweepConfig, cache: &TraceCache) -> (u64, f64) {
    let protocols = protocols::all_protocols();
    let start = Instant::now();
    let mut contacts = 0u64;
    for mobility in MOBILITIES {
        for protocol in &protocols {
            for &load in &cfg.loads {
                let metrics =
                    dtn_experiments::run_point_raw_cached(protocol, mobility, load, cfg, cache);
                contacts += metrics.iter().map(|m| m.contacts_processed).sum::<u64>();
                std::hint::black_box(dtn_experiments::aggregate_point(load, &metrics));
            }
        }
    }
    (contacts, start.elapsed().as_secs_f64())
}

/// The same workload with an *enabled* probe, for context.
fn counting_pass(cfg: &SweepConfig, cache: &TraceCache) -> (u64, u64, f64) {
    let protocols = protocols::all_protocols();
    let start = Instant::now();
    let mut contacts = 0u64;
    let mut events = 0u64;
    for mobility in MOBILITIES {
        for protocol in &protocols {
            for &load in &cfg.loads {
                let sim_config = point_sim_config(protocol, mobility, cfg);
                let root = SimRng::new(cfg.base_seed ^ (load as u64) << 32);
                for rep in 0..cfg.replications as u64 {
                    let mut wl_rng = root.derive(rep * 2 + 1);
                    let sim_rng = root.derive(rep * 2);
                    let trace = mobility.build_cached(cfg.base_seed, rep, cache);
                    let workload =
                        Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
                    let mut probe = CountingProbe::default();
                    let m = simulate_probed(&trace, &workload, &sim_config, sim_rng, &mut probe);
                    contacts += m.contacts_processed;
                    events += probe.events;
                }
            }
        }
    }
    (contacts, events, start.elapsed().as_secs_f64())
}

/// The same workload through the conservation auditor. The run doubles
/// as an audit smoke test: any invariant violation aborts the bench.
fn audited_pass(cfg: &SweepConfig, cache: &TraceCache) -> (u64, u64, f64) {
    let protocols = protocols::all_protocols();
    let start = Instant::now();
    let mut contacts = 0u64;
    let mut events = 0u64;
    for mobility in MOBILITIES {
        for protocol in &protocols {
            for &load in &cfg.loads {
                let sim_config = point_sim_config(protocol, mobility, cfg);
                let root = SimRng::new(cfg.base_seed ^ (load as u64) << 32);
                for rep in 0..cfg.replications as u64 {
                    let mut wl_rng = root.derive(rep * 2 + 1);
                    let sim_rng = root.derive(rep * 2);
                    let trace = mobility.build_cached(cfg.base_seed, rep, cache);
                    let workload =
                        Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
                    let mut probe = AuditProbe::new(
                        &workload,
                        &sim_config,
                        trace.node_count(),
                        AuditMode::Record,
                    );
                    let m = simulate_probed(&trace, &workload, &sim_config, sim_rng, &mut probe);
                    assert!(
                        probe.is_clean(),
                        "bench workload tripped the auditor: {:?}",
                        probe.violations()
                    );
                    contacts += m.contacts_processed;
                    events += probe.events_seen();
                }
            }
        }
    }
    (contacts, events, start.elapsed().as_secs_f64())
}

const SPAN_ITERS: u64 = 10_000_000;

/// ns/op of a trivial accumulate loop with one [`Span`] guard per
/// iteration. Under [`NullClock`] the guard must monomorphize away, so
/// this should time identically to [`bare_span_pass`].
fn span_pass<C: Clock>(hist: &AtomicHistogram) -> f64 {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..SPAN_ITERS {
        let _span = Span::<C>::start(hist);
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    std::hint::black_box(acc);
    start.elapsed().as_nanos() as f64 / SPAN_ITERS as f64
}

/// The same loop with no guard at all: the zero-cost baseline.
fn bare_span_pass() -> f64 {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..SPAN_ITERS {
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    std::hint::black_box(acc);
    start.elapsed().as_nanos() as f64 / SPAN_ITERS as f64
}

fn main() {
    let baseline_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    let guard_pct = env_f64("PROBE_GUARD_PCT", 3.0);
    let passes = env_f64("PROBE_GUARD_PASSES", 3.0).max(1.0) as usize;

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(json) => match baseline_contacts_per_sec(&json) {
            Some(v) => v,
            None => {
                eprintln!("bench_probe_overhead: no contacts_per_sec in {baseline_path}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("bench_probe_overhead: cannot read {baseline_path}: {e}");
            std::process::exit(1);
        }
    };

    let cfg = sweep_config();
    let cache = TraceCache::new();
    // Warm-up: populate the trace cache and fault in the binary.
    let _ = timed_pass(&cfg, &cache);

    // Best-of-N guards against scheduler noise on shared CI machines.
    let mut best = 0.0f64;
    for pass in 0..passes {
        let (contacts, wall) = timed_pass(&cfg, &cache);
        let rate = contacts as f64 / wall;
        eprintln!(
            "pass {}/{}: {} contacts in {:.3} s = {:.0} contacts/s",
            pass + 1,
            passes,
            contacts,
            wall,
            rate
        );
        best = best.max(rate);
    }

    let (c_contacts, c_events, c_wall) = counting_pass(&cfg, &cache);
    let counting_rate = c_contacts as f64 / c_wall;

    // Best-of-N for the audited pass too — it faces the same noise and a
    // guard, so it deserves the same defense.
    let audit_guard_pct = env_f64("AUDIT_GUARD_PCT", 25.0);
    let mut audit_best = 0.0f64;
    let mut audit_events = 0u64;
    for _ in 0..passes {
        let (a_contacts, a_events, a_wall) = audited_pass(&cfg, &cache);
        audit_best = audit_best.max(a_contacts as f64 / a_wall);
        audit_events = a_events;
    }

    // Span guard: a disabled (NullClock) span per loop iteration must
    // cost the same as no span at all — same dead-code contract the
    // NullProbe guard enforces, applied to the telemetry layer. Best-of-N
    // on both sides; the enabled (MonotonicClock) span is informational.
    let span_guard_pct = env_f64("SPAN_GUARD_PCT", 25.0);
    let hist = AtomicHistogram::new();
    let mut bare_ns = f64::INFINITY;
    let mut null_ns = f64::INFINITY;
    let mut mono_ns = f64::INFINITY;
    for _ in 0..passes.max(2) {
        bare_ns = bare_ns.min(bare_span_pass());
        null_ns = null_ns.min(span_pass::<NullClock>(&hist));
        mono_ns = mono_ns.min(span_pass::<MonotonicClock>(&hist));
    }
    // ns/op deltas at this scale sit inside timer noise; guard on the
    // ratio of loop rates instead.
    let span_ratio = bare_ns / null_ns;
    let span_verdict = if span_ratio >= 1.0 - span_guard_pct / 100.0 {
        "ok"
    } else {
        "REGRESSION"
    };

    let ratio = best / baseline;
    let verdict = if ratio >= 1.0 - guard_pct / 100.0 {
        "ok"
    } else {
        "REGRESSION"
    };
    let audit_ratio = audit_best / best;
    let audit_verdict = if audit_ratio >= 1.0 - audit_guard_pct / 100.0 {
        "ok"
    } else {
        "REGRESSION"
    };
    println!(
        concat!(
            "{{\n",
            "  \"baseline_contacts_per_sec\": {:.0},\n",
            "  \"null_probe_contacts_per_sec\": {:.0},\n",
            "  \"ratio\": {:.4},\n",
            "  \"guard_pct\": {},\n",
            "  \"counting_probe_contacts_per_sec\": {:.0},\n",
            "  \"counting_probe_events\": {},\n",
            "  \"audit_probe_contacts_per_sec\": {:.0},\n",
            "  \"audit_probe_events\": {},\n",
            "  \"audit_ratio\": {:.4},\n",
            "  \"audit_guard_pct\": {},\n",
            "  \"audit_verdict\": \"{}\",\n",
            "  \"span_bare_ns_per_op\": {:.3},\n",
            "  \"span_null_ns_per_op\": {:.3},\n",
            "  \"span_monotonic_ns_per_op\": {:.3},\n",
            "  \"span_ratio\": {:.4},\n",
            "  \"span_guard_pct\": {},\n",
            "  \"span_verdict\": \"{}\",\n",
            "  \"verdict\": \"{}\"\n",
            "}}"
        ),
        baseline,
        best,
        ratio,
        guard_pct,
        counting_rate,
        c_events,
        audit_best,
        audit_events,
        audit_ratio,
        audit_guard_pct,
        audit_verdict,
        bare_ns,
        null_ns,
        mono_ns,
        span_ratio,
        span_guard_pct,
        span_verdict,
        verdict
    );
    if verdict != "ok" {
        eprintln!(
            "bench_probe_overhead: NullProbe path at {:.1}% of baseline (allowed floor {:.1}%)",
            100.0 * ratio,
            100.0 - guard_pct
        );
        std::process::exit(1);
    }
    if audit_verdict != "ok" {
        eprintln!(
            "bench_probe_overhead: audited path at {:.1}% of the NullProbe rate (allowed floor {:.1}%)",
            100.0 * audit_ratio,
            100.0 - audit_guard_pct
        );
        std::process::exit(1);
    }
    if span_verdict != "ok" {
        eprintln!(
            "bench_probe_overhead: NullClock span loop at {:.1}% of the bare loop (allowed floor {:.1}%)",
            100.0 * span_ratio,
            100.0 - span_guard_pct
        );
        std::process::exit(1);
    }
}
