//! # dtn-bench — Criterion benchmarks, one per paper table/figure
//!
//! Every figure and table of the paper has a bench target that runs its
//! driver over a reduced sweep (one load level, one replication,
//! sequential), so `cargo bench` both times and continuously exercises
//! each experiment path. The `repro` binary in `dtn-experiments` is the
//! tool that regenerates the *full* figures; these benches answer "how
//! expensive is each experiment, and did a change regress the simulator?"
//!
//! Ablation benches time the simulator under each policy axis variation
//! (eviction rules, P/Q values, TTL constants, dynamic-TTL multipliers,
//! EC thresholds, link speeds), pinning the cost of every design choice
//! DESIGN.md calls out.

use criterion::Criterion;
use dtn_epidemic::{simulate, ProtocolConfig, RunMetrics, SimConfig, Workload};
use dtn_experiments::{Figure, Mobility, SweepConfig};
use dtn_sim::{SimDuration, SimRng, Threads};

/// The reduced sweep used inside benches: one mid-range load, one
/// replication, no worker threads (Criterion owns the machine).
pub fn bench_sweep_config() -> SweepConfig {
    SweepConfig {
        loads: vec![25],
        replications: 1,
        threads: Threads::Sequential,
        ..SweepConfig::default()
    }
}

/// Benchmark one figure driver end to end (trace/workload generation plus
/// simulation plus aggregation).
pub fn bench_figure_driver(c: &mut Criterion, id: &str, driver: fn(&SweepConfig) -> Figure) {
    let cfg = bench_sweep_config();
    c.bench_function(id, |b| {
        b.iter(|| std::hint::black_box(driver(&cfg)));
    });
}

/// Look up a figure driver from the registry by id (panics on unknown id
/// — bench targets are compiled against the registry, so a rename fails
/// loudly).
pub fn figure_driver(id: &str) -> fn(&SweepConfig) -> Figure {
    dtn_experiments::all_figures()
        .into_iter()
        .find(|(fid, _)| *fid == id)
        .unwrap_or_else(|| panic!("no figure driver named {id}"))
        .1
}

/// Run one simulation of `protocol` over `mobility` at the given load —
/// the unit the ablation benches time.
pub fn one_run(protocol: ProtocolConfig, mobility: Mobility, load: u32, seed: u64) -> RunMetrics {
    let trace = mobility.build(seed, 0);
    let mut wl_rng = SimRng::new(seed ^ 0x5EED);
    let workload = Workload::single_random_flow(load, trace.node_count(), &mut wl_rng);
    let config = SimConfig {
        protocol,
        buffer_capacity: 10,
        tx_time: SimDuration::from_secs(mobility.tx_time_secs()),
        ack_slot_cost: 0.1,
        transfer_loss_prob: 0.0,
        bundle_bytes: 10_000_000,
        ack_record_bytes: 16,
        faults: Default::default(),
    };
    simulate(&trace, &workload, &config, SimRng::new(seed))
}

/// Benchmark a list of protocol variants over one mobility source, one
/// Criterion benchmark per variant, grouped under `group_name`.
pub fn bench_variants(
    c: &mut Criterion,
    group_name: &str,
    mobility: Mobility,
    variants: Vec<(String, ProtocolConfig)>,
) {
    let mut group = c.benchmark_group(group_name);
    for (label, protocol) in variants {
        group.bench_function(&label, |b| {
            b.iter(|| std::hint::black_box(one_run(protocol.clone(), mobility, 25, 7)));
        });
    }
    group.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_epidemic::protocols;

    #[test]
    fn figure_registry_lookup_works() {
        for id in ["fig07", "fig13", "fig20"] {
            let _ = figure_driver(id);
        }
    }

    #[test]
    #[should_panic(expected = "no figure driver")]
    fn unknown_figure_panics() {
        figure_driver("fig99");
    }

    #[test]
    fn one_run_produces_metrics() {
        let m = one_run(protocols::pure_epidemic(), Mobility::Trace, 10, 1);
        assert!(m.total_bundles == 10);
    }
}
