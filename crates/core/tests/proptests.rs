//! Property-based tests for the protocol layer.

use dtn_epidemic::{
    protocols, simulate, AckScheme, Buffer, BundleId, DeliveryTracker, EvictionPolicy, FlowId,
    ImmunityStore, SimConfig, StoredBundle, Workload,
};
use dtn_mobility::{Contact, ContactTrace, NodeId};
use dtn_sim::{SimRng, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn bid(seq: u32) -> BundleId {
    BundleId {
        flow: FlowId(0),
        seq,
    }
}

/// One random buffer operation.
#[derive(Clone, Debug)]
enum BufOp {
    Insert {
        seq: u32,
        ec: u32,
        at: u64,
        expires: Option<u64>,
    },
    Remove {
        seq: u32,
    },
    PurgeExpired {
        at: u64,
    },
}

fn arb_op() -> impl Strategy<Value = BufOp> {
    prop_oneof![
        (
            0u32..40,
            0u32..20,
            0u64..10_000,
            prop::option::of(0u64..20_000)
        )
            .prop_map(|(seq, ec, at, expires)| BufOp::Insert {
                seq,
                ec,
                at,
                expires
            }),
        (0u32..40).prop_map(|seq| BufOp::Remove { seq }),
        (0u64..20_000).prop_map(|at| BufOp::PurgeExpired { at }),
    ]
}

fn arb_policy() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![
        Just(EvictionPolicy::RejectNew),
        Just(EvictionPolicy::DropOldest),
        Just(EvictionPolicy::HighestEc),
        (0u32..15).prop_map(|min_ec| EvictionPolicy::HighestEcMin { min_ec }),
    ]
}

proptest! {
    /// Under any operation sequence and any eviction policy, the buffer
    /// never exceeds its capacity and never holds duplicate ids.
    #[test]
    fn buffer_capacity_and_uniqueness_invariants(
        capacity in 1usize..12,
        policy in arb_policy(),
        ops in prop::collection::vec(arb_op(), 0..200),
    ) {
        let mut buf = Buffer::new(capacity);
        for op in ops {
            match op {
                BufOp::Insert { seq, ec, at, expires } => {
                    buf.insert(
                        StoredBundle {
                            id: bid(seq),
                            ec,
                            stored_at: SimTime::from_secs(at),
                            expires_at: expires
                                .map(SimTime::from_secs)
                                .unwrap_or(SimTime::MAX),
                        },
                        policy,
                    );
                }
                BufOp::Remove { seq } => {
                    buf.remove(bid(seq));
                }
                BufOp::PurgeExpired { at } => {
                    buf.purge_expired(SimTime::from_secs(at));
                }
            }
            prop_assert!(buf.len() <= capacity);
            let ids: BTreeSet<BundleId> = buf.iter().map(|e| e.id).collect();
            prop_assert_eq!(ids.len(), buf.len(), "duplicate ids in buffer");
        }
    }

    /// purge_expired removes exactly the due entries.
    #[test]
    fn purge_expired_is_exact(
        entries in prop::collection::vec((0u32..100, 1u64..10_000), 0..10),
        now in 0u64..12_000,
    ) {
        let mut buf = Buffer::new(64);
        let mut expected_kept = BTreeSet::new();
        let mut seen = BTreeSet::new();
        for &(seq, expiry) in &entries {
            if !seen.insert(seq) {
                continue;
            }
            buf.insert(
                StoredBundle {
                    id: bid(seq),
                    ec: 0,
                    stored_at: SimTime::ZERO,
                    expires_at: SimTime::from_secs(expiry),
                },
                EvictionPolicy::RejectNew,
            );
            if expiry > now {
                expected_kept.insert(seq);
            }
        }
        buf.purge_expired(SimTime::from_secs(now));
        let kept: BTreeSet<u32> = buf.iter().map(|e| e.id.seq).collect();
        prop_assert_eq!(kept, expected_kept);
    }

    /// The delivery tracker's frontier always equals the length of the
    /// delivered prefix, for any arrival order.
    #[test]
    fn tracker_frontier_is_prefix_length(seqs in prop::collection::vec(0u32..60, 0..120)) {
        let mut tracker = DeliveryTracker::new();
        let mut reference = BTreeSet::new();
        for s in seqs {
            let fresh = tracker.record(s);
            prop_assert_eq!(fresh, reference.insert(s));
            let expected_frontier = (0..).take_while(|x| reference.contains(x)).count() as u32;
            prop_assert_eq!(tracker.frontier(), expected_frontier);
            prop_assert_eq!(tracker.delivered_count() as usize, reference.len());
        }
    }

    /// Cumulative immunity merge is monotone, idempotent and commutative
    /// in coverage.
    #[test]
    fn cumulative_merge_laws(
        a in prop::collection::btree_map(0u32..6, 0u32..100, 0..6),
        b in prop::collection::btree_map(0u32..6, 0u32..100, 0..6),
    ) {
        let mk = |m: &std::collections::BTreeMap<u32, u32>| {
            let mut store = ImmunityStore::cumulative();
            for (&flow, &n) in m {
                store.record_delivery(
                    BundleId { flow: FlowId(flow), seq: 0 },
                    n,
                );
            }
            store
        };
        let mut ab = mk(&a);
        ab.merge_from(&mk(&b));
        let mut ba = mk(&b);
        ba.merge_from(&mk(&a));
        // Commutative coverage.
        for flow in 0..6u32 {
            for seq in 0..100u32 {
                let id = BundleId { flow: FlowId(flow), seq };
                prop_assert_eq!(ab.covers(id), ba.covers(id));
            }
        }
        // Monotone: merged covers everything either side covered.
        let ia = mk(&a);
        for flow in 0..6u32 {
            for seq in (0..100u32).step_by(7) {
                let id = BundleId { flow: FlowId(flow), seq };
                if ia.covers(id) {
                    prop_assert!(ab.covers(id));
                }
            }
        }
        // Idempotent.
        let snapshot = ab.clone();
        prop_assert!(!ab.merge_from(&snapshot));
    }

    /// Per-bundle immunity merge is set union.
    #[test]
    fn per_bundle_merge_is_union(
        a in prop::collection::btree_set(0u32..50, 0..20),
        b in prop::collection::btree_set(0u32..50, 0..20),
    ) {
        let mk = |s: &BTreeSet<u32>| {
            let mut store = ImmunityStore::per_bundle();
            for &seq in s {
                store.record_delivery(bid(seq), 0);
            }
            store
        };
        let mut merged = mk(&a);
        merged.merge_from(&mk(&b));
        for seq in 0..50u32 {
            prop_assert_eq!(
                merged.covers(bid(seq)),
                a.contains(&seq) || b.contains(&seq)
            );
        }
        prop_assert_eq!(merged.record_count() as usize, a.union(&b).count());
    }

    /// End-to-end sanity for random scenarios and every protocol: the
    /// metrics respect their definitions and identical seeds reproduce
    /// identical runs.
    #[test]
    fn simulation_invariants_hold_for_random_scenarios(
        seed in any::<u64>(),
        protocol_idx in 0usize..8,
        k in 1u32..20,
        contacts_seed in any::<u64>(),
    ) {
        // Random mini-trace: 6 nodes, ~40 contacts.
        let mut rng = SimRng::new(contacts_seed);
        let mut contacts = Vec::new();
        let mut t = 0u64;
        for _ in 0..40 {
            t += rng.range_inclusive(10, 2_000);
            let a = rng.below(6) as u16;
            let b = {
                let r = rng.below(5) as u16;
                if r >= a { r + 1 } else { r }
            };
            let dur = rng.range_inclusive(50, 600);
            contacts.push(Contact::new(
                NodeId(a),
                NodeId(b),
                SimTime::from_secs(t),
                SimTime::from_secs(t + dur),
            ));
        }
        let horizon = SimTime::from_secs(t + 1_000);
        let trace = ContactTrace::new(6, horizon, contacts).unwrap();
        let workload = Workload::single_flow(NodeId(0), NodeId(5), k, 6);
        let protocol = protocols::all_protocols().swap_remove(protocol_idx);
        let config = SimConfig::paper_defaults(protocol);

        let run = |s: u64| simulate(&trace, &workload, &config, SimRng::new(s));
        let m = run(seed);
        // Determinism.
        prop_assert_eq!(m, run(seed));
        // Metric definitions.
        prop_assert!(m.delivered <= m.total_bundles);
        prop_assert!((0.0..=1.0).contains(&m.delivery_ratio));
        prop_assert!(m.avg_duplication_rate >= 0.0 && m.avg_duplication_rate <= 1.0);
        prop_assert!(m.avg_buffer_occupancy >= 0.0);
        prop_assert!(m.peak_buffer_occupancy >= m.avg_buffer_occupancy - 1e-9);
        if let Some(done) = m.completion_time {
            prop_assert!(m.delivered == m.total_bundles);
            prop_assert!(done <= horizon);
            prop_assert_eq!(m.end_time, done);
        } else {
            prop_assert!(m.delivered < m.total_bundles);
            prop_assert_eq!(m.end_time, horizon);
        }
        // A delivery requires at least one transmission each.
        prop_assert!(m.bundle_transmissions >= m.delivered as u64);
        // Conservation: every transmission ends exactly one way — a
        // delivery, a store, a rejection, or a loss.
        prop_assert!(
            m.delivered as u64 + m.rejections + m.transfer_losses <= m.bundle_transmissions
        );
        let stores =
            m.bundle_transmissions - m.delivered as u64 - m.rejections - m.transfer_losses;
        // Copies can only be dropped if they were stored or injected at a
        // source.
        prop_assert!(
            m.evictions + m.expirations + m.immunity_purges
                <= stores + m.total_bundles as u64,
            "drops exceed stores+injected"
        );
        // Byte accounting mirrors the transmission counter.
        prop_assert_eq!(
            m.payload_bytes_sent,
            m.bundle_transmissions * config.bundle_bytes
        );
        // Ack-less protocols send no immunity records and purge nothing.
        if matches!(config.protocol.ack, AckScheme::None) {
            prop_assert_eq!(m.ack_records_sent, 0);
            prop_assert_eq!(m.immunity_purges, 0);
        }
    }

    /// The invariants hold not just for the eight presets but for
    /// arbitrary points of the policy space (including lossy links).
    #[test]
    fn simulation_invariants_hold_for_arbitrary_configs(
        seed in any::<u64>(),
        transmit_idx in 0usize..2,
        p in 0.0f64..=1.0,
        q in 0.0f64..=1.0,
        lifetime_idx in 0usize..4,
        ttl_secs in 50u64..5_000,
        multiplier in 0.1f64..8.0,
        threshold in 0u32..16,
        eviction in arb_policy(),
        ack_idx in 0usize..3,
        dest_only in any::<bool>(),
        loss in 0.0f64..=1.0,
    ) {
        use dtn_epidemic::{AckPropagation, LifetimePolicy, ProtocolConfig, TransmitPolicy};
        use dtn_sim::SimDuration;
        let protocol = ProtocolConfig {
            name: "fuzz",
            transmit: match transmit_idx {
                0 => TransmitPolicy::Always,
                _ => TransmitPolicy::Probabilistic { p, q },
            },
            lifetime: match lifetime_idx {
                0 => LifetimePolicy::None,
                1 => LifetimePolicy::FixedTtl {
                    ttl: SimDuration::from_secs(ttl_secs),
                },
                2 => LifetimePolicy::DynamicTtl { multiplier },
                _ => LifetimePolicy::EcTtl {
                    threshold,
                    base: SimDuration::from_secs(ttl_secs),
                    decay: SimDuration::from_secs(100),
                },
            },
            eviction,
            ack: match ack_idx {
                0 => AckScheme::None,
                1 => AckScheme::PerBundle,
                _ => AckScheme::Cumulative,
            },
            ack_propagation: if dest_only {
                AckPropagation::DestinationOnly
            } else {
                AckPropagation::Epidemic
            },
            summary: dtn_epidemic::SummaryPolicy::default(),
        };
        let trace = dtn_mobility::HaggleParams {
            nodes: 6,
            horizon: dtn_sim::SimTime::from_secs(80_000),
            ..Default::default()
        }
        .generate(&mut SimRng::new(seed ^ 0xF00D));
        let workload = Workload::single_flow(NodeId(0), NodeId(5), 8, 6);
        let mut config = SimConfig::paper_defaults(protocol);
        config.transfer_loss_prob = loss;
        let m = simulate(&trace, &workload, &config, SimRng::new(seed));
        prop_assert!(m.delivered <= m.total_bundles);
        prop_assert!((0.0..=1.0).contains(&m.delivery_ratio));
        prop_assert!(m.avg_duplication_rate >= -1e-12 && m.avg_duplication_rate <= 1.0);
        prop_assert!(
            m.delivered as u64 + m.rejections + m.transfer_losses <= m.bundle_transmissions
        );
        // Determinism under arbitrary configs too.
        prop_assert_eq!(m, simulate(&trace, &workload, &config, SimRng::new(seed)));
    }

    /// Delivery can never exceed what the temporal-reachability oracle
    /// allows: if the destination is unreachable from the source, nothing
    /// arrives, under any protocol.
    #[test]
    fn unreachable_destination_gets_nothing(
        seed in any::<u64>(),
        protocol_idx in 0usize..8,
    ) {
        // Source 0 only ever meets node 1 *after* node 1's only contact
        // with destination 2 — no space-time path exists.
        let contacts = vec![
            Contact::new(NodeId(1), NodeId(2), SimTime::from_secs(100), SimTime::from_secs(400)),
            Contact::new(NodeId(0), NodeId(1), SimTime::from_secs(1_000), SimTime::from_secs(1_400)),
        ];
        let trace = ContactTrace::new(3, SimTime::from_secs(10_000), contacts).unwrap();
        prop_assert!(!trace.temporal_reachability(NodeId(0), SimTime::ZERO)[2]);
        let workload = Workload::single_flow(NodeId(0), NodeId(2), 5, 3);
        let protocol = protocols::all_protocols().swap_remove(protocol_idx);
        let m = simulate(&trace, &workload, &SimConfig::paper_defaults(protocol), SimRng::new(seed));
        prop_assert_eq!(m.delivered, 0);
    }

    /// A Bloom filter never produces a false negative: every inserted
    /// member tests positive, at any geometry the protocol layer can
    /// request.
    #[test]
    fn bloom_filter_has_no_false_negatives(
        members in prop::collection::btree_set(0u64..100_000, 0..200),
        expected in 1u32..400,
        fp_idx in 0usize..4,
    ) {
        let fp_rate = [0.001, 0.01, 0.1, 0.5][fp_idx];
        let mut bf = dtn_epidemic::BloomFilter::for_expected(expected, fp_rate);
        for &m in &members {
            bf.insert(m);
        }
        for &m in &members {
            prop_assert!(bf.contains(m), "false negative for {m}");
        }
    }

    /// The measured false-positive rate of a filter sized for exactly its
    /// load stays within 2x of the analytic `(1 - e^(-kn/m))^k`
    /// prediction (plus a small absolute floor so tiny probabilities
    /// aren't judged on a handful of lucky probes).
    #[test]
    fn bloom_filter_fp_rate_tracks_the_analytic_prediction(
        seed in any::<u64>(),
        n in 20u32..200,
        fp_idx in 0usize..2,
    ) {
        let fp_rate = [0.01, 0.1][fp_idx];
        let params = dtn_epidemic::bloom_params(n, fp_rate);
        let mut bf = dtn_epidemic::BloomFilter::new(params);
        // Members and probes are disjoint by construction: members are
        // even, probes odd.
        for i in 0..u64::from(n) {
            bf.insert(i * 2);
        }
        let mut rng = SimRng::new(seed);
        let probes = 4_000u64;
        let mut hits = 0u64;
        for _ in 0..probes {
            let probe = rng.below(1 << 40) * 2 + 1;
            if bf.contains(probe) {
                hits += 1;
            }
        }
        let measured = hits as f64 / probes as f64;
        let predicted = params.analytic_fp_rate(n);
        prop_assert!(
            measured <= predicted * 2.0 + 0.02,
            "measured FP {measured} vs predicted {predicted} (n={n}, target {fp_rate})"
        );
    }

    /// Union is idempotent and commutative, and merging preserves every
    /// member of both operands (no false negatives through merge either).
    #[test]
    fn bloom_filter_union_is_idempotent_and_commutative(
        left in prop::collection::btree_set(0u64..50_000, 0..120),
        right in prop::collection::btree_set(0u64..50_000, 0..120),
        expected in 1u32..300,
    ) {
        let params = dtn_epidemic::bloom_params(expected, 0.01);
        let mut a = dtn_epidemic::BloomFilter::new(params);
        let mut b = dtn_epidemic::BloomFilter::new(params);
        for &m in &left {
            a.insert(m);
        }
        for &m in &right {
            b.insert(m);
        }
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba, "union is not commutative");
        let mut abb = ab.clone();
        abb.union_with(&b);
        abb.union_with(&a);
        prop_assert_eq!(&abb, &ab, "union is not idempotent");
        for &m in left.iter().chain(&right) {
            prop_assert!(ab.contains(m), "merge lost member {m}");
        }
    }
}
