//! The contact session: what happens when two nodes meet.
//!
//! Every protocol in the study shares one session procedure — that shared
//! procedure *is* the paper's unified framework. When a contact starts:
//!
//! 1. expired copies are purged (defensively — the engine's expiry events
//!    normally keep buffers clean between contacts);
//! 2. both nodes update their inter-encounter interval estimate (the input
//!    to dynamic TTL);
//! 3. if the protocol uses acknowledgments, the peers exchange immunity
//!    tables, merge them, purge covered copies, and the exchanged record
//!    counts are charged to the signaling-overhead meter;
//! 4. the peers exchange summary vectors (the anti-entropy step of Vahdat
//!    & Becker) to learn which bundles the other side lacks;
//! 5. bundles are transferred, bounded by the contact's capacity
//!    `⌊duration / tx_time⌋` (the paper fixes `tx_time` = 100 s; its worked
//!    example sends ⌊314 s / 100 s⌋ = 3 bundles). The lower-ID node sends
//!    first (the paper's collision-avoidance rule); the higher-ID node uses
//!    whatever capacity remains. Transfers take effect at session start but
//!    are *timestamped* `start + slot × tx_time` for the delay metric.
//!
//! Per-transfer mechanics implement each policy axis: P/Q coin flips on
//! the sender, EC increments shared by sender and receiver copies, fixed-
//! TTL renewal on the sender, dynamic-TTL assignment on the receiver, and
//! Algorithm 2's EC-triggered TTL on both sides.

use crate::buffer::{InsertOutcome, StoredBundle};
use crate::bundle::{BundleId, Workload};
use crate::faults::{validate_probability, FaultInjector, FaultPlan};
use crate::metrics::{DropReason, MetricsCollector};
use crate::node::{CopyPlace, Node};
use crate::policy::{AckScheme, LifetimePolicy, ProtocolConfig, SummaryPolicy};
use crate::probe::{Event, NullProbe, Probe};
use crate::summary::{bloom_params, BloomFilter, SummaryVector};
use dtn_mobility::Contact;
use dtn_sim::{SimRng, SimTime};

/// Simulation-wide configuration shared by every session.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The protocol under test.
    pub protocol: ProtocolConfig,
    /// Relay-buffer capacity in bundles (paper: 10).
    pub buffer_capacity: usize,
    /// Time to transmit one bundle (paper: 100 s — bundles are large).
    pub tx_time: dtn_sim::SimDuration,
    /// Buffer-slot cost of storing one immunity record. Bundles are huge
    /// (100 s of link time each) and immunity records small, but not
    /// free: the paper attributes the immunity protocols' occupancy
    /// differences to "immunity tables stored in each node".
    pub ack_slot_cost: f64,
    /// Probability that an individual bundle transfer is lost in flight
    /// (failure injection; the paper assumes loss-free links, so the
    /// default is 0). A lost transfer consumes its slot and updates the
    /// sender exactly like a successful one — in a DTN the sender cannot
    /// know the reception failed — but the receiver stores nothing.
    pub transfer_loss_prob: f64,
    /// Payload size of one bundle in bytes, for the byte-level overhead
    /// accounting (the paper's bundles are "several hundreds of Megabytes
    /// to Terabytes"; 10 MB at 100 s/bundle models a ~0.8 Mbit/s radio).
    pub bundle_bytes: u64,
    /// Wire size of one immunity record ("anti-packets … are usually
    /// small in size", §II-B).
    pub ack_record_bytes: u64,
    /// Fault injection (truncation, churn, bursty loss, ack loss). The
    /// default plan is all-zero: no faults, no RNG draws, bit-identical
    /// results to the pre-fault simulator.
    pub faults: FaultPlan,
}

impl SimConfig {
    /// The paper's experiment defaults around the given protocol.
    pub fn paper_defaults(protocol: ProtocolConfig) -> SimConfig {
        SimConfig {
            protocol,
            buffer_capacity: 10,
            tx_time: dtn_sim::SimDuration::from_secs(100),
            ack_slot_cost: 0.1,
            transfer_loss_prob: 0.0,
            bundle_bytes: 10_000_000,
            ack_record_bytes: 16,
            faults: FaultPlan::default(),
        }
    }

    /// Validate every probability knob (finite, in `[0, 1]`), every
    /// timing knob (finite, positive), and the buffer geometry, so a
    /// typo'd or NaN rate fails loudly instead of silently skewing the
    /// sampler or panicking deep in the hot path (a zero `tx_time` would
    /// turn the per-contact slot division into `u64::MAX` slots; a zero
    /// capacity would trip the buffer constructor's assert mid-run). The
    /// simulation driver calls this before every run; the CLI calls it
    /// at arg-parse time for a clean error message.
    pub fn validate(&self) -> Result<(), String> {
        validate_probability("transfer_loss_prob", self.transfer_loss_prob)?;
        if self.tx_time.is_zero() {
            return Err(
                "tx_time must be positive and finite, got a zero or non-finite duration"
                    .to_string(),
            );
        }
        if !self.ack_slot_cost.is_finite() || self.ack_slot_cost < 0.0 {
            return Err(format!(
                "ack_slot_cost must be finite and non-negative, got {}",
                self.ack_slot_cost
            ));
        }
        if self.buffer_capacity == 0 {
            return Err("buffer_capacity must be at least 1 bundle, got 0".to_string());
        }
        self.faults.validate()
    }
}

/// Reusable scratch space for the session hot path.
///
/// One instance lives in the simulation engine and is threaded through
/// every contact, so the per-contact summary vector and candidate/purge
/// lists reuse the same allocations for the whole run instead of being
/// rebuilt thousands of times. All fields are implementation detail: a
/// session treats them as uninitialized on entry and leaves them in an
/// unspecified state.
#[derive(Debug, Default)]
pub struct SessionScratch {
    /// The receiver's true membership for one transfer phase (always
    /// exact; under a Bloom summary policy this is the engine-side ground
    /// truth that false positives are detected against).
    rx_summary: SummaryVector,
    /// The receiver's advertised Bloom digest (unused under
    /// [`SummaryPolicy::Exact`]).
    rx_bloom: BloomFilter,
    /// Transfer candidates destined to the receiver.
    dest: Vec<BundleId>,
    /// Transfer candidates bound for another relay hop.
    relay: Vec<BundleId>,
    /// Ids collected by the expiry/immunity purges.
    purged: Vec<BundleId>,
    /// Dense bundle-index → id table (the SoA candidate split reads ids
    /// off this instead of re-deriving them per record). Empty unless
    /// [`SessionScratch::prepare`] ran — sessions fall back to the record
    /// walk then.
    ids: Vec<BundleId>,
    /// Per-node destination masks over the dense bundle indexing:
    /// `dest_masks[n]` holds exactly the bundles whose flow terminates at
    /// node `n`, so the dest/relay candidate split is a word-wise AND.
    dest_masks: Vec<SummaryVector>,
}

impl SessionScratch {
    /// Precompute the run-lived lookup tables that let the candidate
    /// split iterate 64-bundle words instead of records: the dense
    /// index → id table and one destination mask per node. The engine
    /// calls this once per run; sessions on an unprepared scratch use the
    /// record-walk path with identical results.
    pub fn prepare(&mut self, workload: &Workload, node_count: usize) {
        self.ids.clear();
        self.ids.extend(workload.bundle_ids());
        let total = workload.total_bundles();
        self.dest_masks.clear();
        self.dest_masks
            .resize_with(node_count, SummaryVector::default);
        for mask in &mut self.dest_masks {
            mask.reset(total);
        }
        for flow in workload.flows() {
            let dst = flow.dst.index();
            for seq in 0..flow.count {
                let idx = workload.bundle_index(BundleId { flow: flow.id, seq });
                self.dest_masks[dst].insert(idx);
            }
        }
    }
}

/// Mutable context threaded through a session.
///
/// The probe parameter is *monomorphized* (never `dyn`): with the default
/// [`NullProbe`] every `emit` site is an `if false` the optimizer deletes,
/// so the un-instrumented hot path is bit-identical to the pre-probe code.
pub struct SessionCtx<'a, P: Probe = NullProbe> {
    /// Global configuration.
    pub config: &'a SimConfig,
    /// The workload (for flow lookups: who is a bundle's source and
    /// destination).
    pub workload: &'a Workload,
    /// Metrics sink.
    pub metrics: &'a mut MetricsCollector,
    /// Randomness (P–Q coin flips).
    pub rng: &'a mut SimRng,
    /// Run-lived scratch allocations.
    pub scratch: &'a mut SessionScratch,
    /// Event observer (see [`crate::probe`]).
    pub probe: &'a mut P,
    /// Fault sampling state (a disabled injector draws nothing; see
    /// [`crate::faults`]).
    pub faults: &'a mut FaultInjector,
}

impl<P: Probe> SessionCtx<'_, P> {
    /// Record an event. The closure only runs when the probe is enabled,
    /// so a disabled probe pays neither the call nor the event
    /// construction.
    #[inline(always)]
    pub(crate) fn emit(&mut self, make: impl FnOnce() -> Event) {
        if P::ENABLED {
            self.probe.record(&make());
        }
    }
}

/// Run the full exchange for one contact. `a` and `b` must be the contact's
/// endpoints.
pub fn run_contact<P: Probe>(
    a: &mut Node,
    b: &mut Node,
    contact: &Contact,
    ctx: &mut SessionCtx<'_, P>,
) {
    debug_assert_eq!((a.id, b.id), (contact.a, contact.b));
    ctx.metrics.contacts_processed += 1;
    let now = contact.start;
    ctx.emit(|| Event::ContactBegin {
        a: contact.a.index() as u32,
        b: contact.b.index() as u32,
        t: now.as_millis(),
    });

    // 1. Defensive expiry purge (engine expiry events normally precede us).
    // The purge list is scratch taken out of the context so the metrics
    // sink stays borrowable inside the loop.
    let mut purged = std::mem::take(&mut ctx.scratch.purged);
    for node in [&mut *a, &mut *b] {
        purged.clear();
        node.purge_expired_into(now, &mut purged);
        let nid = node.id.index() as u32;
        for &id in &purged {
            let idx = ctx.workload.bundle_index(id);
            node.bits.clear_copy(idx);
            ctx.metrics
                .on_drop(idx, node.id.index(), now, DropReason::Expired);
            ctx.emit(|| Event::Drop {
                flow: id.flow.0,
                seq: id.seq,
                node: nid,
                t: now.as_millis(),
                reason: DropReason::Expired,
            });
        }
    }
    ctx.scratch.purged = purged;

    // 2. Encounter bookkeeping (before any TTL assignment, so a bundle
    // received in this contact uses the interval *ending* at this contact,
    // per Algorithm 1).
    a.record_encounter(now);
    b.record_encounter(now);

    // 2b. Encounter counts. A relay copy's EC grows with every encounter
    // its holder takes part in — the count measures how many forwarding
    // opportunities the copy has lived through. The transmission event of
    // the paper's Fig. 5 additionally increments the sender's count and
    // propagates it to the receiver, so a lineage's EC accumulates across
    // hops. Origin copies are the application's send queue and do not
    // age. Algorithm 2's EC-dependent TTL is evaluated at
    // store/transmission time, not here — aging only grows the count that
    // eviction and the next store decision will read. (DESIGN.md §4
    // records this interpretation decision.) Skipped when no configured
    // policy reads EC: the counts then influence nothing observable, and
    // most of the study's protocols are in that class.
    if ctx.config.protocol.observes_ec() {
        a.buffer.age_all();
        b.buffer.age_all();
    }

    // 3. Immunity exchange.
    if ctx.config.protocol.ack != AckScheme::None {
        exchange_immunity(a, b, now, ctx);
    }

    // 4 + 5. Summary vectors and transfers under the shared capacity.
    let mut slots_left = contact.duration().div_whole(ctx.config.tx_time);
    // Fault injection: the session can be cut mid-exchange — summary
    // vectors and immunity tables already flowed, but only the first k
    // transfer slots survive the link drop.
    if let Some(k) = ctx.faults.truncate_slots(slots_left) {
        let slots_lost = slots_left - k;
        slots_left = k;
        ctx.metrics.sessions_truncated += 1;
        ctx.emit(|| Event::SessionTruncated {
            a: contact.a.index() as u32,
            b: contact.b.index() as u32,
            t: now.as_millis(),
            slots_lost,
        });
    }
    let mut slots_used: u64 = 0;
    let mut advert_bytes: u64 = 0;
    // Bloom digests are charged against the contact's capacity through a
    // byte debt shared by both phases: whole `bundle_bytes` of accumulated
    // signaling forfeit one transfer slot. Exact summary vectors keep the
    // seed semantics (metered on the wire, not capacity-charged).
    let mut signal_debt: u64 = 0;
    let mut fp_count: u64 = 0;
    // Lower ID first — `Contact` normalizes a < b.
    transfer_phase(
        a,
        b,
        now,
        &mut slots_left,
        &mut slots_used,
        &mut advert_bytes,
        &mut signal_debt,
        &mut fp_count,
        ctx,
    );
    transfer_phase(
        b,
        a,
        now,
        &mut slots_left,
        &mut slots_used,
        &mut advert_bytes,
        &mut signal_debt,
        &mut fp_count,
        ctx,
    );
    ctx.emit(|| Event::ContactEnd {
        a: contact.a.index() as u32,
        b: contact.b.index() as u32,
        t: now.as_millis(),
        slots_used,
        control_bytes: advert_bytes,
        false_positives: fp_count,
    });
}

/// Exchange and merge immunity stores, purge covered copies, and charge
/// the signaling meter.
fn exchange_immunity<P: Probe>(
    a: &mut Node,
    b: &mut Node,
    now: SimTime,
    ctx: &mut SessionCtx<'_, P>,
) {
    let (Some(store_a), Some(store_b)) = (a.immunity.as_ref(), b.immunity.as_ref()) else {
        unreachable!("ack scheme active but immunity stores missing");
    };
    // Who gets to share? Under epidemic propagation everyone does; under
    // destination-only propagation a node shares its table only if it is
    // itself the destination of some flow — relays consume tables but
    // never re-disseminate them.
    let shares = |node: &Node| match ctx.config.protocol.ack_propagation {
        crate::policy::AckPropagation::Epidemic => true,
        crate::policy::AckPropagation::DestinationOnly => {
            ctx.workload.flows().iter().any(|f| f.dst == node.id)
        }
    };
    let a_shares = shares(a);
    let b_shares = shares(b);

    // Meter before merging: each side transmits its *pre-exchange* table.
    let count_a = store_a.record_count();
    let count_b = store_b.record_count();
    if a_shares {
        ctx.metrics.ack_records_sent += count_a;
        ctx.metrics.control_bytes_sent += count_a * ctx.config.ack_record_bytes;
    }
    if b_shares {
        ctx.metrics.ack_records_sent += count_b;
        ctx.metrics.control_bytes_sent += count_b * ctx.config.ack_record_bytes;
    }

    // Control-plane fault injection: each shared table is lost
    // independently per direction. The signaling meter above still
    // charged the sender — in a DTN it cannot know the reception failed.
    let b_to_a_lost = b_shares && ctx.faults.ack_lost();
    let a_to_b_lost = a_shares && ctx.faults.ack_lost();
    if b_to_a_lost {
        ctx.metrics.ack_losses += 1;
        ctx.emit(|| Event::AckLost {
            from: b.id.index() as u32,
            to: a.id.index() as u32,
            t: now.as_millis(),
        });
    }
    if a_to_b_lost {
        ctx.metrics.ack_losses += 1;
        ctx.emit(|| Event::AckLost {
            from: a.id.index() as u32,
            to: b.id.index() as u32,
            t: now.as_millis(),
        });
    }

    // Merge in place, no snapshots: both encodings' merges are idempotent
    // and monotone (set union / per-flow max), so merging b's original
    // table into a first and then a's *merged* table into b yields exactly
    // the snapshot semantics — b ∪ (a₀ ∪ b₀) = b₀ ∪ a₀. (With one
    // direction lost, the surviving direction still transfers the
    // sender's pre-exchange table, which is exactly what went on the
    // wire.)
    if b_shares && !b_to_a_lost {
        let theirs = b.immunity.as_ref().expect("checked above");
        a.immunity
            .as_mut()
            .expect("checked above")
            .merge_from(theirs);
    }
    if a_shares && !a_to_b_lost {
        let theirs = a.immunity.as_ref().expect("checked above");
        b.immunity
            .as_mut()
            .expect("checked above")
            .merge_from(theirs);
    }

    let mut purged = std::mem::take(&mut ctx.scratch.purged);
    let sent_a = if a_shares { count_a } else { 0 };
    let sent_b = if b_shares { count_b } else { 0 };
    for (node, sent) in [(&mut *a, sent_a), (&mut *b, sent_b)] {
        purged.clear();
        node.purge_immunized_into(&mut purged);
        let nid = node.id.index() as u32;
        for &id in &purged {
            let idx = ctx.workload.bundle_index(id);
            node.bits.clear_copy(idx);
            ctx.metrics
                .on_drop(idx, node.id.index(), now, DropReason::Immunized);
            ctx.emit(|| Event::AckPurge {
                flow: id.flow.0,
                seq: id.seq,
                node: nid,
                t: now.as_millis(),
            });
        }
        let records = node
            .immunity
            .as_ref()
            .map(|s| s.record_count())
            .unwrap_or(0);
        ctx.metrics.set_ack_records(node.id.index(), records, now);
        ctx.emit(|| Event::ImmunityMerge {
            node: nid,
            sent,
            records,
            t: now.as_millis(),
        });
    }
    ctx.scratch.purged = purged;
}

/// Push the ids of every set bit of `bits` (a word at word-index `wi` of
/// the dense bundle indexing) onto `out`, in ascending index order.
#[inline]
fn push_word_ids(ids: &[BundleId], wi: usize, mut bits: u64, out: &mut Vec<BundleId>) {
    while bits != 0 {
        let bit = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        out.push(ids[wi * 64 + bit]);
    }
}

/// One direction of the exchange: `tx` sends to `rx` while capacity lasts.
#[allow(clippy::too_many_arguments)]
fn transfer_phase<P: Probe>(
    tx: &mut Node,
    rx: &mut Node,
    now: SimTime,
    slots_left: &mut u64,
    slots_used: &mut u64,
    advert_bytes: &mut u64,
    signal_debt: &mut u64,
    fp_count: &mut u64,
    ctx: &mut SessionCtx<'_, P>,
) {
    if *slots_left == 0 {
        return;
    }
    // Snapshot the candidate list: bundles the receiver lacks.
    //
    // Ordering policy (the paper leaves it open; DESIGN.md records it):
    // * bundles *destined to the receiver* go first, in (flow, seq)
    //   order — final delivery retires a bundle, so it outranks another
    //   relay hop, and in-sequence arrival is what lets the cumulative
    //   immunity table's contiguous frontier advance (the same reason
    //   cumulative-ACK transports deliver in order);
    // * relay-bound bundles follow. Under the *cumulative* ack scheme
    //   they stay in strict (flow, seq) order — in-order forwarding is
    //   part of a cumulative-ack design (the paper's "table with bundle
    //   ID 30 means bundles 1 to 30 are delivered" presumes it), since an
    //   out-of-order delivery stalls the frontier and the table
    //   acknowledges nothing. Under every other scheme the sorted list is
    //   rotated by a seeded random offset: with one or two transfer slots
    //   per contact, a fixed order would let the head of the list
    //   monopolize transmissions (and the TTL renewals they grant) while
    //   the tail starves.
    // The receiver advertises its summary vector once; membership checks
    // against it are O(1) and it is updated as transfers land. The
    // advertisement costs one bit per workload bundle on the wire.
    //
    // The vector and the two candidate lists are scratch taken out of the
    // context (and restored at the end), so a phase allocates nothing.
    // Candidates are split into the two priority classes during the single
    // scan of the sender's stores and each class is sorted on its own —
    // candidate ids are distinct (the summary-vector filter excludes
    // duplicates), so this equals the seed's sort-then-stable-partition
    // both in membership and in order.
    let mut rx_summary = std::mem::take(&mut ctx.scratch.rx_summary);
    rx_summary.refill_from_node(rx, ctx.workload);
    let mut rx_bloom = std::mem::take(&mut ctx.scratch.rx_bloom);
    let bloom = match ctx.config.protocol.summary {
        SummaryPolicy::Exact => false,
        SummaryPolicy::Bloom { fp_rate } => {
            // The wire digest: the receiver's true membership hashed into
            // a Bloom filter sized by Marandi's m/k optimization for the
            // workload's bundle count at the configured FP target.
            rx_bloom.reset(bloom_params(ctx.workload.total_bundles(), fp_rate));
            for wi in 0..rx_summary.word_count() {
                let mut w = rx_summary.word(wi);
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    rx_bloom.insert((wi * 64 + bit) as u64);
                }
            }
            true
        }
    };
    let advert = if bloom {
        rx_bloom.wire_bytes()
    } else {
        u64::from(rx_summary.capacity()).div_ceil(8)
    };
    ctx.metrics.control_bytes_sent += advert;
    ctx.metrics.signaling_bytes += advert;
    if P::ENABLED {
        *advert_bytes += advert;
    }
    if bloom && ctx.config.bundle_bytes > 0 {
        // Capacity charge: every whole bundle's worth of digest bytes
        // forfeits one transfer slot. The debt persists across both
        // phases so fractional adverts still add up.
        *signal_debt += advert;
        while *signal_debt >= ctx.config.bundle_bytes && *slots_left > 0 {
            *signal_debt -= ctx.config.bundle_bytes;
            *slots_left -= 1;
            *slots_used += 1;
        }
        if *slots_left == 0 {
            ctx.scratch.rx_summary = rx_summary;
            ctx.scratch.rx_bloom = rx_bloom;
            return;
        }
    }
    let mut dest = std::mem::take(&mut ctx.scratch.dest);
    let mut relay = std::mem::take(&mut ctx.scratch.relay);
    dest.clear();
    relay.clear();
    let ids = std::mem::take(&mut ctx.scratch.ids);
    let dest_masks = std::mem::take(&mut ctx.scratch.dest_masks);
    let rxi = rx.id.index();
    // SoA fast path: when the engine prepared the lookup tables and
    // maintains the possession planes, the candidate split iterates
    // 64-bundle words. Ascending dense-index order equals ascending
    // `BundleId` order (the indexing is monotone in (flow, seq)), so the
    // lists come out exactly as the record-scan-then-sort below produces.
    if let (false, Some(copies), Some(mask)) =
        (ids.is_empty(), tx.bits.copy_plane(), dest_masks.get(rxi))
    {
        if bloom {
            for wi in 0..copies.word_count() {
                let mut cand = copies.word(wi);
                while cand != 0 {
                    let bit = cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    let idx = wi * 64 + bit;
                    if rx_bloom.contains(idx as u64) {
                        if !rx_summary.contains(idx) {
                            // The digest lied: the receiver lacks this
                            // bundle but the sender will never offer it.
                            ctx.metrics.false_positive_transmissions += 1;
                            *fp_count += 1;
                        }
                        continue;
                    }
                    if mask.contains(idx) {
                        dest.push(ids[idx]);
                    } else {
                        relay.push(ids[idx]);
                    }
                }
            }
        } else {
            for wi in 0..copies.word_count() {
                let cand = copies.word(wi) & !rx_summary.word(wi);
                if cand == 0 {
                    continue;
                }
                let mask_word = mask.word(wi);
                push_word_ids(&ids, wi, cand & mask_word, &mut dest);
                push_word_ids(&ids, wi, cand & !mask_word, &mut relay);
            }
        }
    } else {
        for (copy, _) in tx.copies() {
            let id = copy.id;
            let idx = ctx.workload.bundle_index(id);
            if bloom {
                if rx_bloom.contains(idx as u64) {
                    if !rx_summary.contains(idx) {
                        ctx.metrics.false_positive_transmissions += 1;
                        *fp_count += 1;
                    }
                    continue;
                }
            } else if rx_summary.contains(idx) {
                continue;
            }
            if ctx.workload.flow(id.flow).dst == rx.id {
                dest.push(id);
            } else {
                relay.push(id);
            }
        }
        dest.sort_unstable();
        relay.sort_unstable();
    }
    ctx.scratch.ids = ids;
    ctx.scratch.dest_masks = dest_masks;
    if ctx.config.protocol.ack != AckScheme::Cumulative && relay.len() > 1 {
        let pivot = ctx.rng.below(relay.len() as u64) as usize;
        relay.rotate_left(pivot);
    }

    for &id in dest.iter().chain(relay.iter()) {
        if *slots_left == 0 {
            break;
        }
        let flow = ctx.workload.flow(id.flow);
        // P–Q gate: the bundle's source transmits with P, relays with Q.
        let p = ctx.config.protocol.transmit.probability(tx.id == flow.src);
        if !ctx.rng.bernoulli(p) {
            continue;
        }
        // The defensive purge and the per-transfer EC-TTL updates can
        // remove a candidate mid-phase; re-check both sides.
        let idx = ctx.workload.bundle_index(id);
        let tx_has = if tx.bits.enabled() {
            tx.bits.has(idx)
        } else {
            tx.has_bundle(id)
        };
        if !tx_has {
            continue;
        }
        let rx_known = if bloom {
            // The sender only knows the digest; stores earlier in this
            // session inserted into it, which can mint fresh false
            // positives for unrelated candidates.
            if rx_bloom.contains(idx as u64) {
                if !rx_summary.contains(idx) {
                    ctx.metrics.false_positive_transmissions += 1;
                    *fp_count += 1;
                }
                true
            } else {
                false
            }
        } else {
            rx_summary.contains(idx)
        };
        if rx_known {
            continue;
        }

        *slots_left -= 1;
        *slots_used += 1;
        ctx.metrics.bundle_transmissions += 1;
        ctx.metrics.payload_bytes_sent += ctx.config.bundle_bytes;
        // The transfer occupies one `tx_time` slot; its completion stamps
        // the delivery time.
        let completed_at = now + ctx.config.tx_time * *slots_used;

        // Sender-side updates: EC increment, TTL renewal / EC-TTL.
        // Lifetime policies govern *relay* copies only: "once they are
        // transmitted and stored in a buffer, their TTL begins to reduce"
        // (Section II-B) — a source's own un-retired originals do not
        // time out (they can still be purged by immunity tables).
        let (new_ec, sender_copy_expired) = {
            let (mut copy, place) = tx.copy_entry_mut(id).expect("checked above");
            let new_ec = copy.bump_ec();
            if place == CopyPlace::Relay {
                match ctx.config.protocol.lifetime {
                    LifetimePolicy::FixedTtl { ttl } => {
                        // The paper: a transmitted bundle's TTL is renewed.
                        copy.set_expires_at(now + ttl);
                    }
                    LifetimePolicy::EcTtl { .. } => {
                        if let Some(ttl) = ctx.config.protocol.lifetime.ec_ttl_at(new_ec) {
                            copy.set_expires_at(now + ttl);
                        }
                    }
                    LifetimePolicy::None | LifetimePolicy::DynamicTtl { .. } => {}
                }
            }
            // An EC-TTL of zero means "discard immediately".
            (new_ec, copy.expires_at() <= now)
        };
        if sender_copy_expired {
            tx.remove_copy(id);
            tx.bits.clear_copy(idx);
            ctx.metrics
                .on_drop(idx, tx.id.index(), now, DropReason::Expired);
            ctx.emit(|| Event::Drop {
                flow: id.flow.0,
                seq: id.seq,
                node: tx.id.index() as u32,
                t: now.as_millis(),
                reason: DropReason::Expired,
            });
        }

        // Failure injection: the transfer occupied the slot and the
        // sender behaved as if it succeeded, but the bundle never
        // arrives. The i.i.d. loss draws from the protocol RNG (as it
        // always has); the Gilbert–Elliott burst channel draws from its
        // own fault stream and is sampled unconditionally so its state
        // advances once per transmission either way.
        let iid_lost = ctx.rng.bernoulli(ctx.config.transfer_loss_prob);
        let burst_lost = ctx.faults.transfer_lost();
        let lost = iid_lost || burst_lost;
        ctx.emit(|| Event::Transmit {
            flow: id.flow.0,
            seq: id.seq,
            from: tx.id.index() as u32,
            to: rx.id.index() as u32,
            t: now.as_millis(),
            done: completed_at.as_millis(),
            lost,
        });
        if lost {
            ctx.metrics.transfer_losses += 1;
            continue;
        }

        // Receiver side.
        if rx.id == flow.dst {
            deliver(rx, id, now, completed_at, idx, ctx);
        } else {
            store_relay_copy(rx, id, new_ec, now, idx, ctx);
        }
        let rx_has = if rx.bits.enabled() {
            rx.bits.has(idx)
        } else {
            rx.has_bundle(id)
        };
        if rx_has {
            rx_summary.insert(idx);
            if bloom {
                rx_bloom.insert(idx as u64);
            }
        }
    }

    ctx.scratch.rx_summary = rx_summary;
    ctx.scratch.rx_bloom = rx_bloom;
    ctx.scratch.dest = dest;
    ctx.scratch.relay = relay;
}

/// The bundle reached its destination: record the delivery, update the
/// destination's immunity store under the active ack scheme.
fn deliver<P: Probe>(
    rx: &mut Node,
    id: BundleId,
    now: SimTime,
    completed_at: SimTime,
    idx: usize,
    ctx: &mut SessionCtx<'_, P>,
) {
    let tracker = rx.trackers.entry(id.flow).or_default();
    let fresh = tracker.record(id.seq);
    debug_assert!(fresh, "summary-vector filter should block duplicates");
    if !fresh {
        return;
    }
    let frontier = tracker.frontier();
    rx.bits.set_delivered(idx);
    ctx.metrics.on_deliver(idx, now, completed_at);
    ctx.emit(|| Event::Deliver {
        flow: id.flow.0,
        seq: id.seq,
        node: rx.id.index() as u32,
        t: now.as_millis(),
        done: completed_at.as_millis(),
    });
    if let Some(store) = rx.immunity.as_mut() {
        store.record_delivery(id, frontier);
        let records = store.record_count();
        ctx.metrics.set_ack_records(rx.id.index(), records, now);
        ctx.emit(|| Event::ImmunityMerge {
            node: rx.id.index() as u32,
            sent: 0,
            records,
            t: now.as_millis(),
        });
    }
    // If the destination happened to be carrying a relay copy of this very
    // bundle (impossible under current semantics, but cheap to guard), the
    // delivered state supersedes it.
    if rx.remove_copy(id).is_some() {
        debug_assert!(false, "destination held a relay copy of its own bundle");
        rx.bits.clear_copy(idx);
        ctx.metrics
            .on_drop(idx, rx.id.index(), completed_at, DropReason::Immunized);
        ctx.emit(|| Event::AckPurge {
            flow: id.flow.0,
            seq: id.seq,
            node: rx.id.index() as u32,
            t: completed_at.as_millis(),
        });
    }
}

/// Store an incoming relay copy, applying the receiver-side lifetime policy
/// and the buffer's eviction policy.
fn store_relay_copy<P: Probe>(
    rx: &mut Node,
    id: BundleId,
    ec: u32,
    now: SimTime,
    idx: usize,
    ctx: &mut SessionCtx<'_, P>,
) {
    let expires_at = match ctx.config.protocol.lifetime {
        LifetimePolicy::None => SimTime::MAX,
        LifetimePolicy::FixedTtl { ttl } => now + ttl,
        LifetimePolicy::DynamicTtl { multiplier } => match rx.last_interval {
            // Algorithm 1: TTL = multiplier × interval between the node's
            // last two encounters.
            Some(interval) => now + interval.mul_f64(multiplier),
            // No interval estimate yet: hold without expiry.
            None => SimTime::MAX,
        },
        LifetimePolicy::EcTtl { .. } => match ctx.config.protocol.lifetime.ec_ttl_at(ec) {
            Some(ttl) if ttl.is_zero() => {
                // Dead on arrival: the transmission happened (and consumed
                // a slot) but the copy is not stored.
                ctx.metrics.rejections += 1;
                ctx.emit(|| Event::Reject {
                    flow: id.flow.0,
                    seq: id.seq,
                    node: rx.id.index() as u32,
                    t: now.as_millis(),
                });
                return;
            }
            Some(ttl) => now + ttl,
            None => SimTime::MAX,
        },
    };
    let copy = StoredBundle {
        id,
        ec,
        stored_at: now,
        expires_at,
    };
    let nid = rx.id.index() as u32;
    let store_event = move || Event::Store {
        flow: id.flow.0,
        seq: id.seq,
        node: nid,
        t: now.as_millis(),
    };
    match rx.buffer.insert(copy, ctx.config.protocol.eviction) {
        InsertOutcome::Stored => {
            rx.bits.set_copy(idx);
            ctx.metrics.on_store(idx, rx.id.index(), now);
            ctx.emit(store_event);
        }
        InsertOutcome::StoredEvicting(victim) => {
            let victim_idx = ctx.workload.bundle_index(victim);
            rx.bits.clear_copy(victim_idx);
            rx.bits.set_copy(idx);
            ctx.metrics
                .on_drop(victim_idx, rx.id.index(), now, DropReason::Evicted);
            ctx.emit(|| Event::Drop {
                flow: victim.flow.0,
                seq: victim.seq,
                node: nid,
                t: now.as_millis(),
                reason: DropReason::Evicted,
            });
            ctx.metrics.on_store(idx, rx.id.index(), now);
            ctx.emit(store_event);
        }
        InsertOutcome::Rejected => {
            ctx.metrics.rejections += 1;
            ctx.emit(|| Event::Reject {
                flow: id.flow.0,
                seq: id.seq,
                node: nid,
                t: now.as_millis(),
            });
        }
        InsertOutcome::Duplicate => {
            debug_assert!(false, "summary-vector filter should block duplicates")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::StoredBundle;
    use crate::bundle::{BundleId, FlowId, Workload};
    use crate::metrics::MetricsCollector;
    use crate::protocols;
    use dtn_mobility::{Contact, NodeId};
    use dtn_sim::{SimRng, SimTime};

    fn contact(start: u64, end: u64) -> Contact {
        Contact::new(
            NodeId(0),
            NodeId(1),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
    }

    fn origin_copy(flow: u32, seq: u32) -> StoredBundle {
        StoredBundle {
            id: BundleId {
                flow: FlowId(flow),
                seq,
            },
            ec: 0,
            stored_at: SimTime::ZERO,
            expires_at: SimTime::MAX,
        }
    }

    /// Two opposing flows, capacity 3: the lower-ID node's phase runs
    /// first and claims two slots; the higher-ID node gets the leftover.
    #[test]
    fn lower_id_sends_first_and_capacity_is_shared() {
        let workload = Workload::new(
            vec![
                crate::bundle::Flow {
                    id: FlowId(0),
                    src: NodeId(0),
                    dst: NodeId(1),
                    count: 2,
                    created_at: SimTime::ZERO,
                },
                crate::bundle::Flow {
                    id: FlowId(1),
                    src: NodeId(1),
                    dst: NodeId(0),
                    count: 2,
                    created_at: SimTime::ZERO,
                },
            ],
            2,
        )
        .unwrap();
        let config = SimConfig::paper_defaults(protocols::pure_epidemic());
        let mut a = Node::new(NodeId(0), 10, None);
        let mut b = Node::new(NodeId(1), 10, None);
        for seq in 0..2 {
            a.origin.insert(
                origin_copy(0, seq),
                crate::policy::EvictionPolicy::RejectNew,
            );
            b.origin.insert(
                origin_copy(1, seq),
                crate::policy::EvictionPolicy::RejectNew,
            );
        }
        let mut metrics = MetricsCollector::new(2, 10, 4, 0.1);
        metrics.start(SimTime::ZERO);
        let mut rng = SimRng::new(1);
        let mut scratch = SessionScratch::default();
        let mut probe = NullProbe;
        let mut faults = FaultInjector::disabled();
        let mut ctx = SessionCtx {
            config: &config,
            workload: &workload,
            metrics: &mut metrics,
            rng: &mut rng,
            scratch: &mut scratch,
            probe: &mut probe,
            faults: &mut faults,
        };
        // 300..320 gives ⌊300/100⌋ = 3 slots... duration is 300 s.
        run_contact(&mut a, &mut b, &contact(0, 300), &mut ctx);
        // Lower-ID node 0 used slots 1-2 delivering both flow-0 bundles;
        // node 1 got one slot: flow 1 is half-delivered.
        let b_got = b
            .trackers
            .get(&FlowId(0))
            .map(|t| t.delivered_count())
            .unwrap_or(0);
        let a_got = a
            .trackers
            .get(&FlowId(1))
            .map(|t| t.delivered_count())
            .unwrap_or(0);
        assert_eq!(b_got, 2, "lower-ID phase should finish its flow");
        assert_eq!(a_got, 1, "higher-ID phase gets only the leftover slot");
        assert_eq!(metrics.bundle_transmissions, 3);
    }

    /// EC bookkeeping across one hop: holder aging + transmission
    /// increment + receiver inheritance (Fig. 5 semantics).
    #[test]
    fn ec_inherited_with_increments() {
        let workload = Workload::single_flow(NodeId(0), NodeId(9), 1, 10);
        let config = SimConfig::paper_defaults(protocols::ec_epidemic());
        let mut a = Node::new(NodeId(0), 10, None);
        let mut b = Node::new(NodeId(1), 10, None);
        // A *relay* copy at node 0 with EC 5 (origin copies don't age, so
        // plant it in the relay buffer).
        a.buffer.insert(
            StoredBundle {
                id: BundleId {
                    flow: FlowId(0),
                    seq: 0,
                },
                ec: 5,
                stored_at: SimTime::ZERO,
                expires_at: SimTime::MAX,
            },
            crate::policy::EvictionPolicy::RejectNew,
        );
        let mut metrics = MetricsCollector::new(10, 10, 1, 0.1);
        metrics.start(SimTime::ZERO);
        let mut rng = SimRng::new(1);
        let mut scratch = SessionScratch::default();
        let mut probe = NullProbe;
        let mut faults = FaultInjector::disabled();
        let mut ctx = SessionCtx {
            config: &config,
            workload: &workload,
            metrics: &mut metrics,
            rng: &mut rng,
            scratch: &mut scratch,
            probe: &mut probe,
            faults: &mut faults,
        };
        let c = Contact::new(
            NodeId(0),
            NodeId(1),
            SimTime::from_secs(0),
            SimTime::from_secs(150),
        );
        run_contact(&mut a, &mut b, &c, &mut ctx);
        // Holder aging: 5 -> 6; transmission: 6 -> 7; receiver inherits 7.
        assert_eq!(
            a.buffer
                .get(BundleId {
                    flow: FlowId(0),
                    seq: 0
                })
                .unwrap()
                .ec,
            7
        );
        assert_eq!(
            b.buffer
                .get(BundleId {
                    flow: FlowId(0),
                    seq: 0
                })
                .unwrap()
                .ec,
            7
        );
    }

    /// Zero-duration capacity: a contact shorter than one tx_time carries
    /// nothing, but ack exchange still happens (tables are small).
    #[test]
    fn too_short_contact_exchanges_acks_but_no_bundles() {
        let workload = Workload::single_flow(NodeId(0), NodeId(1), 2, 2);
        let config = SimConfig::paper_defaults(protocols::immunity_epidemic());
        let mut a = Node::new(
            NodeId(0),
            10,
            Some(crate::immunity::ImmunityStore::per_bundle()),
        );
        let mut b = Node::new(
            NodeId(1),
            10,
            Some(crate::immunity::ImmunityStore::per_bundle()),
        );
        a.origin
            .insert(origin_copy(0, 0), crate::policy::EvictionPolicy::RejectNew);
        // Node b somehow knows seq 1 was delivered (planted ack).
        b.immunity.as_mut().unwrap().record_delivery(
            BundleId {
                flow: FlowId(0),
                seq: 1,
            },
            0,
        );
        let mut metrics = MetricsCollector::new(2, 10, 2, 0.1);
        metrics.start(SimTime::ZERO);
        let mut rng = SimRng::new(1);
        let mut scratch = SessionScratch::default();
        let mut probe = NullProbe;
        let mut faults = FaultInjector::disabled();
        let mut ctx = SessionCtx {
            config: &config,
            workload: &workload,
            metrics: &mut metrics,
            rng: &mut rng,
            scratch: &mut scratch,
            probe: &mut probe,
            faults: &mut faults,
        };
        run_contact(&mut a, &mut b, &contact(0, 50), &mut ctx);
        assert_eq!(metrics.bundle_transmissions, 0, "50 s < one 100 s slot");
        assert!(metrics.ack_records_sent > 0, "immunity tables still flow");
        assert!(
            a.immunity.as_ref().unwrap().covers(BundleId {
                flow: FlowId(0),
                seq: 1
            }),
            "a merged b's table"
        );
    }

    /// Destination-bound bundles outrank relay traffic within a phase.
    #[test]
    fn destination_bound_bundles_go_first() {
        // Node 0 carries: a relay copy for flow 1 (dst elsewhere) with a
        // *lower* sort key, and origin bundles of flow 0 destined to node
        // 1. With one slot, flow 0 must win despite sorting later.
        let workload = Workload::new(
            vec![
                crate::bundle::Flow {
                    id: FlowId(0),
                    src: NodeId(2),
                    dst: NodeId(9),
                    count: 1,
                    created_at: SimTime::ZERO,
                },
                crate::bundle::Flow {
                    id: FlowId(1),
                    src: NodeId(0),
                    dst: NodeId(1),
                    count: 1,
                    created_at: SimTime::ZERO,
                },
            ],
            10,
        )
        .unwrap();
        let config = SimConfig::paper_defaults(protocols::pure_epidemic());
        let mut a = Node::new(NodeId(0), 10, None);
        let mut b = Node::new(NodeId(1), 10, None);
        a.buffer
            .insert(origin_copy(0, 0), crate::policy::EvictionPolicy::RejectNew);
        a.origin
            .insert(origin_copy(1, 0), crate::policy::EvictionPolicy::RejectNew);
        let mut metrics = MetricsCollector::new(10, 10, 2, 0.1);
        metrics.start(SimTime::ZERO);
        let mut rng = SimRng::new(1);
        let mut scratch = SessionScratch::default();
        let mut probe = NullProbe;
        let mut faults = FaultInjector::disabled();
        let mut ctx = SessionCtx {
            config: &config,
            workload: &workload,
            metrics: &mut metrics,
            rng: &mut rng,
            scratch: &mut scratch,
            probe: &mut probe,
            faults: &mut faults,
        };
        let c = Contact::new(
            NodeId(0),
            NodeId(1),
            SimTime::from_secs(0),
            SimTime::from_secs(150),
        );
        run_contact(&mut a, &mut b, &c, &mut ctx);
        assert_eq!(
            b.trackers.get(&FlowId(1)).map(|t| t.delivered_count()),
            Some(1),
            "the destination-bound bundle took the only slot"
        );
        assert!(!b.buffer.contains(BundleId {
            flow: FlowId(0),
            seq: 0
        }));
    }
}
